"""Deterministic random-number streams.

Every stochastic component in this library draws from an explicitly seeded
stream.  To keep experiments reproducible *and* to decouple components (so
that adding a draw in one module does not perturb another), seeds are derived
from a root seed plus a string label via a stable hash.  This mirrors the
"named substream" pattern used by large simulation codebases.
"""

from __future__ import annotations

import copy
import hashlib
import random
from typing import Iterator, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")

_SEED_MASK = (1 << 63) - 1

#: Version tag on :meth:`RngStream.getstate` snapshots.
_STATE_TAG = "repro.rngstream/1"


def derive_seed(root_seed: int, label: str) -> int:
    """Derive a stable 63-bit seed from ``root_seed`` and a string ``label``.

    The derivation is independent of ``PYTHONHASHSEED`` (it uses SHA-256, not
    the builtin ``hash``), so identical inputs give identical seeds across
    processes and platforms.
    """
    payload = f"{root_seed}:{label}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") & _SEED_MASK


def make_rng(root_seed: int, label: str = "") -> random.Random:
    """Return a ``random.Random`` seeded from ``(root_seed, label)``."""
    return random.Random(derive_seed(root_seed, label))


class RngStream:
    """A labelled bundle of deterministic random sources.

    Provides both a ``random.Random`` (``.py``) and a numpy ``Generator``
    (``.np``) seeded from the same (seed, label) pair, plus a ``child``
    factory for spawning independent substreams.

    Example::

        rng = RngStream(seed=42, label="workload")
        sizes = rng.np.lognormal(mean=3.0, sigma=1.5, size=100)
        choice = rng.py.choice(["a", "b", "c"])
        churn_rng = rng.child("churn")
    """

    __slots__ = ("seed", "label", "py", "_np")

    def __init__(self, seed: int, label: str = "root") -> None:
        self.seed = seed
        self.label = label
        self.py = random.Random(derive_seed(seed, label))
        self._np = None

    @property
    def np(self):
        """The numpy ``Generator``, created on first use.

        Lazy so that processes which only ever draw from ``.py`` — the
        store tools, the CLI's help paths — never import numpy; the
        generator is seeded from the same ``(seed, label)`` pair either
        way, so laziness is invisible to draw sequences.
        """
        gen = self._np
        if gen is None:
            import numpy

            self._np = gen = numpy.random.default_rng(
                derive_seed(self.seed, self.label)
            )
        return gen

    def child(self, sub_label: str) -> "RngStream":
        """Spawn an independent substream named ``label/sub_label``."""
        return RngStream(self.seed, f"{self.label}/{sub_label}")

    # ------------------------------------------------------------------
    # State capture (checkpoint/resume)

    def getstate(self) -> Tuple:
        """Snapshot this stream's full state.

        The snapshot captures both underlying generators mid-sequence —
        ``random.Random.getstate()`` and the numpy bit generator's state
        dict — so a stream restored with :meth:`setstate` continues the
        exact draw sequence, not a reseeded one.  The returned value is
        versioned, picklable and deep-copied (later draws on this stream
        cannot mutate an already-taken snapshot).
        """
        return (
            _STATE_TAG,
            self.seed,
            self.label,
            self.py.getstate(),
            copy.deepcopy(self.np.bit_generator.state),
        )

    def setstate(self, state: Tuple) -> None:
        """Restore a snapshot taken by :meth:`getstate` (any instance)."""
        if not isinstance(state, tuple) or len(state) != 5 or state[0] != _STATE_TAG:
            raise ValueError(
                f"not an RngStream state snapshot (expected a 5-tuple "
                f"tagged {_STATE_TAG!r})"
            )
        import numpy

        _, seed, label, py_state, np_state = state
        self.seed = seed
        self.label = label
        py = random.Random()
        py.setstate(py_state)
        self.py = py
        gen = numpy.random.default_rng()
        gen.bit_generator.state = copy.deepcopy(np_state)
        self._np = gen

    # ``__slots__`` classes need explicit pickle hooks; routing them
    # through getstate/setstate makes pickling a stream equivalent to
    # snapshotting it, which is what checkpoint files rely on.
    def __getstate__(self) -> Tuple:
        return self.getstate()

    def __setstate__(self, state: Tuple) -> None:
        self.setstate(state)

    def shuffled(self, items: Sequence[T]) -> list:
        """Return a shuffled copy of ``items`` (the input is untouched)."""
        out = list(items)
        self.py.shuffle(out)
        return out

    def sample_without_replacement(self, items: Sequence[T], k: int) -> list:
        """Sample ``min(k, len(items))`` distinct elements."""
        k = min(k, len(items))
        return self.py.sample(list(items), k)

    def weighted_index(self, cumulative_weights: Sequence[float]) -> int:
        """Draw an index proportionally to weights given as a cumulative sum.

        ``cumulative_weights`` must be non-decreasing with a positive final
        entry.  Runs in O(log n) via bisection.
        """
        import bisect

        total = cumulative_weights[-1]
        if total <= 0:
            raise ValueError("total weight must be positive")
        x = self.py.random() * total
        return bisect.bisect_right(cumulative_weights, x)

    def iter_children(self, base_label: str, count: int) -> Iterator["RngStream"]:
        """Yield ``count`` numbered substreams ``base_label[0..count)``."""
        for i in range(count):
            yield self.child(f"{base_label}[{i}]")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStream(seed={self.seed}, label={self.label!r})"


def stable_choice(rng: random.Random, items: Sequence[T], weights: Optional[Sequence[float]] = None) -> T:
    """Weighted choice helper with validation (single draw).

    ``random.choices`` silently accepts zero-weight-only inputs; this wrapper
    raises instead, which catches workload-configuration bugs early.
    """
    if not items:
        raise ValueError("cannot choose from an empty sequence")
    if weights is None:
        return items[rng.randrange(len(items))]
    if len(weights) != len(items):
        raise ValueError("weights and items must have the same length")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("total weight must be positive")
    x = rng.random() * total
    acc = 0.0
    for item, w in zip(items, weights):
        acc += w
        if x < acc:
            return item
    return items[-1]
