"""Shared utilities: deterministic RNG streams, empirical distributions,
Zipf sampling and fitting, and plain-text table rendering.

These helpers are intentionally dependency-light (numpy only) so that every
other subpackage can use them without import cycles.
"""

from repro.util.atomic import (
    atomic_replace,
    atomic_write_bytes,
    atomic_write_text,
)
from repro.util.cdf import (
    Histogram,
    Series,
    empirical_cdf,
    fraction_at_most,
    log_bins,
    quantile,
)
from repro.util.rng import RngStream, derive_seed, make_rng
from repro.util.tables import format_table, render_series
from repro.util.validation import check_fraction, check_positive
from repro.util.zipf import ZipfSampler, fit_zipf_slope, zipf_weights

__all__ = [
    "Histogram",
    "RngStream",
    "Series",
    "ZipfSampler",
    "atomic_replace",
    "atomic_write_bytes",
    "atomic_write_text",
    "check_fraction",
    "check_positive",
    "derive_seed",
    "empirical_cdf",
    "fit_zipf_slope",
    "format_table",
    "fraction_at_most",
    "log_bins",
    "make_rng",
    "quantile",
    "render_series",
    "zipf_weights",
]
