"""Zipf-distribution sampling and slope fitting.

The paper (Figure 5) observes a Zipf-like rank/replication plot with a small
flat head: replication is roughly constant over the first few ranks and then
decays as a power law.  ``ZipfSampler`` implements exactly that shape — a
truncated, flattened Zipf — and ``fit_zipf_slope`` recovers the exponent from
observed data so tests and benchmarks can assert the shape holds.
"""

from __future__ import annotations

import bisect
import math
from typing import Sequence, Tuple

from repro.util.validation import check_positive


class _LazyNumpy:
    """Defer the numpy import to first use (see ``repro.util.cdf``)."""

    def __getattr__(self, name):
        import numpy

        globals()["np"] = numpy
        return getattr(numpy, name)


np = _LazyNumpy()


def zipf_weights(n: int, alpha: float, flat_head: int = 0) -> np.ndarray:
    """Unnormalized Zipf weights ``w[k] ~ 1 / (k+1)^alpha`` for ``n`` ranks.

    ``flat_head`` clamps the first ``flat_head`` ranks to the weight of rank
    ``flat_head`` — reproducing the "initial small flat region" of Figure 5.
    """
    check_positive("n", n)
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks**-alpha
    if flat_head > 0:
        head = min(flat_head, n)
        weights[:head] = weights[head - 1]
    return weights


class ZipfSampler:
    """Draw item indices from a (flattened) Zipf distribution in O(log n).

    Indices are 0-based; index 0 is the most popular item.  The sampler
    precomputes a cumulative weight table once, so drawing is cheap even for
    large universes.
    """

    def __init__(self, n: int, alpha: float, flat_head: int = 0) -> None:
        self.n = n
        self.alpha = alpha
        self.flat_head = flat_head
        weights = zipf_weights(n, alpha, flat_head)
        self._cum = np.cumsum(weights)
        self._total = float(self._cum[-1])

    def weight(self, index: int) -> float:
        """The unnormalized weight of ``index``."""
        if index == 0:
            return float(self._cum[0])
        return float(self._cum[index] - self._cum[index - 1])

    def probability(self, index: int) -> float:
        return self.weight(index) / self._total

    def sample(self, rng) -> int:
        """Draw one index.  ``rng`` is a ``random.Random``."""
        x = rng.random() * self._total
        return int(bisect.bisect_right(self._cum, x))

    def sample_many(self, np_rng: np.random.Generator, size: int) -> np.ndarray:
        """Vectorized draw of ``size`` indices using a numpy Generator."""
        xs = np_rng.random(size) * self._total
        return np.searchsorted(self._cum, xs, side="right")


def fit_zipf_slope(
    ranks: Sequence[float],
    values: Sequence[float],
    skip_head: int = 0,
) -> Tuple[float, float]:
    """Least-squares fit of ``log(value) = intercept - slope * log(rank)``.

    Returns ``(slope, r_squared)`` where ``slope`` is reported as a positive
    number for a decaying power law.  Zero values are dropped (they cannot be
    log-transformed); ``skip_head`` drops the flat head before fitting.
    """
    r = np.asarray(ranks, dtype=float)[skip_head:]
    v = np.asarray(values, dtype=float)[skip_head:]
    mask = (r > 0) & (v > 0)
    r, v = r[mask], v[mask]
    if len(r) < 3:
        raise ValueError("need at least 3 positive points to fit a slope")
    lx, ly = np.log10(r), np.log10(v)
    slope, intercept = np.polyfit(lx, ly, 1)
    pred = slope * lx + intercept
    ss_res = float(np.sum((ly - pred) ** 2))
    ss_tot = float(np.sum((ly - ly.mean()) ** 2))
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return -float(slope), r_squared


def harmonic_number(n: int, alpha: float = 1.0) -> float:
    """Generalized harmonic number ``H_{n,alpha}`` (normalizer for Zipf)."""
    check_positive("n", n)
    return float(sum(1.0 / (k**alpha) for k in range(1, n + 1)))


def expected_max_rank_share(n: int, alpha: float) -> float:
    """Probability mass of the single most popular item under pure Zipf.

    Used in tests as a sanity bound on generated popularity skew.
    """
    return 1.0 / harmonic_number(n, alpha)


def swap_iterations(total_replicas: int) -> int:
    """The appendix's mixing schedule: ``(1/2) * N * ln(N)`` swap attempts.

    ``N`` is the total number of file replicas in the trace.  Returns at
    least 1 for tiny traces so that callers can always make progress.
    """
    check_positive("total_replicas", total_replicas)
    if total_replicas == 1:
        return 1
    return max(1, int(0.5 * total_replicas * math.log(total_replicas)))
