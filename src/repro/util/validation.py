"""Small argument-validation helpers.

Configuration dataclasses throughout the library validate eagerly in
``__post_init__`` so that a bad parameter fails at construction time with a
named message, not deep inside a simulation loop.
"""

from __future__ import annotations

from typing import Union

Number = Union[int, float]


def check_positive(name: str, value: Number) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def check_non_negative(name: str, value: Number) -> None:
    """Raise ``ValueError`` unless ``value >= 0``."""
    if not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_fraction(name: str, value: Number) -> None:
    """Raise ``ValueError`` unless ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


def check_range(name: str, value: Number, lo: Number, hi: Number) -> None:
    """Raise ``ValueError`` unless ``lo <= value <= hi``."""
    if not lo <= value <= hi:
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")
