"""Plain-text rendering for experiment outputs.

Benchmarks reproduce the paper's tables and figures as text: tables become
aligned column dumps and figures become per-series rows.  Keeping rendering
in one place means every benchmark prints in the same format, which makes
``bench_output.txt`` diffable across runs.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
    float_fmt: str = "{:.3g}",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_fmt.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)

    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(series_list, title: str = "", max_points: int = 24) -> str:
    """Render a list of :class:`repro.util.cdf.Series` as text.

    Long series are down-sampled to ``max_points`` evenly spaced points so
    benchmark output stays readable; the first and last points are always
    included.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    for series in series_list:
        n = len(series)
        if n == 0:
            lines.append(f"  {series.name}: <empty>")
            continue
        if n <= max_points:
            idxs = range(n)
        else:
            step = (n - 1) / (max_points - 1)
            idxs = sorted({int(round(i * step)) for i in range(max_points)})
        points = ", ".join(
            f"({series.xs[i]:.4g}, {series.ys[i]:.4g})" for i in idxs
        )
        lines.append(f"  {series.name} [{n} pts]: {points}")
    return "\n".join(lines)


def percent(value: float) -> str:
    """Format a fraction as a percentage string, e.g. ``0.41 -> '41.0%'``."""
    return f"{100.0 * value:.1f}%"
