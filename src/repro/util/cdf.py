"""Empirical-distribution helpers used throughout the analysis modules.

The paper's figures are mostly CDFs and log-log rank plots; these helpers
compute them from raw samples in a form that is easy both to assert on in
tests and to render as text series in benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple


class _LazyNumpy:
    """Defer the numpy import to first use (annotations are strings here).

    ``repro.util`` is imported by store-only tools and the CLI's help
    paths, which never evaluate a CDF; rebinding the module-global ``np``
    on first attribute access keeps their baseline RSS numpy-free.
    """

    def __getattr__(self, name):
        import numpy

        globals()["np"] = numpy
        return getattr(numpy, name)


np = _LazyNumpy()


def empirical_cdf(samples: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(xs, ps)`` such that ``ps[i]`` is the fraction of samples
    ``<= xs[i]``, with ``xs`` sorted ascending.

    Raises ``ValueError`` on empty input — an empty CDF is always a bug in
    the calling experiment, and silently returning empty arrays hides it.
    """
    if len(samples) == 0:
        raise ValueError("cannot compute the CDF of an empty sample")
    xs = np.sort(np.asarray(samples, dtype=float))
    ps = np.arange(1, len(xs) + 1, dtype=float) / len(xs)
    return xs, ps


def fraction_at_most(samples: Sequence[float], threshold: float) -> float:
    """Fraction of samples ``<= threshold`` (the CDF evaluated at a point)."""
    if len(samples) == 0:
        raise ValueError("cannot evaluate the CDF of an empty sample")
    arr = np.asarray(samples, dtype=float)
    return float(np.count_nonzero(arr <= threshold)) / len(arr)


def quantile(samples: Sequence[float], q: float) -> float:
    """The ``q``-quantile of ``samples`` (linear interpolation)."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if len(samples) == 0:
        raise ValueError("cannot compute a quantile of an empty sample")
    return float(np.quantile(np.asarray(samples, dtype=float), q))


def log_bins(lo: float, hi: float, bins_per_decade: int = 10) -> np.ndarray:
    """Logarithmically spaced bin edges covering ``[lo, hi]``.

    Used for rank/size histograms where the paper plots on log axes.
    """
    if lo <= 0 or hi <= 0:
        raise ValueError("log bins require strictly positive bounds")
    if hi < lo:
        raise ValueError("hi must be >= lo")
    n_decades = math.log10(hi / lo)
    n_edges = max(2, int(math.ceil(n_decades * bins_per_decade)) + 1)
    return np.logspace(math.log10(lo), math.log10(hi), n_edges)


@dataclass
class Histogram:
    """A labelled histogram with helper constructors.

    ``edges`` has length ``len(counts) + 1``; bin ``i`` covers
    ``[edges[i], edges[i+1])`` except the last bin which is closed.
    """

    edges: np.ndarray
    counts: np.ndarray
    label: str = ""

    @classmethod
    def from_samples(
        cls,
        samples: Sequence[float],
        edges: Sequence[float],
        label: str = "",
    ) -> "Histogram":
        counts, out_edges = np.histogram(np.asarray(samples, dtype=float), bins=np.asarray(edges))
        return cls(edges=out_edges, counts=counts, label=label)

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    def normalized(self) -> np.ndarray:
        """Counts as fractions of the total (zeros if the histogram is empty)."""
        total = self.total
        if total == 0:
            return np.zeros_like(self.counts, dtype=float)
        return self.counts.astype(float) / total

    def bin_centers(self) -> np.ndarray:
        return (self.edges[:-1] + self.edges[1:]) / 2.0


@dataclass
class Series:
    """A named (x, y) series — the unit of "figure data" in this library.

    Experiments return lists of ``Series``; benchmarks render them as text
    and tests assert on their shapes.
    """

    name: str
    xs: List[float] = field(default_factory=list)
    ys: List[float] = field(default_factory=list)

    def append(self, x: float, y: float) -> None:
        self.xs.append(float(x))
        self.ys.append(float(y))

    def __len__(self) -> int:
        return len(self.xs)

    def y_at(self, x: float) -> float:
        """The y value at the first x equal to ``x`` (exact match)."""
        for xi, yi in zip(self.xs, self.ys):
            if xi == x:
                return yi
        raise KeyError(f"x={x} not present in series {self.name!r}")

    def as_dict(self) -> Dict[float, float]:
        return dict(zip(self.xs, self.ys))


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean with an explicit error on empty input."""
    vals = list(values)
    if not vals:
        raise ValueError("mean of empty sequence")
    return float(sum(vals)) / len(vals)
