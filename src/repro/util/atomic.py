"""Crash-safe file writes: write a temp file, fsync, rename over the target.

Every artefact this library persists (run manifests, metrics JSON, traces,
checkpoints) goes through these helpers so that a crash — including a hard
SIGKILL — mid-write can never leave a torn file behind: the target either
keeps its previous content or holds the complete new content, never a
prefix of it.  ``os.replace`` is atomic on POSIX and Windows for paths on
the same filesystem, which is guaranteed here because the temp file is
created in the target's own directory.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from typing import Iterator, Union

PathLike = Union[str, "os.PathLike[str]"]


@contextmanager
def atomic_replace(path: PathLike) -> Iterator[str]:
    """Yield a temp path next to ``path``; atomically rename it over
    ``path`` on success, delete it on failure.

    The caller writes the new content to the yielded path.  If the block
    raises, the temp file is removed and ``path`` is untouched; if it
    completes, the temp file is fsynced and renamed into place (and the
    directory entry is fsynced too, best-effort), so the swap survives a
    crash at any instant.
    """
    target = os.fspath(path)
    directory = os.path.dirname(target) or "."
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(target) + ".", suffix=".tmp"
    )
    os.close(fd)
    try:
        yield tmp
        fd = os.open(tmp, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, target)
        _fsync_directory(directory)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _fsync_directory(directory: str) -> None:
    """Flush the rename itself to disk (no-op where unsupported)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def atomic_write_text(
    path: PathLike, text: str, encoding: str = "utf-8"
) -> None:
    """Atomically replace ``path``'s content with ``text``."""
    with atomic_replace(path) as tmp:
        with open(tmp, "w", encoding=encoding) as fh:
            fh.write(text)


def atomic_write_bytes(path: PathLike, data: bytes) -> None:
    """Atomically replace ``path``'s content with ``data``."""
    with atomic_replace(path) as tmp:
        with open(tmp, "wb") as fh:
            fh.write(data)


def append_line(path: PathLike, line: str, fsync: bool = True) -> None:
    """Append one line to ``path`` crash-safely and multi-writer-safely.

    The whole line (newline included) goes down in a single ``os.write``
    on an ``O_APPEND`` descriptor: concurrent appenders — the telemetry
    flight recorders of a sharded run's workers — cannot interleave
    *within* a line, and a crash mid-write can tear at most the file's
    final line, which the telemetry reader tolerates by design.  With
    ``fsync`` (the default) the line is flushed to disk before the call
    returns, so a SIGKILL immediately after still leaves it readable.
    """
    if "\n" in line:
        raise ValueError("append_line writes exactly one line, got embedded newline")
    data = (line + "\n").encode("utf-8")
    fd = os.open(
        os.fspath(path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
    )
    try:
        os.write(fd, data)
        if fsync:
            os.fsync(fd)
    finally:
        os.close(fd)
