"""Seeded open-loop load generator: ``repro loadgen``.

Replays a live register/search/source-query mix (the request classes
"Ten weeks in the life of an eDonkey server" measures) against a
``repro serve`` process.  The mix is derived from a
:class:`~repro.trace.compiled.CompiledTrace` of the seeded synthetic
workload, so the load is *the paper's* content distribution, not
uniform noise: session clients publish their actual caches, search
terms come from published file names, and source queries are weighted
toward popular files via the compiled trace's replica counts.

The generator is open-loop: request *i* is dispatched at
``start + i / rate`` regardless of how fast earlier replies came back,
which is what makes the measured latencies meaningful under load.
Requests pipeline freely over a fixed pool of session connections
(sequence numbers keep replies matched).

Everything except wall-clock timing is deterministic from
``(seed, scale, requests, sessions)``: the plan — which session sends
which message when — is drawn from seeded :class:`~repro.util.rng.RngStream`
children, and all the requests are read-only against the published
index, so reply counters are byte-stable run to run.  That is what
lets CI gate a loadgen run's ``repro.metrics/2`` counters *exactly*
against a committed baseline while ignoring only the latency numbers.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.edonkey.messages import (
    BrowseUser,
    ConnectRequest,
    ErrorReply,
    FileDescription,
    Keyword,
    PublishFiles,
    QuerySources,
    QueryUsers,
    SearchRequest,
    ServerListRequest,
    SizeRange,
    query_and,
)
from repro.edonkey.transport import TcpTransport, TransportError
from repro.edonkey.wire import WireError
from repro.obs import LATENCY_BOUNDS_S, NULL_OBSERVER, Observer
from repro.util.rng import RngStream

#: Request-mix weights (fractions of the open-loop stream), loosely
#: matching the live-server measurements: searches and source queries
#: dominate, nickname lookups and browses are a steady trickle.
MIX_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("search", 0.40),
    ("sources", 0.30),
    ("browse", 0.12),
    ("users", 0.10),
    ("serverlist", 0.08),
)


@dataclass
class LoadGenConfig:
    """Knobs of one ``repro loadgen`` run."""

    host: str = "127.0.0.1"
    port: int = 0
    requests: int = 1000
    rate: float = 500.0  # offered load, requests/second
    sessions: int = 8
    seed: int = 0
    scale: str = "tiny"  # trace the request mix is derived from
    timeout_s: float = 30.0
    connect_retries: int = 25  # covers the serve-process startup race

    def __post_init__(self) -> None:
        if self.requests <= 0:
            raise ValueError(f"requests must be > 0, got {self.requests}")
        if self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")
        if self.sessions <= 0:
            raise ValueError(f"sessions must be > 0, got {self.sessions}")


@dataclass
class SessionPlan:
    """One load-generator session: a trace client and its cache."""

    client_id: int
    nickname: str
    files: List[FileDescription]


@dataclass
class Op:
    """One scheduled request."""

    session: int  # index into LoadPlan.sessions
    kind: str  # one of MIX_WEIGHTS
    message: object


@dataclass
class LoadPlan:
    """The full deterministic request plan of one run."""

    sessions: List[SessionPlan]
    ops: List[Op]
    mix: Dict[str, int] = field(default_factory=dict)


def _to_description(meta) -> FileDescription:
    return FileDescription(
        file_id=meta.file_id,
        name=meta.name or meta.file_id,
        size=meta.size,
        kind=meta.kind,
    )


def build_plan(config: LoadGenConfig) -> LoadPlan:
    """Derive the deterministic request plan from the compiled trace."""
    from repro.runtime import SHARED_TRACE_CACHE, Scale

    scale = Scale[config.scale.upper()]
    static = SHARED_TRACE_CACHE.static(scale, config.seed)
    compiled = static.compiled()

    def nickname(client_id: int) -> str:
        meta = static.clients.get(client_id)
        if meta is not None and meta.nickname:
            return meta.nickname
        return f"user-{client_id}"

    # Session clients: sharers (non-empty compiled cache) in client-id
    # order, assigned round-robin until the pool is full.
    sharer_rows = [
        row
        for row in range(len(compiled.client_ids))
        if compiled.cache_sets[row]
    ]
    if not sharer_rows:
        raise ValueError(
            f"trace (scale={config.scale}, seed={config.seed}) has no "
            "sharers to derive a load plan from"
        )
    sessions: List[SessionPlan] = []
    for index in range(config.sessions):
        row = sharer_rows[index % len(sharer_rows)]
        client_id = compiled.client_ids[row]
        files = [
            _to_description(static.files[compiled.file_ids[idx]])
            for idx in sorted(compiled.cache_sets[row])
        ]
        sessions.append(
            SessionPlan(
                # Round-robin reuse of a sharer must not collide on
                # client id — the server keys sessions by it.
                client_id=1_000_000 * (index // len(sharer_rows)) + client_id,
                nickname=nickname(client_id),
                files=files,
            )
        )

    # Popularity-weighted file pool for source queries (the head of the
    # replica-count distribution gets most of the traffic), and the
    # published-name token pool for searches.
    published = sorted(
        {desc.file_id: desc for s in sessions for desc in s.files}.values(),
        key=lambda d: d.file_id,
    )
    by_popularity = sorted(
        range(len(compiled.file_ids)),
        key=lambda idx: (-compiled.static_counts[idx], compiled.file_ids[idx]),
    )
    popular_ids = [compiled.file_ids[idx] for idx in by_popularity[:256]]

    rng = RngStream(config.seed, "loadgen").child("plan").py
    ops: List[Op] = []
    mix: Dict[str, int] = {kind: 0 for kind, _ in MIX_WEIGHTS}
    for _ in range(config.requests):
        session = rng.randrange(len(sessions))
        requester = sessions[session].client_id
        draw = rng.random()
        acc = 0.0
        kind = MIX_WEIGHTS[-1][0]
        for name, weight in MIX_WEIGHTS:
            acc += weight
            if draw < acc:
                kind = name
                break
        if kind == "search":
            desc = rng.choice(published)
            term = rng.choice(desc.tokens())
            query = (
                query_and(Keyword(term), SizeRange(min_size=1))
                if rng.random() < 0.2
                else Keyword(term)
            )
            message: object = SearchRequest(
                client_id=requester, query=query
            )
        elif kind == "sources":
            file_id = rng.choice(popular_ids)
            message = QuerySources(client_id=requester, file_id=file_id)
        elif kind == "browse":
            target = sessions[rng.randrange(len(sessions))].client_id
            message = BrowseUser(requester_id=requester, target_id=target)
        elif kind == "users":
            nick = sessions[rng.randrange(len(sessions))].nickname
            start = rng.randrange(max(1, len(nick) - 2))
            message = QueryUsers(pattern=nick[start : start + 3])
        else:
            message = ServerListRequest()
        mix[kind] += 1
        ops.append(Op(session=session, kind=kind, message=message))
    return LoadPlan(sessions=sessions, ops=ops, mix=mix)


@dataclass
class LoadGenResult:
    """Outcome of one run (latencies in milliseconds)."""

    requests: int
    ok: int
    errors: int
    timeouts: int
    elapsed_s: float
    p50_ms: float
    p99_ms: float
    throughput_rps: float
    mix: Dict[str, int]

    def summary(self) -> str:
        return (
            f"{self.requests} requests in {self.elapsed_s:.2f}s "
            f"({self.throughput_rps:.0f} req/s): {self.ok} ok, "
            f"{self.errors} errors, {self.timeouts} timeouts; "
            f"latency p50 {self.p50_ms:.2f}ms p99 {self.p99_ms:.2f}ms"
        )


def _percentile_ms(latencies_s: List[float], q: float) -> float:
    if not latencies_s:
        return 0.0
    ordered = sorted(latencies_s)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank] * 1000.0


async def run_loadgen(
    config: LoadGenConfig, obs: Optional[Observer] = None
) -> LoadGenResult:
    """Connect, publish, replay the plan open-loop, report."""
    obs = obs if obs is not None else NULL_OBSERVER
    plan = build_plan(config)
    transports: List[TcpTransport] = []
    try:
        for session in plan.sessions:
            transport = await TcpTransport.open(
                config.host,
                config.port,
                retries=config.connect_retries,
            )
            transports.append(transport)
            reply = await transport.request(
                ConnectRequest(
                    client_id=session.client_id,
                    nickname=session.nickname,
                    firewalled=False,
                ),
                timeout=config.timeout_s,
            )
            if reply is None or not getattr(reply, "accepted", False):
                raise TransportError(
                    f"session {session.client_id}: connect rejected ({reply})"
                )
            ack = await transport.request(
                PublishFiles(client_id=session.client_id, files=session.files),
                timeout=config.timeout_s,
            )
            if isinstance(ack, ErrorReply):
                raise TransportError(
                    f"session {session.client_id}: publish failed: "
                    f"{ack.reason}"
                )
        obs.gauge("loadgen/sessions", len(plan.sessions))

        loop = asyncio.get_running_loop()
        latencies: List[float] = []
        outcomes = {"ok": 0, "errors": 0, "timeouts": 0}
        wire_failure: List[BaseException] = []

        async def fire(index: int, op: Op) -> None:
            delay = start + index / config.rate - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            obs.count(f"loadgen/sent/{op.kind}")
            t0 = loop.time()
            try:
                reply = await transports[op.session].request(
                    op.message, timeout=config.timeout_s
                )
            except WireError as exc:
                obs.count("loadgen/wire_errors")
                wire_failure.append(exc)
                outcomes["errors"] += 1
                return
            elapsed = loop.time() - t0
            latencies.append(elapsed)
            obs.hist("loadgen/latency_s", elapsed, LATENCY_BOUNDS_S)
            obs.hist(
                f"loadgen/latency_s/{op.kind}", elapsed, LATENCY_BOUNDS_S
            )
            if reply is None:
                outcomes["timeouts"] += 1
                obs.count("loadgen/timeouts")
            elif isinstance(reply, ErrorReply):
                outcomes["errors"] += 1
                obs.count("loadgen/errors")
            else:
                outcomes["ok"] += 1
                obs.count(f"loadgen/ok/{op.kind}")

        start = loop.time()
        await asyncio.gather(
            *(fire(index, op) for index, op in enumerate(plan.ops))
        )
        elapsed_s = loop.time() - start
        if wire_failure:
            raise wire_failure[0]
    finally:
        for transport in transports:
            await transport.aclose()

    result = LoadGenResult(
        requests=len(plan.ops),
        ok=outcomes["ok"],
        errors=outcomes["errors"],
        timeouts=outcomes["timeouts"],
        elapsed_s=elapsed_s,
        p50_ms=_percentile_ms(latencies, 0.50),
        p99_ms=_percentile_ms(latencies, 0.99),
        throughput_rps=len(plan.ops) / elapsed_s if elapsed_s else 0.0,
        mix=plan.mix,
    )
    obs.gauge("loadgen/offered_rps", config.rate)
    obs.gauge("loadgen/achieved_rps", result.throughput_rps)
    obs.gauge("loadgen/p50_ms", result.p50_ms)
    obs.gauge("loadgen/p99_ms", result.p99_ms)
    obs.gauge("loadgen/elapsed_s", result.elapsed_s)
    return result
