"""The live index service: ``repro serve``.

Stands the simulator's :class:`~repro.edonkey.server.Server` up as a
long-running asyncio TCP service.  The message plane layers compose
here exactly as in the simulation — only the transport differs:

- frames arrive over asyncio streams and are decoded by
  :mod:`repro.edonkey.wire` (``repro.wire/1``);
- each decoded request passes through the *same*
  :class:`~repro.edonkey.protocol.ServerProtocolHandler` the in-memory
  network uses, wrapped in the *same*
  :meth:`~repro.faults.FaultInjector.filtered_dispatch` fault seam;
- the reply is framed back with the request's sequence number, so
  clients can pipeline and still match replies when the fault injector
  suppresses some.

Handlers returning ``None`` (``PublishFiles``) or a bare bool
(``CallbackRequest``) are wrapped into :class:`~repro.edonkey.messages.Ack`;
handler-level protocol errors (publish before connect) become
:class:`~repro.edonkey.messages.ErrorReply` rather than a torn
connection.  When a connection closes, every client id that connected
on it is disconnected from the index — the TCP session *is* the
eDonkey session.

Shutdown is graceful: SIGTERM/SIGINT stop the listener, in-flight
connections get ``grace_s`` seconds to finish, stragglers are
cancelled (their sessions still unpublished), and ``repro serve``
exits 0 — the drain contract the CI smoke job asserts.
"""

from __future__ import annotations

import asyncio
import signal
from dataclasses import dataclass, field
from typing import Optional, Set

from repro.edonkey.messages import Ack, ConnectRequest, ErrorReply
from repro.edonkey.protocol import (
    ServerProtocolHandler,
    UnroutableMessageError,
)
from repro.edonkey.server import Server, ServerConfig
from repro.edonkey.wire import WireError, read_frame, write_frame
from repro.faults import FaultConfig, FaultInjector
from repro.obs import NULL_OBSERVER, Observer
from repro.util.rng import RngStream

#: Sentinel: the fault injector suppressed the reply (drop/timeout) —
#: send nothing and let the client's deadline expire.
_SUPPRESS = object()


@dataclass
class ServiceConfig:
    """Knobs of one ``repro serve`` process."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = pick a free port; IndexService.port has the answer
    seed: int = 0  # drives the fault injector's RNG streams
    max_users: int = 200_000
    reply_limit: int = 200
    supports_query_users: bool = True
    grace_s: float = 5.0
    faults: FaultConfig = field(default_factory=FaultConfig)


class IndexService:
    """One index server behind an asyncio TCP listener."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        obs: Optional[Observer] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.obs = obs if obs is not None else NULL_OBSERVER
        self.server = Server(
            server_id=0,
            config=ServerConfig(
                max_users=self.config.max_users,
                reply_limit=self.config.reply_limit,
                supports_query_users=self.config.supports_query_users,
            ),
        )
        self.handler = ServerProtocolHandler(self.server, obs=self.obs)
        self.faults = FaultInjector(
            self.config.faults, RngStream(self.config.seed, "service-faults")
        )
        self.requests_total = 0
        self.port: Optional[int] = None
        self._listener: Optional[asyncio.AbstractServer] = None
        self._connections: Set[asyncio.Task] = set()
        self._draining = False
        self._stop_event: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------
    # Lifecycle

    async def start(self) -> int:
        """Bind and start accepting; returns the bound port."""
        self._stop_event = asyncio.Event()
        self._listener = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        self.port = self._listener.sockets[0].getsockname()[1]
        return self.port

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT to a graceful drain (POSIX loops only)."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_stop)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass

    def request_stop(self) -> None:
        """Ask the service to drain; safe to call from a signal handler."""
        if self._stop_event is not None and not self._stop_event.is_set():
            self._stop_event.set()

    async def serve_until_stopped(self) -> None:
        """Block until :meth:`request_stop`, then drain and return."""
        assert self._stop_event is not None, "start() first"
        await self._stop_event.wait()
        await self.drain()

    async def drain(self) -> None:
        """Stop accepting, let live connections finish, then close up.

        In-flight requests complete on their own; idle keep-alive
        connections would park the drain forever, so after ``grace_s``
        seconds the stragglers are cancelled (each cancelled handler
        still runs its disconnect bookkeeping).
        """
        self._draining = True
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
        if self._connections:
            done, pending = await asyncio.wait(
                set(self._connections), timeout=self.config.grace_s
            )
            if pending:
                self.obs.count("service/connections_aborted", len(pending))
                for task in pending:
                    task.cancel()
                await asyncio.wait(pending, timeout=1.0)
        self.obs.gauge("progress/requests_done", self.requests_total)
        self.obs.gauge("progress/active_connections", 0)

    # ------------------------------------------------------------------
    # Per-connection session loop

    async def _on_connection(self, reader, writer) -> None:
        if self._draining:
            writer.close()
            return
        task = asyncio.current_task()
        self._connections.add(task)
        connected: Set[int] = set()
        self.obs.count("service/connections")
        self.obs.gauge("progress/active_connections", len(self._connections))
        try:
            while True:
                try:
                    frame = await read_frame(reader)
                except WireError as exc:
                    # A peer speaking garbage gets one framed error,
                    # then the connection is closed: past this point
                    # the byte stream cannot be trusted.
                    self.obs.count("service/wire_errors")
                    try:
                        await write_frame(writer, ErrorReply(reason=str(exc)))
                    except (ConnectionError, OSError):
                        pass
                    break
                if frame is None:
                    break
                message, seq = frame
                reply = self._handle(message, connected)
                if reply is _SUPPRESS:
                    continue
                await write_frame(writer, reply, seq=seq)
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            for client_id in sorted(connected):
                self.server.handle_disconnect(client_id)
            writer.close()
            self._connections.discard(task)
            self.obs.gauge(
                "progress/active_connections", len(self._connections)
            )

    def _handle(self, message, connected: Set[int]):
        """Dispatch one decoded request; returns the wire reply."""
        self.requests_total += 1
        self.obs.gauge("progress/requests_done", self.requests_total)

        def dispatch(msg):
            try:
                reply = self.handler.handle(msg)
            except UnroutableMessageError as exc:
                self.obs.count("service/unroutable")
                return ErrorReply(reason=str(exc))
            except KeyError as exc:
                # Handler-level protocol errors, e.g. publish before
                # connect — report, don't tear the connection down.
                self.obs.count("service/protocol_errors")
                return ErrorReply(reason=f"protocol error: {exc}")
            if isinstance(msg, ConnectRequest) and reply.accepted:
                connected.add(msg.client_id)
            if reply is None:
                return Ack()
            if isinstance(reply, bool):
                return Ack(ok=reply)
            return reply

        if not self.faults.enabled:
            return dispatch(message)
        reply = self.faults.filtered_dispatch(message, dispatch)
        if reply is None:
            # Dropped or timed out at the transport seam (or an Ack
            # degraded to nothing): the client's deadline handles it.
            self.obs.count("service/replies_suppressed")
            return _SUPPRESS
        return reply


async def run_service(
    config: Optional[ServiceConfig] = None,
    obs: Optional[Observer] = None,
    port_file: Optional[str] = None,
    announce=print,
) -> IndexService:
    """Start a service, publish its port, and serve until stopped.

    ``port_file`` (atomic write) is how scripted runs discover a
    ``--port 0`` listener; ``announce`` receives one human-readable
    line once the socket is bound.
    """
    service = IndexService(config, obs=obs)
    port = await service.start()
    service.install_signal_handlers()
    if port_file:
        from repro.util.atomic import atomic_write_text

        atomic_write_text(port_file, f"{port}\n")
    announce(
        f"Serving eDonkey index on {service.config.host}:{port} "
        "(SIGTERM drains)"
    )
    await service.serve_until_stopped()
    return service
