"""Service mode: the index server as a live asyncio process.

``repro serve`` (:mod:`repro.service.server`) binds the simulator's
index server behind a TCP listener speaking ``repro.wire/1`` frames;
``repro loadgen`` (:mod:`repro.service.loadgen`) replays a seeded,
trace-derived request mix against it and reports latency percentiles.

This package (and everything async underneath it) is imported lazily
from the CLI so the cold-import baseline stays asyncio-free.
"""

from repro.service.loadgen import (
    LoadGenConfig,
    LoadGenResult,
    LoadPlan,
    build_plan,
    run_loadgen,
)
from repro.service.server import IndexService, ServiceConfig, run_service

__all__ = [
    "IndexService",
    "LoadGenConfig",
    "LoadGenResult",
    "LoadPlan",
    "ServiceConfig",
    "build_plan",
    "run_loadgen",
    "run_service",
]
