"""Pessimistic cache extrapolation (Section 2.3).

For dynamic analyses the paper keeps only clients that were connected at
least 5 times over the period with at least 10 days between the first and
last connection, then fills every unobserved day between two observations
with the **intersection** of the caches at the previous and the subsequent
connection.  This underestimates the actual content ("pessimistic"), which
makes the clustering results conservative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List

from repro.trace.model import FileId, Snapshot, Trace
from repro.util.validation import check_positive


FILL_MODES = ("intersection", "union", "previous")


@dataclass(frozen=True)
class ExtrapolationConfig:
    """Eligibility thresholds and gap-fill rule for the extrapolated trace.

    Defaults are the paper's: at least ``min_connections`` successful
    snapshots, spanning at least ``min_span_days`` days, gaps filled with
    the **intersection** of the neighbouring observations (the pessimistic
    rule, which under-estimates cache contents and therefore makes the
    clustering results conservative).

    ``fill`` selects the rule, mainly for sensitivity analyses:

    - ``"intersection"`` — the paper's pessimistic rule;
    - ``"union"`` — the optimistic upper bound (every file seen on either
      side is assumed present throughout the gap);
    - ``"previous"`` — carry the last observation forward (the common
      last-value-hold heuristic, between the two bounds).
    """

    min_connections: int = 5
    min_span_days: int = 10
    fill: str = "intersection"

    def __post_init__(self) -> None:
        check_positive("min_connections", self.min_connections)
        check_positive("min_span_days", self.min_span_days)
        if self.fill not in FILL_MODES:
            raise ValueError(
                f"fill must be one of {FILL_MODES}, got {self.fill!r}"
            )


def eligible_clients(trace: Trace, config: ExtrapolationConfig) -> List[int]:
    """Clients meeting the connection-count and span thresholds."""
    out: List[int] = []
    for client_id in trace.clients:
        days = trace.observation_days(client_id)
        if len(days) < config.min_connections:
            continue
        if days[-1] - days[0] < config.min_span_days:
            continue
        out.append(client_id)
    return out


def extrapolate(
    trace: Trace,
    config: ExtrapolationConfig = ExtrapolationConfig(),
) -> Trace:
    """Return the *extrapolated trace*.

    Only eligible clients are kept.  For each kept client, every day strictly
    between two consecutive observations receives a synthetic snapshot equal
    to the intersection of the two observed caches.  Days before the first
    and after the last observation are left unobserved.
    """
    kept = eligible_clients(trace, config)
    out = Trace(
        files=trace.files,
        clients={c: trace.clients[c] for c in kept},
    )
    for client_id in kept:
        days = trace.observation_days(client_id)
        # Copy the real observations.
        for day in days:
            cache = trace.cache(client_id, day)
            assert cache is not None
            out.add_snapshot(Snapshot(day, client_id, cache))
        # Fill the gaps per the configured rule.
        for prev_day, next_day in zip(days, days[1:]):
            if next_day - prev_day <= 1:
                continue
            prev_cache = trace.cache(client_id, prev_day)
            next_cache = trace.cache(client_id, next_day)
            assert prev_cache is not None and next_cache is not None
            if config.fill == "intersection":
                filler: FrozenSet[FileId] = prev_cache & next_cache
            elif config.fill == "union":
                filler = prev_cache | next_cache
            else:  # previous
                filler = prev_cache
            for day in range(prev_day + 1, next_day):
                out.add_snapshot(Snapshot(day, client_id, filler))
    return out
