"""Trace-level statistics (Table 1, Figures 1-3).

These functions compute the paper's "general trace characteristics": the
per-day client/file counts (Figure 1), the new-vs-total file discovery curve
(Figure 2), the post-extrapolation daily counts (Figure 3) and the summary
rows of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple  # noqa: F401

from repro.trace.model import FileId, Trace
from repro.util.cdf import Series


@dataclass(frozen=True)
class TraceCharacteristics:
    """The rows of Table 1 for one trace variant."""

    duration_days: int
    num_clients: int
    num_free_riders: int
    num_snapshots: int
    num_distinct_files: int
    total_bytes_distinct_files: int

    @property
    def free_rider_fraction(self) -> float:
        if self.num_clients == 0:
            return 0.0
        return self.num_free_riders / self.num_clients


def general_characteristics(trace: Trace) -> TraceCharacteristics:
    """Compute the Table 1 summary for a trace."""
    days = trace.days()
    duration = (days[-1] - days[0] + 1) if days else 0
    distinct = trace.distinct_files()
    total_bytes = 0
    for fid in distinct:
        meta = trace.files.get(fid)
        if meta is not None:
            total_bytes += meta.size
    return TraceCharacteristics(
        duration_days=duration,
        num_clients=len(trace.clients),
        num_free_riders=len(trace.free_riders()),
        num_snapshots=trace.num_snapshots,
        num_distinct_files=len(distinct),
        total_bytes_distinct_files=total_bytes,
    )


def daily_counts(trace: Trace) -> Tuple[Series, Series, Series]:
    """Per-day series: clients browsed, files observed (with multiplicity
    collapsed per day), and non-empty caches.

    Returns ``(clients, files, non_empty_caches)`` — the data behind
    Figures 1 and 3.
    """
    clients = Series(name="clients")
    files = Series(name="files")
    non_empty = Series(name="non-empty caches")
    for day in trace.days():
        snaps = trace.snapshots_on(day)
        day_files: Set[FileId] = set()
        n_non_empty = 0
        for cache in snaps.values():
            day_files.update(cache)
            if cache:
                n_non_empty += 1
        clients.append(day, len(snaps))
        files.append(day, len(day_files))
        non_empty.append(day, n_non_empty)
    return clients, files, non_empty


def discovery_curve(trace: Trace) -> Tuple[Series, Series]:
    """New files discovered per day and the cumulative total (Figure 2)."""
    seen: Set[FileId] = set()
    new_files = Series(name="new files")
    total_files = Series(name="total files")
    for day in trace.days():
        fresh = 0
        for cache in trace.snapshots_on(day).values():
            for fid in cache:
                if fid not in seen:
                    seen.add(fid)
                    fresh += 1
        new_files.append(day, fresh)
        total_files.append(day, len(seen))
    return new_files, total_files


def new_files_per_client_per_day(trace: Trace) -> float:
    """Average number of never-before-seen files contributed per browsed
    client per day — the paper reports ~5 for its trace."""
    new_files, _ = discovery_curve(trace)
    clients, _, _ = daily_counts(trace)
    days = trace.days()
    if len(days) < 2:
        raise ValueError("need at least 2 days to measure discovery rate")
    # Skip the first day: everything is "new" on day one by construction.
    total_new = sum(new_files.ys[1:])
    total_clients = sum(clients.ys[1:])
    if total_clients == 0:
        return 0.0
    return total_new / total_clients


def mean_cache_size_series(trace: Trace, sharers_only: bool = True) -> Series:
    """Mean observed cache size per day.

    The paper's conclusion: "clients share a roughly constant number of
    files over time, but the turnover is high" — this series is the flat
    line behind the first half of that sentence.  ``sharers_only`` skips
    empty caches (free-riders would drag the mean toward zero).
    """
    series = Series(name="mean cache size")
    for day in trace.days():
        sizes = [
            len(cache)
            for cache in trace.snapshots_on(day).values()
            if cache or not sharers_only
        ]
        if sizes:
            series.append(day, sum(sizes) / len(sizes))
    return series


def cache_turnover(trace: Trace) -> Dict[int, float]:
    """Mean per-client cache replacement per day.

    For each pair of consecutive observations of the same client, counts the
    files added, normalized by the gap in days; returns day -> mean adds.
    Used to validate the "about 5 cache replacements per client per day"
    observation of Section 4.2.2.
    """
    per_day_adds: Dict[int, List[float]] = {}
    for client_id in trace.clients:
        days = trace.observation_days(client_id)
        for prev_day, next_day in zip(days, days[1:]):
            prev_cache = trace.cache(client_id, prev_day)
            next_cache = trace.cache(client_id, next_day)
            assert prev_cache is not None and next_cache is not None
            gap = next_day - prev_day
            added = len(next_cache - prev_cache) / gap
            per_day_adds.setdefault(next_day, []).append(added)
    return {
        day: (sum(vals) / len(vals)) for day, vals in per_day_adds.items() if vals
    }
