"""Core trace datatypes.

Terminology follows the paper:

- a **snapshot** is one successful browse of one client's shared-file cache
  on one day;
- a **free-rider** is a client whose cache was empty in every snapshot;
- a file's **sources** on a day are the clients whose snapshot that day
  contains the file;
- a client's **static cache** is the union of its caches over all days —
  Section 5 runs the search simulation on this static view.

Days are plain integers.  The paper numbers days within the measurement
period as day-of-year-like values (e.g. "day 348"); nothing in the library
depends on the origin, only on ordering.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.trace.compiled import CompiledTrace

FileId = str
ClientId = int


@dataclass(frozen=True)
class FileMeta:
    """Metadata of a shared file.

    ``size`` is in bytes.  ``kind`` is a coarse content class used by the
    analyses that single out audio files (Figure 13); the synthetic workload
    uses ``audio``, ``video``, ``album``, ``program`` and ``document``.
    ``category`` is the interest category the file belongs to in the
    synthetic workload (``-1`` when unknown, e.g. for crawled traces).
    """

    file_id: FileId
    size: int
    kind: str = "unknown"
    category: int = -1
    name: str = ""

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"file size must be >= 0, got {self.size}")
        if not self.file_id:
            raise ValueError("file_id must be non-empty")


@dataclass(frozen=True)
class ClientMeta:
    """Metadata of a crawled client.

    ``uid`` is the eDonkey unique identifier (a hash in real clients);
    ``ip`` is dotted-quad text.  Clients that reinstall their software get a
    fresh ``uid``; clients on DHCP change ``ip`` — the filtering step uses
    both to discard ambiguous identities.
    """

    client_id: ClientId
    uid: str
    ip: str
    country: str
    asn: int
    nickname: str = ""

    def __post_init__(self) -> None:
        if not self.uid:
            raise ValueError("uid must be non-empty")
        if not self.country:
            raise ValueError("country must be non-empty")


@dataclass(frozen=True)
class Snapshot:
    """One successful browse of one client's cache on one day."""

    day: int
    client_id: ClientId
    file_ids: FrozenSet[FileId]

    @property
    def empty(self) -> bool:
        return len(self.file_ids) == 0


class Trace:
    """A collection of daily cache snapshots plus file/client metadata.

    The structure is deliberately simple — nested dictionaries — with the
    derived indexes (file sources, free-rider sets) computed on demand and
    cached, and invalidated whenever a snapshot is added.

    Days with no snapshots simply do not appear in :meth:`days`.
    """

    def __init__(
        self,
        files: Optional[Mapping[FileId, FileMeta]] = None,
        clients: Optional[Mapping[ClientId, ClientMeta]] = None,
    ) -> None:
        self.files: Dict[FileId, FileMeta] = dict(files or {})
        self.clients: Dict[ClientId, ClientMeta] = dict(clients or {})
        # day -> client -> cache
        self._snapshots: Dict[int, Dict[ClientId, FrozenSet[FileId]]] = {}
        self._snapshot_count = 0
        self._dirty = True
        self._static_caches: Dict[ClientId, Set[FileId]] = {}
        self._observation_days: Dict[ClientId, List[int]] = {}
        # Memoized replica counts, invalidated on observe/add_snapshot.
        self._static_counts: Optional[Counter] = None
        self._day_counts: Dict[int, Counter] = {}

    # ------------------------------------------------------------------
    # Construction

    def add_file(self, meta: FileMeta) -> None:
        self.files[meta.file_id] = meta

    def add_client(self, meta: ClientMeta) -> None:
        self.clients[meta.client_id] = meta

    def add_snapshot(self, snapshot: Snapshot) -> None:
        """Record a snapshot.  Re-observing the same (day, client) replaces
        the earlier observation (the crawler connects repeatedly; the last
        browse of the day wins)."""
        if snapshot.client_id not in self.clients:
            raise KeyError(
                f"snapshot references unknown client {snapshot.client_id}"
            )
        day_map = self._snapshots.setdefault(snapshot.day, {})
        if snapshot.client_id not in day_map:
            self._snapshot_count += 1
        day_map[snapshot.client_id] = snapshot.file_ids
        self._dirty = True
        self._static_counts = None
        self._day_counts.pop(snapshot.day, None)

    def observe(self, day: int, client_id: ClientId, file_ids: Iterable[FileId]) -> None:
        """Convenience wrapper around :meth:`add_snapshot`."""
        self.add_snapshot(Snapshot(day, client_id, frozenset(file_ids)))

    def drop_day(self, day: int) -> None:
        """Discard a day's snapshots after they have been persisted.

        The streaming crawl appends each day to an on-disk store and then
        drops it, so resident memory is bounded by one day regardless of
        crawl length.  ``num_snapshots`` keeps counting dropped
        observations (it reports what was crawled, not what is resident);
        derived caches are invalidated because the in-memory view changed.
        """
        if self._snapshots.pop(day, None) is None:
            return
        self._dirty = True
        self._static_counts = None
        self._day_counts.pop(day, None)

    # ------------------------------------------------------------------
    # Basic accessors

    def days(self) -> List[int]:
        """Sorted list of days having at least one snapshot."""
        return sorted(self._snapshots)

    @property
    def num_snapshots(self) -> int:
        """Number of (day, client) observations recorded."""
        return self._snapshot_count

    def observed_clients(self, day: int) -> List[ClientId]:
        """Clients snapshotted on ``day`` (empty list if the day is absent)."""
        return list(self._snapshots.get(day, {}))

    def cache(self, client_id: ClientId, day: int) -> Optional[FrozenSet[FileId]]:
        """The cache observed for ``client_id`` on ``day``, or ``None`` if
        the client was not observed that day."""
        return self._snapshots.get(day, {}).get(client_id)

    def snapshots_on(self, day: int) -> Dict[ClientId, FrozenSet[FileId]]:
        """Mapping client -> cache for ``day`` (a shallow copy)."""
        return dict(self._snapshots.get(day, {}))

    def iter_snapshots(self) -> Iterator[Snapshot]:
        """Iterate over all snapshots in (day, client) order."""
        for day in self.days():
            day_map = self._snapshots[day]
            for client_id in sorted(day_map):
                yield Snapshot(day, client_id, day_map[client_id])

    def iter_day_snapshots(
        self,
    ) -> Iterator[Tuple[int, Mapping[ClientId, FrozenSet[FileId]]]]:
        """Iterate ``(day, {client -> cache})`` in day order, without
        copying the per-day maps — the unit of work for day-at-a-time
        consumers (the on-disk store converter streams over this)."""
        for day in self.days():
            yield day, self._snapshots[day]

    # ------------------------------------------------------------------
    # Derived indexes

    def _rebuild(self) -> None:
        if not self._dirty:
            return
        static: Dict[ClientId, Set[FileId]] = defaultdict(set)
        obs_days: Dict[ClientId, List[int]] = defaultdict(list)
        for day in self.days():
            for client_id, cache in self._snapshots[day].items():
                static[client_id].update(cache)
                obs_days[client_id].append(day)
        # Clients with metadata but no snapshots still get (empty) entries so
        # that free-rider accounting matches the number of known clients.
        for client_id in self.clients:
            static.setdefault(client_id, set())
            obs_days.setdefault(client_id, [])
        self._static_caches = dict(static)
        self._observation_days = {c: sorted(d) for c, d in obs_days.items()}
        self._dirty = False

    def static_cache(self, client_id: ClientId) -> Set[FileId]:
        """Union of the client's caches over all observation days."""
        self._rebuild()
        return set(self._static_caches.get(client_id, set()))

    def observation_days(self, client_id: ClientId) -> List[int]:
        """Sorted days on which ``client_id`` was successfully browsed."""
        self._rebuild()
        return list(self._observation_days.get(client_id, []))

    def is_free_rider(self, client_id: ClientId) -> bool:
        """True when every observed cache of the client was empty."""
        self._rebuild()
        return len(self._static_caches.get(client_id, set())) == 0

    def free_riders(self) -> Set[ClientId]:
        self._rebuild()
        return {c for c, cache in self._static_caches.items() if not cache}

    def distinct_files(self) -> Set[FileId]:
        """All file ids observed in any snapshot."""
        self._rebuild()
        out: Set[FileId] = set()
        for cache in self._static_caches.values():
            out.update(cache)
        return out

    def sources(self, file_id: FileId, day: int) -> List[ClientId]:
        """Clients sharing ``file_id`` on ``day``."""
        return [
            client_id
            for client_id, cache in self._snapshots.get(day, {}).items()
            if file_id in cache
        ]

    def replica_counts(self, day: int) -> Counter:
        """Counter file_id -> number of sources on ``day``.

        Memoized per day; re-observing a day drops that day's memo.  The
        returned Counter is a copy — callers may mutate it freely.
        """
        memo = self._day_counts.get(day)
        if memo is None:
            memo = Counter()
            for cache in self._snapshots.get(day, {}).values():
                memo.update(cache)
            self._day_counts[day] = memo
        return Counter(memo)

    def static_replica_counts(self) -> Counter:
        """Counter file_id -> number of distinct clients that ever shared it.

        Memoized; any new snapshot invalidates.  The returned Counter is
        a copy — callers may mutate it freely.
        """
        if self._static_counts is None:
            self._rebuild()
            counts: Counter = Counter()
            for cache in self._static_caches.values():
                counts.update(cache)
            self._static_counts = counts
        return Counter(self._static_counts)

    def file_observation_days(self) -> Dict[FileId, int]:
        """For each file, the number of distinct days it was seen on."""
        seen: Dict[FileId, Set[int]] = defaultdict(set)
        for day in self.days():
            for cache in self._snapshots[day].values():
                for fid in cache:
                    seen[fid].add(day)
        return {fid: len(days) for fid, days in seen.items()}

    def average_popularity(self) -> Dict[FileId, float]:
        """Section 4.1's *average popularity*: distinct sources of the file
        divided by the number of days the file was seen in the trace."""
        days_seen = self.file_observation_days()
        static_counts = self.static_replica_counts()
        return {
            fid: static_counts[fid] / days_seen[fid]
            for fid in days_seen
            if days_seen[fid] > 0
        }

    # ------------------------------------------------------------------
    # Conversions

    def to_static(self, drop_free_riders: bool = False) -> "StaticTrace":
        """Collapse the temporal dimension: each client's cache becomes the
        union over days.  This is the input to the Section 5 simulations."""
        self._rebuild()
        caches = {
            cid: frozenset(cache)
            for cid, cache in self._static_caches.items()
            if cache or not drop_free_riders
        }
        return StaticTrace(
            caches=caches,
            files=dict(self.files),
            clients=dict(self.clients),
        )

    def restricted_to_days(self, days: Iterable[int]) -> "Trace":
        """A new trace containing only snapshots of the given days."""
        wanted = set(days)
        out = Trace(files=self.files, clients=self.clients)
        for day in self.days():
            if day not in wanted:
                continue
            for client_id, cache in self._snapshots[day].items():
                out.add_snapshot(Snapshot(day, client_id, cache))
        return out

    def restricted_to_clients(self, client_ids: Iterable[ClientId]) -> "Trace":
        """A new trace containing only the given clients (metadata and
        snapshots); file metadata is shared."""
        wanted = set(client_ids)
        out = Trace(
            files=self.files,
            clients={c: m for c, m in self.clients.items() if c in wanted},
        )
        for day in self.days():
            for client_id, cache in self._snapshots[day].items():
                if client_id in wanted:
                    out.add_snapshot(Snapshot(day, client_id, cache))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Trace(clients={len(self.clients)}, files={len(self.files)}, "
            f"days={len(self._snapshots)}, snapshots={self._snapshot_count})"
        )


@dataclass
class StaticTrace:
    """A time-collapsed trace: one cache per client.

    This is the unit of input for the semantic-search simulator, the
    randomization algorithm, and the static analyses.  ``caches`` maps every
    known client (including free-riders, unless dropped) to a frozen set of
    file ids.
    """

    caches: Dict[ClientId, FrozenSet[FileId]]
    files: Dict[FileId, FileMeta] = field(default_factory=dict)
    clients: Dict[ClientId, ClientMeta] = field(default_factory=dict)
    # Memoized derived views.  Every StaticTrace-producing operation in
    # the library returns a *new* instance, so these never go stale; the
    # escape hatch for in-place cache mutation is invalidate_compiled().
    _compiled: Optional["CompiledTrace"] = field(
        default=None, init=False, repr=False, compare=False
    )
    _replica_counts: Optional[Counter] = field(
        default=None, init=False, repr=False, compare=False
    )

    def compiled(self) -> "CompiledTrace":
        """The interned, columnar view of this trace (built once, cached).

        See :mod:`repro.trace.compiled` for the representation and the
        byte-identity guarantee.
        """
        if self._compiled is None:
            from repro.trace.compiled import CompiledTrace

            self._compiled = CompiledTrace.from_static(self)
        return self._compiled

    def invalidate_compiled(self) -> None:
        """Drop memoized views after an in-place mutation of ``caches``."""
        self._compiled = None
        self._replica_counts = None

    @property
    def num_clients(self) -> int:
        return len(self.caches)

    def non_free_riders(self) -> List[ClientId]:
        return [c for c, cache in self.caches.items() if cache]

    def free_riders(self) -> List[ClientId]:
        return [c for c, cache in self.caches.items() if not cache]

    def replica_counts(self) -> Counter:
        """Counter file_id -> replica count (memoized; returns a copy)."""
        if self._replica_counts is None:
            if self._compiled is not None:
                self._replica_counts = self._compiled.replica_counts()
            else:
                counts: Counter = Counter()
                for cache in self.caches.values():
                    counts.update(cache)
                self._replica_counts = counts
        return Counter(self._replica_counts)

    def total_replicas(self) -> int:
        return sum(len(cache) for cache in self.caches.values())

    def distinct_files(self) -> Set[FileId]:
        out: Set[FileId] = set()
        for cache in self.caches.values():
            out.update(cache)
        return out

    def generosity(self) -> Dict[ClientId, int]:
        """Number of files shared per client (the paper's *generosity*)."""
        return {c: len(cache) for c, cache in self.caches.items()}

    def shared_bytes(self, client_id: ClientId) -> int:
        """Total size in bytes of the client's shared files.

        Files without metadata count as size 0 (crawled traces may lack
        sizes for some ids)."""
        total = 0
        for fid in self.caches.get(client_id, frozenset()):
            meta = self.files.get(fid)
            if meta is not None:
                total += meta.size
        return total

    def without_clients(self, client_ids: Iterable[ClientId]) -> "StaticTrace":
        """A copy with the given clients removed entirely."""
        dropped = set(client_ids)
        return StaticTrace(
            caches={c: f for c, f in self.caches.items() if c not in dropped},
            files=self.files,
            clients={c: m for c, m in self.clients.items() if c not in dropped},
        )

    def without_files(self, file_ids: Iterable[FileId]) -> "StaticTrace":
        """A copy with the given files removed from every cache."""
        dropped = set(file_ids)
        return StaticTrace(
            caches={
                c: frozenset(f for f in cache if f not in dropped)
                for c, cache in self.caches.items()
            },
            files={f: m for f, m in self.files.items() if f not in dropped},
            clients=self.clients,
        )

    def copy_mutable(self) -> Dict[ClientId, Set[FileId]]:
        """Caches as mutable sets (for the randomization algorithm)."""
        return {c: set(cache) for c, cache in self.caches.items()}

    def replace_caches(
        self, caches: Mapping[ClientId, Iterable[FileId]]
    ) -> "StaticTrace":
        """A copy of this trace with caches replaced (metadata shared)."""
        return StaticTrace(
            caches={c: frozenset(f) for c, f in caches.items()},
            files=self.files,
            clients=self.clients,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StaticTrace(clients={self.num_clients}, "
            f"files={len(self.distinct_files())}, "
            f"replicas={self.total_replicas()})"
        )


def overlap(a: Iterable[FileId], b: FrozenSet[FileId]) -> int:
    """Number of common files between two caches."""
    a_set = a if isinstance(a, (set, frozenset)) else set(a)
    if len(a_set) > len(b):
        a_set, b = b, a_set  # type: ignore[assignment]
    return sum(1 for f in a_set if f in b)


def pair_key(a: ClientId, b: ClientId) -> Tuple[ClientId, ClientId]:
    """Canonical (sorted) key for an unordered client pair."""
    return (a, b) if a <= b else (b, a)
