"""An append-only, memory-mapped columnar trace store (``repro.tracestore/1``).

Whole-file JSONL traces (:mod:`repro.trace.io`) load everything into RAM,
capping both the number of days and the number of clients an analysis can
handle.  The paper's trace spans 56 days of ~1.16M clients; the "Ten weeks
in the life of an eDonkey server" capture is longer still.  This module
stores a trace *out of core*: one binary **segment per day**, holding the
day's snapshots as sorted interned int columns in the same CSR layout
:class:`~repro.trace.compiled.CompiledTrace` uses, so a day can be mapped
straight into the analysis kernels without parsing, string hashing, or
holding any other day in memory.

Layout of a store directory::

    manifest.json     # repro.tracestore/1: counts, byte offsets, sha256s
    files.jsonl       # one metadata record per interned file id (idx = line)
    clients.jsonl     # one metadata record per interned client id (row = line)
    day-00000012.seg  # one segment per day (see segment layout below)

Segment layout (all little-endian)::

    header   magic b"RTS1" | u32 version | i64 day | u64 n_clients | u64 n_replicas
    rows     n_clients x i32     global client rows, strictly ascending
    pad      zero bytes to the next 8-byte boundary
    offsets  (n_clients+1) x i64 CSR offsets into the files column
    files    n_replicas x i32    global file indices, ascending per client

Integrity model: every segment and both metadata tables carry a sha256 in
the manifest; the manifest itself is rewritten atomically (temp file +
rename) *after* the data it describes, so a crash mid-append leaves the
previous manifest describing intact data.  Metadata tables are append-only;
the manifest records their exact byte length, and the writer truncates any
torn tail beyond it before appending again.  ``verify_store`` re-hashes
everything and checks the structural invariants (monotone offsets, sorted
columns, in-range indices, count consistency).

Interning: file and client ids are assigned dense int indices in the order
they are first appended, sorted *within* each append batch.  A one-shot
conversion of a complete trace therefore interns in globally sorted order
(``sorted_intern`` true in the manifest); a crawler appending day by day
interns in sorted-discovery order.  Either way the mapping is recorded in
``files.jsonl``/``clients.jsonl`` and is deterministic for a given input.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import struct
from array import array
from collections import Counter
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.trace.compiled import CompiledTrace
from repro.trace.model import ClientId, ClientMeta, FileId, FileMeta, Snapshot, Trace
from repro.util.atomic import atomic_replace, atomic_write_text

PathLike = Union[str, "os.PathLike[str]"]

FORMAT = "repro.tracestore/1"
MANIFEST_NAME = "manifest.json"
FILES_NAME = "files.jsonl"
CLIENTS_NAME = "clients.jsonl"

SEGMENT_MAGIC = b"RTS1"
SEGMENT_VERSION = 1
_HEADER = struct.Struct("<4sIqQQ")  # magic, version, day, n_clients, n_replicas


class TraceStoreError(ValueError):
    """A malformed, corrupt, or inconsistent trace store."""


def _sha256_file(path: str, limit: Optional[int] = None) -> str:
    digest = hashlib.sha256()
    remaining = limit
    with open(path, "rb") as fh:
        while True:
            want = 1 << 20 if remaining is None else min(1 << 20, remaining)
            if want == 0:
                break
            chunk = fh.read(want)
            if not chunk:
                break
            digest.update(chunk)
            if remaining is not None:
                remaining -= len(chunk)
    return digest.hexdigest()


def _segment_name(day: int) -> str:
    if day < 0:
        raise TraceStoreError(f"segment days must be >= 0, got {day}")
    return f"day-{day:08d}.seg"


def _pad_to_8(n: int) -> int:
    return (-n) % 8


def _file_record(meta: FileMeta) -> str:
    return json.dumps(
        {
            "id": meta.file_id,
            "size": meta.size,
            "kind": meta.kind,
            "category": meta.category,
            "name": meta.name,
        }
    )


def _client_record(meta: ClientMeta) -> str:
    return json.dumps(
        {
            "id": meta.client_id,
            "uid": meta.uid,
            "ip": meta.ip,
            "country": meta.country,
            "asn": meta.asn,
            "nickname": meta.nickname,
        }
    )


def _parse_file_record(line: str) -> FileMeta:
    record = json.loads(line)
    return FileMeta(
        file_id=record["id"],
        size=record["size"],
        kind=record.get("kind", "unknown"),
        category=record.get("category", -1),
        name=record.get("name", ""),
    )


def _parse_client_record(line: str) -> ClientMeta:
    record = json.loads(line)
    return ClientMeta(
        client_id=record["id"],
        uid=record["uid"],
        ip=record["ip"],
        country=record["country"],
        asn=record["asn"],
        nickname=record.get("nickname", ""),
    )


# ----------------------------------------------------------------------
# Writer


class TraceStoreWriter:
    """Appends day segments (and their metadata) to a store directory.

    Open with :meth:`create` for a fresh store or :meth:`open` to extend an
    existing one (the crawler's incremental path — a resumed crawl reopens
    the same directory and keeps appending).  Re-appending a day that is
    already stored *replaces* its segment, which makes the append idempotent
    across a crash-and-resume replay of the same deterministic day.
    """

    def __init__(self, path: PathLike, manifest: dict) -> None:
        self.path = os.fspath(path)
        self._manifest = manifest
        self._file_index: Dict[FileId, int] = {}
        self._client_row: Dict[ClientId, int] = {}
        self._max_file_id: Optional[FileId] = None
        self._load_intern_tables()
        if self._file_index:
            self._max_file_id = max(self._file_index)

    # -- opening ---------------------------------------------------------

    @classmethod
    def create(cls, path: PathLike) -> "TraceStoreWriter":
        """Initialize ``path`` as an empty store (directory may exist but
        must not already hold a manifest)."""
        path = os.fspath(path)
        os.makedirs(path, exist_ok=True)
        manifest_path = os.path.join(path, MANIFEST_NAME)
        if os.path.exists(manifest_path):
            raise TraceStoreError(f"store already exists at {path}")
        manifest = {
            "format": FORMAT,
            "files": 0,
            "clients": 0,
            "snapshots": 0,
            "files_bytes": 0,
            "clients_bytes": 0,
            "files_sha256": hashlib.sha256().hexdigest(),
            "clients_sha256": hashlib.sha256().hexdigest(),
            "sorted_intern": True,
            "segments": [],
        }
        for name in (FILES_NAME, CLIENTS_NAME):
            with open(os.path.join(path, name), "ab"):
                pass
        writer = cls(path, manifest)
        writer._write_manifest()
        return writer

    @classmethod
    def open(cls, path: PathLike, create: bool = False) -> "TraceStoreWriter":
        """Open an existing store for appending (``create=True`` makes a
        fresh one when the directory holds no manifest yet)."""
        path = os.fspath(path)
        manifest_path = os.path.join(path, MANIFEST_NAME)
        if not os.path.exists(manifest_path):
            if create:
                return cls.create(path)
            raise TraceStoreError(f"no trace store at {path}")
        manifest = _load_manifest(path)
        writer = cls(path, manifest)
        writer._truncate_torn_tails()
        return writer

    # -- interning ---------------------------------------------------------

    def _load_intern_tables(self) -> None:
        for name, index, count, byte_limit in (
            (
                FILES_NAME,
                self._file_index,
                self._manifest["files"],
                self._manifest["files_bytes"],
            ),
            (
                CLIENTS_NAME,
                self._client_row,
                self._manifest["clients"],
                self._manifest["clients_bytes"],
            ),
        ):
            table_path = os.path.join(self.path, name)
            if not os.path.exists(table_path):
                continue
            # Byte-limited binary read: bytes past the manifest's recorded
            # length are a torn tail from a crash, not data.
            with open(table_path, "rb") as fh:
                text = fh.read(byte_limit).decode("utf-8")
            lines = [l for l in text.splitlines() if l]
            if len(lines) != count:
                raise TraceStoreError(
                    f"{name} holds {len(lines)} records, manifest says {count}"
                )
            for lineno, line in enumerate(lines):
                index[json.loads(line)["id"]] = lineno

    def _truncate_torn_tails(self) -> None:
        """Drop metadata bytes past the manifest's recorded length (a crash
        between a table append and the manifest rewrite leaves them)."""
        for name, recorded in (
            (FILES_NAME, self._manifest["files_bytes"]),
            (CLIENTS_NAME, self._manifest["clients_bytes"]),
        ):
            table_path = os.path.join(self.path, name)
            if os.path.getsize(table_path) > recorded:
                with open(table_path, "ab") as fh:
                    fh.truncate(recorded)

    def register_files(self, metas: Iterable[FileMeta]) -> None:
        """Intern the given files (sorted by id) before any day references
        them.  The one-shot converter uses this to get a globally sorted
        intern table; ids already interned are skipped."""
        fresh = sorted(
            (m for m in metas if m.file_id not in self._file_index),
            key=lambda m: m.file_id,
        )
        if not fresh:
            return
        if self._max_file_id is not None and fresh[0].file_id < self._max_file_id:
            # A fresh id sorts before an interned one: the global intern
            # order is no longer the sorted string order.
            self._manifest["sorted_intern"] = False
        self._append_table(FILES_NAME, "files", fresh, _file_record)
        for meta in fresh:
            self._file_index[meta.file_id] = len(self._file_index)
        last = fresh[-1].file_id
        if self._max_file_id is None or last > self._max_file_id:
            self._max_file_id = last

    def register_clients(self, metas: Iterable[ClientMeta]) -> None:
        """Intern the given clients (sorted by id); already-known ids are
        skipped."""
        fresh = sorted(
            (m for m in metas if m.client_id not in self._client_row),
            key=lambda m: m.client_id,
        )
        if not fresh:
            return
        self._append_table(CLIENTS_NAME, "clients", fresh, _client_record)
        for meta in fresh:
            self._client_row[meta.client_id] = len(self._client_row)

    def _append_table(self, name, count_key, metas, render) -> None:
        table_path = os.path.join(self.path, name)
        with open(table_path, "a", encoding="utf-8") as fh:
            for meta in metas:
                fh.write(render(meta) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        self._manifest[count_key] = self._manifest[count_key] + len(metas)
        self._manifest[f"{count_key}_bytes"] = os.path.getsize(table_path)
        self._manifest[f"{count_key}_sha256"] = _sha256_file(table_path)

    # -- appending ---------------------------------------------------------

    def append_day(
        self,
        day: int,
        caches: Mapping[ClientId, Iterable[FileId]],
        files: Optional[Mapping[FileId, FileMeta]] = None,
        clients: Optional[Mapping[ClientId, ClientMeta]] = None,
    ) -> None:
        """Write ``day``'s snapshots as one segment.

        ``files``/``clients`` supply metadata for ids not interned yet (a
        superset is fine — only fresh ids are consulted).  New ids are
        interned in sorted order within this batch.  Re-appending an
        existing day replaces its segment.
        """
        new_files: Dict[FileId, FileMeta] = {}
        new_clients: List[ClientMeta] = []
        for client_id, cache in caches.items():
            if client_id not in self._client_row:
                if clients is None or client_id not in clients:
                    raise TraceStoreError(
                        f"day {day} snapshots reference unknown client "
                        f"{client_id} and no metadata was supplied"
                    )
                new_clients.append(clients[client_id])
            for fid in cache:
                if fid not in self._file_index and fid not in new_files:
                    if files is None or fid not in files:
                        raise TraceStoreError(
                            f"day {day} snapshots reference unknown file "
                            f"{fid!r} and no metadata was supplied"
                        )
                    new_files[fid] = files[fid]
        self.register_files(new_files.values())
        self.register_clients(new_clients)

        rows = sorted(self._client_row[c] for c in caches)
        row_to_client = {self._client_row[c]: c for c in caches}
        offsets = array("q", [0])
        files_col = array("i")
        for row in rows:
            column = sorted(
                self._file_index[f] for f in caches[row_to_client[row]]
            )
            files_col.extend(column)
            offsets.append(len(files_col))
        rows_col = array("i", rows)

        name = _segment_name(day)
        segment_path = os.path.join(self.path, name)
        header = _HEADER.pack(
            SEGMENT_MAGIC, SEGMENT_VERSION, day, len(rows), len(files_col)
        )
        pad = b"\x00" * _pad_to_8(_HEADER.size + 4 * len(rows))
        with atomic_replace(segment_path) as tmp:
            with open(tmp, "wb") as fh:
                fh.write(header)
                rows_col.tofile(fh)
                fh.write(pad)
                offsets.tofile(fh)
                files_col.tofile(fh)

        entry = {
            "day": day,
            "path": name,
            "sha256": _sha256_file(segment_path),
            "clients": len(rows),
            "replicas": len(files_col),
        }
        segments = [s for s in self._manifest["segments"] if s["day"] != day]
        segments.append(entry)
        segments.sort(key=lambda s: s["day"])
        self._manifest["segments"] = segments
        self._manifest["snapshots"] = sum(s["clients"] for s in segments)
        self._write_manifest()

    def append_trace(self, trace: Trace) -> None:
        """Append every day of an in-memory trace (the converter path).

        All file and client metadata is interned up front in sorted order,
        so the resulting store has a globally sorted (monotone) intern
        table — the layout under which day columns sort identically to
        their string counterparts.
        """
        self.register_files(trace.files.values())
        self.register_clients(trace.clients.values())
        for day, snapshots in trace.iter_day_snapshots():
            self.append_day(day, snapshots)

    def _write_manifest(self) -> None:
        atomic_write_text(
            os.path.join(self.path, MANIFEST_NAME),
            json.dumps(self._manifest, indent=2, sort_keys=True) + "\n",
        )

    def close(self) -> None:
        """Persist the manifest.

        ``append_day`` already rewrites it after every segment; this covers
        metadata registered *without* a following day (e.g. a metadata-only
        trace), which would otherwise never reach the on-disk manifest.
        """
        self._write_manifest()

    def __enter__(self) -> "TraceStoreWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _load_manifest(path: str) -> dict:
    manifest_path = os.path.join(path, MANIFEST_NAME)
    try:
        with open(manifest_path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
    except OSError as exc:
        raise TraceStoreError(f"cannot read store manifest: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise TraceStoreError(f"corrupt store manifest: {exc}") from exc
    if manifest.get("format") != FORMAT:
        raise TraceStoreError(
            f"unsupported store format {manifest.get('format')!r} "
            f"(expected {FORMAT!r})"
        )
    return manifest


# ----------------------------------------------------------------------
# Reader


class DaySegment:
    """One day's snapshots, memory-mapped: CSR int columns over the store's
    global intern tables.  Column accessors return memoryview slices of the
    mapping — no copies."""

    __slots__ = ("day", "n_clients", "n_replicas", "rows", "offsets", "files", "_mmap")

    def __init__(self, path: str, expected_day: int) -> None:
        with open(path, "rb") as fh:
            if os.path.getsize(path) < _HEADER.size:
                raise TraceStoreError(f"segment {path} is shorter than its header")
            self._mmap = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        magic, version, day, n_clients, n_replicas = _HEADER.unpack_from(
            self._mmap, 0
        )
        if magic != SEGMENT_MAGIC:
            raise TraceStoreError(f"segment {path} has bad magic {magic!r}")
        if version != SEGMENT_VERSION:
            raise TraceStoreError(
                f"segment {path} has unsupported version {version}"
            )
        if day != expected_day:
            raise TraceStoreError(
                f"segment {path} holds day {day}, manifest says {expected_day}"
            )
        self.day = day
        self.n_clients = n_clients
        self.n_replicas = n_replicas
        view = memoryview(self._mmap)
        rows_start = _HEADER.size
        rows_end = rows_start + 4 * n_clients
        offsets_start = rows_end + _pad_to_8(rows_end)
        offsets_end = offsets_start + 8 * (n_clients + 1)
        files_end = offsets_end + 4 * n_replicas
        if len(view) < files_end:
            raise TraceStoreError(f"segment {path} is truncated")
        self.rows = view[rows_start:rows_end].cast("i")
        self.offsets = view[offsets_start:offsets_end].cast("q")
        self.files = view[offsets_end:files_end].cast("i")

    def cache_column(self, j: int) -> memoryview:
        """Client ``j``'s (0-based position within this day) sorted global
        file indices."""
        return self.files[self.offsets[j] : self.offsets[j + 1]]

    def replica_counts(self) -> Counter:
        """Counter global file idx -> sources on this day."""
        counts: Counter = Counter()
        for idx in self.files:
            counts[idx] += 1
        return counts

    def close(self) -> None:
        self.rows = self.offsets = self.files = None  # release exported views
        try:
            self._mmap.close()
        except BufferError:  # a caller still holds a column slice
            pass


class TraceStore:
    """Read-only view of a store directory; day segments are mmapped on
    demand and never held beyond what the caller keeps alive."""

    def __init__(self, path: PathLike) -> None:
        self.path = os.fspath(path)
        self.manifest = _load_manifest(self.path)
        self._file_ids: Optional[Tuple[FileId, ...]] = None
        self._file_index: Optional[Dict[FileId, int]] = None
        self._client_ids: Optional[Tuple[ClientId, ...]] = None
        self._file_metas: Optional[Dict[FileId, FileMeta]] = None
        self._client_metas: Optional[Dict[ClientId, ClientMeta]] = None
        self._segments: Dict[int, DaySegment] = {}
        self._segment_entries = {s["day"]: s for s in self.manifest["segments"]}

    # -- sizes -------------------------------------------------------------

    @property
    def num_files(self) -> int:
        return self.manifest["files"]

    @property
    def num_clients(self) -> int:
        return self.manifest["clients"]

    @property
    def num_snapshots(self) -> int:
        return self.manifest["snapshots"]

    def days(self) -> List[int]:
        return [s["day"] for s in self.manifest["segments"]]

    # -- intern tables (loaded lazily, once) --------------------------------

    def _read_table(self, name: str, count: int, byte_limit: int) -> List[str]:
        # Byte-limited binary read: bytes past the manifest's recorded
        # length are a torn tail from a crash, not data.
        with open(os.path.join(self.path, name), "rb") as fh:
            text = fh.read(byte_limit).decode("utf-8")
        lines = [line for line in text.splitlines() if line]
        if len(lines) != count:
            raise TraceStoreError(
                f"{name} holds {len(lines)} records, manifest says {count}"
            )
        return lines

    @property
    def file_ids(self) -> Tuple[FileId, ...]:
        # Ids only: analyses translating int columns back to string ids
        # (the common streaming case) should not pay for a FileMeta object
        # per file; full metadata parses lazily in :attr:`file_metas`.
        if self._file_ids is None:
            lines = self._read_table(
                FILES_NAME, self.num_files, self.manifest["files_bytes"]
            )
            self._file_ids = tuple(json.loads(line)["id"] for line in lines)
        return self._file_ids

    @property
    def file_index(self) -> Dict[FileId, int]:
        if self._file_index is None:
            self._file_index = {fid: i for i, fid in enumerate(self.file_ids)}
        return self._file_index

    @property
    def file_metas(self) -> Dict[FileId, FileMeta]:
        if self._file_metas is None:
            lines = self._read_table(
                FILES_NAME, self.num_files, self.manifest["files_bytes"]
            )
            metas = [_parse_file_record(line) for line in lines]
            self._file_metas = {m.file_id: m for m in metas}
        return self._file_metas

    @property
    def client_ids(self) -> Tuple[ClientId, ...]:
        if self._client_ids is None:
            lines = self._read_table(
                CLIENTS_NAME, self.num_clients, self.manifest["clients_bytes"]
            )
            self._client_ids = tuple(json.loads(line)["id"] for line in lines)
        return self._client_ids

    @property
    def client_metas(self) -> Dict[ClientId, ClientMeta]:
        if self._client_metas is None:
            lines = self._read_table(
                CLIENTS_NAME, self.num_clients, self.manifest["clients_bytes"]
            )
            metas = [_parse_client_record(line) for line in lines]
            self._client_metas = {m.client_id: m for m in metas}
        return self._client_metas

    # -- segments ------------------------------------------------------------

    def segment(self, day: int) -> DaySegment:
        seg = self._segments.get(day)
        if seg is None:
            entry = self._segment_entries.get(day)
            if entry is None:
                raise KeyError(f"store has no day {day}")
            seg = DaySegment(os.path.join(self.path, entry["path"]), day)
            self._segments[day] = seg
        return seg

    def release_day(self, day: int) -> None:
        """Unmap a day's segment (streaming passes call this as the window
        slides, keeping the mapped set to the current day)."""
        seg = self._segments.pop(day, None)
        if seg is not None:
            seg.close()

    def iter_days(self) -> Iterator[Tuple[int, DaySegment]]:
        """Iterate (day, segment), releasing each mapping as the iteration
        moves on — the constant-day-window contract."""
        for day in self.days():
            yield day, self.segment(day)
            self.release_day(day)

    # -- boundary views --------------------------------------------------------

    def day_int_caches(self, day: int) -> Dict[ClientId, FrozenSet[int]]:
        """Client -> frozenset of *global file indices* for ``day``.

        The streaming analyses run their set arithmetic on these (ints
        intern bijectively to the string ids, and intersection sizes are
        representation-independent)."""
        seg = self.segment(day)
        ids = self.client_ids
        return {
            ids[seg.rows[j]]: frozenset(seg.cache_column(j))
            for j in range(seg.n_clients)
        }

    def day_snapshots(self, day: int) -> Dict[ClientId, FrozenSet[FileId]]:
        """Client -> frozenset of file-id strings for ``day`` (the exact
        shape :meth:`Trace.snapshots_on` returns)."""
        seg = self.segment(day)
        ids = self.client_ids
        fids = self.file_ids
        return {
            ids[seg.rows[j]]: frozenset(fids[i] for i in seg.cache_column(j))
            for j in range(seg.n_clients)
        }

    def day_replica_counts(self, day: int) -> Counter:
        """Counter file-id string -> sources on ``day`` (equals
        ``Trace.replica_counts(day)``)."""
        fids = self.file_ids
        return Counter(
            {fids[i]: n for i, n in self.segment(day).replica_counts().items()}
        )

    def compiled_day(self, day: int) -> CompiledTrace:
        """The day as a :class:`CompiledTrace` over the store's *global*
        intern table — near-zero-copy: the segment's mmapped CSR columns
        are used as-is, only the per-row sets and the inverted index are
        derived (one pass over the day's replicas)."""
        seg = self.segment(day)
        ids = self.client_ids
        return CompiledTrace.from_columns(
            self.file_ids,
            [ids[r] for r in seg.rows],
            seg.files,
            seg.offsets,
            file_index=self.file_index,
        )

    def day_trace(self, day: int) -> Trace:
        """One day as an in-memory :class:`Trace` (metadata restricted to
        the clients observed that day; file metadata shared)."""
        trace = Trace(files=self.file_metas)
        snapshots = self.day_snapshots(day)
        metas = self.client_metas
        for client_id in snapshots:
            trace.add_client(metas[client_id])
        for client_id, cache in snapshots.items():
            trace.add_snapshot(Snapshot(day, client_id, cache))
        return trace

    def to_trace(self) -> Trace:
        """The whole store as an in-memory :class:`Trace` (the inverse
        converter; needs whole-trace RAM, by definition)."""
        trace = Trace(files=self.file_metas, clients=self.client_metas)
        for day, _seg in self.iter_days():
            for client_id, cache in self.day_snapshots(day).items():
                trace.add_snapshot(Snapshot(day, client_id, cache))
        return trace

    def close(self) -> None:
        for day in list(self._segments):
            self.release_day(day)

    def __enter__(self) -> "TraceStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceStore({self.path!r}, days={len(self._segment_entries)}, "
            f"clients={self.num_clients}, files={self.num_files}, "
            f"snapshots={self.num_snapshots})"
        )


def open_store(path: PathLike) -> TraceStore:
    """Open a ``repro.tracestore/1`` directory for reading."""
    return TraceStore(path)


# ----------------------------------------------------------------------
# Verification


def verify_store(path: PathLike) -> List[str]:
    """Full integrity check; returns a list of problems (empty = intact).

    Checks manifest shape, metadata-table hashes and counts, per-segment
    sha256s, header consistency, CSR structure (monotone offsets, strictly
    ascending rows, ascending per-cache columns, in-range indices), and the
    manifest's snapshot total.
    """
    path = os.fspath(path)
    problems: List[str] = []
    try:
        manifest = _load_manifest(path)
    except TraceStoreError as exc:
        return [str(exc)]

    for name, count_key in ((FILES_NAME, "files"), (CLIENTS_NAME, "clients")):
        table_path = os.path.join(path, name)
        recorded_bytes = manifest.get(f"{count_key}_bytes", 0)
        if not os.path.exists(table_path):
            problems.append(f"{name}: missing")
            continue
        if os.path.getsize(table_path) < recorded_bytes:
            problems.append(
                f"{name}: {os.path.getsize(table_path)} bytes on disk, "
                f"manifest records {recorded_bytes}"
            )
            continue
        actual = _sha256_file(table_path, limit=recorded_bytes)
        if actual != manifest.get(f"{count_key}_sha256"):
            problems.append(f"{name}: sha256 mismatch")
            continue
        with open(table_path, "rb") as fh:
            raw = fh.read(recorded_bytes).decode("utf-8")
        lines = [l for l in raw.splitlines() if l]
        if len(lines) != manifest.get(count_key):
            problems.append(
                f"{name}: {len(lines)} records, manifest says "
                f"{manifest.get(count_key)}"
            )

    total_snapshots = 0
    for entry in manifest.get("segments", []):
        day = entry.get("day")
        label = f"segment day {day}"
        segment_path = os.path.join(path, entry.get("path", ""))
        if not os.path.exists(segment_path):
            problems.append(f"{label}: file {entry.get('path')!r} missing")
            continue
        if _sha256_file(segment_path) != entry.get("sha256"):
            problems.append(f"{label}: sha256 mismatch")
            continue
        try:
            seg = DaySegment(segment_path, day)
        except TraceStoreError as exc:
            problems.append(f"{label}: {exc}")
            continue
        try:
            if seg.n_clients != entry.get("clients"):
                problems.append(
                    f"{label}: header says {seg.n_clients} clients, "
                    f"manifest says {entry.get('clients')}"
                )
            if seg.n_replicas != entry.get("replicas"):
                problems.append(
                    f"{label}: header says {seg.n_replicas} replicas, "
                    f"manifest says {entry.get('replicas')}"
                )
            problems.extend(
                f"{label}: {p}"
                for p in _verify_columns(
                    seg, manifest.get("clients", 0), manifest.get("files", 0)
                )
            )
            total_snapshots += seg.n_clients
        finally:
            seg.close()
    if not problems and total_snapshots != manifest.get("snapshots"):
        problems.append(
            f"manifest says {manifest.get('snapshots')} snapshots, segments "
            f"hold {total_snapshots}"
        )
    return problems


def _verify_columns(seg: DaySegment, n_clients: int, n_files: int) -> List[str]:
    problems: List[str] = []
    rows = seg.rows
    for j in range(len(rows)):
        if not 0 <= rows[j] < n_clients:
            problems.append(f"client row {rows[j]} out of range")
            break
        if j and rows[j] <= rows[j - 1]:
            problems.append("client rows not strictly ascending")
            break
    offsets = seg.offsets
    if offsets[0] != 0 or offsets[len(offsets) - 1] != seg.n_replicas:
        problems.append("CSR offsets do not span the files column")
    for j in range(1, len(offsets)):
        if offsets[j] < offsets[j - 1]:
            problems.append("CSR offsets not monotone")
            break
    files = seg.files
    for j in range(seg.n_clients):
        lo, hi = offsets[j], offsets[j + 1]
        prev = -1
        for k in range(lo, hi):
            idx = files[k]
            if not 0 <= idx < n_files:
                problems.append(f"file index {idx} out of range")
                return problems
            if idx <= prev:
                problems.append("cache column not strictly ascending")
                return problems
            prev = idx
    return problems
