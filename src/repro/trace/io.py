"""Trace serialization.

Traces are stored as gzip-compressed JSON-lines: one header record, then one
record per file, per client, and per snapshot.  The format is line-oriented
so that huge traces can be streamed without holding the JSON document in
memory, and self-describing so that files remain loadable as the model
evolves (unknown keys are ignored).

An :func:`anonymize` helper reproduces the paper's "fully anonymized version
of our trace": nicknames, IPs and UIDs are replaced by salted hashes while
preserving equality (two snapshots of the same client still match).
"""

from __future__ import annotations

import gzip
import hashlib
import io
import json
import os
from typing import Dict, IO, Iterator, Union

from repro.trace.model import ClientMeta, FileMeta, Snapshot, Trace
from repro.util.atomic import atomic_replace

FORMAT_VERSION = 1

PathLike = Union[str, "os.PathLike[str]"]


def _open_read(path: PathLike) -> IO[str]:
    raw = gzip.open(path, "rt", encoding="utf-8") if str(path).endswith(".gz") else open(
        path, "r", encoding="utf-8"
    )
    return raw


def save_trace(trace: Trace, path: PathLike) -> None:
    """Write ``trace`` to ``path`` (gzip-compressed if it ends in ``.gz``).

    The write is atomic (temp file + rename): a crash mid-save leaves
    either the previous file or no file, never a truncated trace.
    """
    compress = str(path).endswith(".gz")
    with atomic_replace(path) as tmp:
        if compress:
            # mtime=0 and no embedded filename keep the gzip container
            # deterministic: two runs writing the same records produce
            # byte-identical files (the resume-equivalence contract).
            with open(tmp, "wb") as raw:
                with gzip.GzipFile(
                    filename="", mode="wb", fileobj=raw, mtime=0
                ) as gz:
                    with io.TextIOWrapper(gz, encoding="utf-8") as fh:
                        _write_records(trace, fh)
        else:
            with open(tmp, "w", encoding="utf-8") as fh:
                _write_records(trace, fh)


def dumps_trace(trace: Trace) -> str:
    """Serialize a trace to a JSONL string (mostly for tests)."""
    buf = io.StringIO()
    _write_records(trace, buf)
    return buf.getvalue()


def _write_records(trace: Trace, fh: IO[str]) -> None:
    header = {
        "type": "header",
        "version": FORMAT_VERSION,
        "clients": len(trace.clients),
        "files": len(trace.files),
        "snapshots": trace.num_snapshots,
    }
    fh.write(json.dumps(header) + "\n")
    for meta in trace.files.values():
        fh.write(
            json.dumps(
                {
                    "type": "file",
                    "id": meta.file_id,
                    "size": meta.size,
                    "kind": meta.kind,
                    "category": meta.category,
                    "name": meta.name,
                }
            )
            + "\n"
        )
    for meta in trace.clients.values():
        fh.write(
            json.dumps(
                {
                    "type": "client",
                    "id": meta.client_id,
                    "uid": meta.uid,
                    "ip": meta.ip,
                    "country": meta.country,
                    "asn": meta.asn,
                    "nickname": meta.nickname,
                }
            )
            + "\n"
        )
    for snap in trace.iter_snapshots():
        fh.write(
            json.dumps(
                {
                    "type": "snapshot",
                    "day": snap.day,
                    "client": snap.client_id,
                    "files": sorted(snap.file_ids),
                }
            )
            + "\n"
        )


def load_trace(path: PathLike) -> Trace:
    """Load a trace written by :func:`save_trace`."""
    with _open_read(path) as fh:
        return _read_records(iter(fh))


def loads_trace(text: str) -> Trace:
    """Parse a trace from a JSONL string (inverse of :func:`dumps_trace`)."""
    return _read_records(iter(text.splitlines()))


def _read_records(lines: Iterator[str]) -> Trace:
    trace = Trace()
    saw_header = False
    for line in lines:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        rtype = record.get("type")
        if rtype == "header":
            if record.get("version") != FORMAT_VERSION:
                raise ValueError(
                    f"unsupported trace format version {record.get('version')!r}"
                )
            saw_header = True
        elif rtype == "file":
            trace.add_file(
                FileMeta(
                    file_id=record["id"],
                    size=record["size"],
                    kind=record.get("kind", "unknown"),
                    category=record.get("category", -1),
                    name=record.get("name", ""),
                )
            )
        elif rtype == "client":
            trace.add_client(
                ClientMeta(
                    client_id=record["id"],
                    uid=record["uid"],
                    ip=record["ip"],
                    country=record["country"],
                    asn=record["asn"],
                    nickname=record.get("nickname", ""),
                )
            )
        elif rtype == "snapshot":
            trace.add_snapshot(
                Snapshot(
                    day=record["day"],
                    client_id=record["client"],
                    file_ids=frozenset(record["files"]),
                )
            )
        else:
            raise ValueError(f"unknown record type {rtype!r}")
    if not saw_header:
        raise ValueError("trace stream has no header record")
    return trace


def _hash_token(salt: str, value: str, length: int = 16) -> str:
    return hashlib.sha256(f"{salt}:{value}".encode("utf-8")).hexdigest()[:length]


def anonymize(trace: Trace, salt: str = "repro") -> Trace:
    """Return a copy with IPs, UIDs and nicknames replaced by salted hashes.

    Country and AS labels are preserved (the paper's analyses need them);
    identity equality is preserved (same input IP -> same anonymized IP), so
    duplicate filtering behaves identically on the anonymized trace.
    """
    anon_clients: Dict[int, ClientMeta] = {}
    for client_id, meta in trace.clients.items():
        anon_clients[client_id] = ClientMeta(
            client_id=client_id,
            uid=_hash_token(salt, "uid:" + meta.uid),
            ip=_hash_token(salt, "ip:" + meta.ip),
            country=meta.country,
            asn=meta.asn,
            nickname=_hash_token(salt, "nick:" + meta.nickname, length=8),
        )
    out = Trace(files=trace.files, clients=anon_clients)
    for snap in trace.iter_snapshots():
        out.add_snapshot(snap)
    return out
