"""Trace serialization.

Traces are stored as gzip-compressed JSON-lines: one header record, then one
record per file, per client, and per snapshot.  The format is line-oriented
so that huge traces can be streamed without holding the JSON document in
memory, and self-describing so that files remain loadable as the model
evolves (unknown keys are ignored).

An :func:`anonymize` helper reproduces the paper's "fully anonymized version
of our trace": nicknames, IPs and UIDs are replaced by salted hashes while
preserving equality (two snapshots of the same client still match).
"""

from __future__ import annotations

import gzip
import hashlib
import io
import json
import os
from typing import Dict, IO, Iterable, Iterator, Set, Union

from repro.trace.model import ClientMeta, FileMeta, Snapshot, Trace
from repro.util.atomic import atomic_replace

FORMAT_VERSION = 1

GZIP_MAGIC = b"\x1f\x8b"

PathLike = Union[str, "os.PathLike[str]"]


def _open_read(path: PathLike) -> IO[str]:
    """Open a trace for reading, sniffing the gzip magic bytes.

    The container format is decided by the file's first two bytes, not by
    its name: a gzip trace that lost its ``.gz`` suffix (or a plain one
    that gained it) still opens correctly instead of dying deep inside the
    JSON parser.
    """
    with open(path, "rb") as probe:
        magic = probe.read(2)
    if magic == GZIP_MAGIC:
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def save_trace(trace: Trace, path: PathLike) -> None:
    """Write ``trace`` to ``path`` (gzip-compressed if it ends in ``.gz``).

    The write is atomic (temp file + rename): a crash mid-save leaves
    either the previous file or no file, never a truncated trace.
    """
    compress = str(path).endswith(".gz")
    with atomic_replace(path) as tmp:
        if compress:
            # mtime=0 and no embedded filename keep the gzip container
            # deterministic: two runs writing the same records produce
            # byte-identical files (the resume-equivalence contract).
            with open(tmp, "wb") as raw:
                with gzip.GzipFile(
                    filename="", mode="wb", fileobj=raw, mtime=0
                ) as gz:
                    with io.TextIOWrapper(gz, encoding="utf-8") as fh:
                        _write_records(trace, fh)
        else:
            with open(tmp, "w", encoding="utf-8") as fh:
                _write_records(trace, fh)


def dumps_trace(trace: Trace) -> str:
    """Serialize a trace to a JSONL string (mostly for tests)."""
    buf = io.StringIO()
    _write_records(trace, buf)
    return buf.getvalue()


def _write_records(trace: Trace, fh: IO[str]) -> None:
    header = {
        "type": "header",
        "version": FORMAT_VERSION,
        "clients": len(trace.clients),
        "files": len(trace.files),
        "snapshots": trace.num_snapshots,
    }
    fh.write(json.dumps(header) + "\n")
    for meta in trace.files.values():
        fh.write(
            json.dumps(
                {
                    "type": "file",
                    "id": meta.file_id,
                    "size": meta.size,
                    "kind": meta.kind,
                    "category": meta.category,
                    "name": meta.name,
                }
            )
            + "\n"
        )
    for meta in trace.clients.values():
        fh.write(
            json.dumps(
                {
                    "type": "client",
                    "id": meta.client_id,
                    "uid": meta.uid,
                    "ip": meta.ip,
                    "country": meta.country,
                    "asn": meta.asn,
                    "nickname": meta.nickname,
                }
            )
            + "\n"
        )
    for snap in trace.iter_snapshots():
        fh.write(
            json.dumps(
                {
                    "type": "snapshot",
                    "day": snap.day,
                    "client": snap.client_id,
                    "files": sorted(snap.file_ids),
                }
            )
            + "\n"
        )


def load_trace(path: PathLike) -> Trace:
    """Load a trace written by :func:`save_trace`.

    Truncated or corrupt inputs raise ``ValueError``: the header's record
    counts are validated against what was actually read, so a file cut at
    a record boundary (plain or gzip) can no longer load silently as a
    smaller trace.
    """
    with _open_read(path) as fh:
        try:
            return _read_records(iter(fh))
        except EOFError as exc:
            # gzip raises EOFError when the compressed stream is cut off.
            raise ValueError(f"truncated gzip trace {path}: {exc}") from exc


def loads_trace(text: str) -> Trace:
    """Parse a trace from a JSONL string (inverse of :func:`dumps_trace`)."""
    return _read_records(iter(text.splitlines()))


def _parse_header(record: dict) -> dict:
    if record.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported trace format version {record.get('version')!r}"
        )
    return record


def _check_counts(header: dict, files: int, clients: int, snapshots: int) -> None:
    """Compare what the header declared against what the stream held.

    Headers written by :func:`save_trace` always carry the counts; hand-
    crafted headers without them skip the check (the stream is then taken
    at face value, as before).
    """
    for key, actual in (
        ("files", files),
        ("clients", clients),
        ("snapshots", snapshots),
    ):
        declared = header.get(key)
        if declared is not None and declared != actual:
            raise ValueError(
                f"truncated or corrupt trace: header declares {declared} "
                f"{key[:-1]} records, stream holds {actual}"
            )


def _read_records(lines: Iterator[str]) -> Trace:
    trace = Trace()
    header = None
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        rtype = record.get("type")
        if rtype == "header":
            if header is not None:
                raise ValueError(f"duplicate header record (line {lineno})")
            header = _parse_header(record)
            continue
        if header is None:
            raise ValueError(
                f"{rtype!r} record before the header (line {lineno})"
            )
        if rtype == "file":
            trace.add_file(
                FileMeta(
                    file_id=record["id"],
                    size=record["size"],
                    kind=record.get("kind", "unknown"),
                    category=record.get("category", -1),
                    name=record.get("name", ""),
                )
            )
        elif rtype == "client":
            trace.add_client(
                ClientMeta(
                    client_id=record["id"],
                    uid=record["uid"],
                    ip=record["ip"],
                    country=record["country"],
                    asn=record["asn"],
                    nickname=record.get("nickname", ""),
                )
            )
        elif rtype == "snapshot":
            trace.add_snapshot(
                Snapshot(
                    day=record["day"],
                    client_id=record["client"],
                    file_ids=frozenset(record["files"]),
                )
            )
        else:
            raise ValueError(f"unknown record type {rtype!r}")
    if header is None:
        raise ValueError("trace stream has no header record")
    _check_counts(header, len(trace.files), len(trace.clients), trace.num_snapshots)
    return trace


def _digest(salt: str, value: str) -> str:
    """Full salted sha256 hex digest (64 chars) of one identity token."""
    return hashlib.sha256(f"{salt}:{value}".encode("utf-8")).hexdigest()


def _hash_token(salt: str, value: str, length: int = 16) -> str:
    return _digest(salt, value)[:length]


def _collision_free_hashes(
    salt: str, namespace: str, values: Iterable[str], length: int
) -> Dict[str, str]:
    """Map every distinct value to a salted-hash prefix, guaranteed unique.

    Prefixes start at ``length`` hex chars; any prefix shared by two or
    more *distinct* values is deterministically widened (doubling, up to
    the full 64-char digest) until all colliding values separate.  Because
    outputs of different lengths can never be equal strings, widened
    hashes cannot collide with unwidened ones.  Two distinct values with
    identical full digests would be an sha256 collision; that raises.
    """
    digests = {v: _digest(salt, namespace + v) for v in set(values)}
    out: Dict[str, str] = {}
    pending = sorted(digests)
    width = length
    while pending:
        groups: Dict[str, list] = {}
        for value in pending:
            groups.setdefault(digests[value][:width], []).append(value)
        pending = []
        for prefix, members in groups.items():
            if len(members) == 1:
                out[members[0]] = prefix
            else:
                pending.extend(members)
        if pending:
            if width >= len(next(iter(digests.values()))):
                raise ValueError(
                    f"anonymize: irreconcilable hash collision among "
                    f"{namespace.rstrip(':')} tokens (full digests equal)"
                )
            width = min(width * 2, 64)
    return out


def anonymize(trace: Trace, salt: str = "repro") -> Trace:
    """Return a copy with IPs, UIDs and nicknames replaced by salted hashes.

    Country and AS labels are preserved (the paper's analyses need them);
    identity equality is preserved (same input IP -> same anonymized IP), so
    duplicate filtering behaves identically on the anonymized trace.  The
    converse also holds: *distinct* identities stay distinct — hash prefixes
    that collide are deterministically widened instead of silently merging
    two clients (which would corrupt duplicate filtering).
    """
    metas = trace.clients.values()
    uid_map = _collision_free_hashes(salt, "uid:", (m.uid for m in metas), 16)
    ip_map = _collision_free_hashes(salt, "ip:", (m.ip for m in metas), 16)
    nick_map = _collision_free_hashes(
        salt, "nick:", (m.nickname for m in metas), 8
    )
    anon_clients: Dict[int, ClientMeta] = {}
    for client_id, meta in trace.clients.items():
        anon_clients[client_id] = ClientMeta(
            client_id=client_id,
            uid=uid_map[meta.uid],
            ip=ip_map[meta.ip],
            country=meta.country,
            asn=meta.asn,
            nickname=nick_map[meta.nickname],
        )
    out = Trace(files=trace.files, clients=anon_clients)
    for snap in trace.iter_snapshots():
        out.add_snapshot(snap)
    return out


# ----------------------------------------------------------------------
# Conversion to and from the on-disk columnar store


def trace_to_store(trace: Trace, store_path: PathLike):
    """Convert an in-memory trace to a ``repro.tracestore/1`` directory.

    Metadata is interned up front in sorted order (a monotone intern
    table), then one segment is appended per day.  Returns the opened
    :class:`~repro.trace.store.TraceStore`.
    """
    from repro.trace.store import TraceStoreWriter, open_store

    writer = TraceStoreWriter.create(store_path)
    writer.append_trace(trace)
    writer.close()
    return open_store(store_path)


def convert_trace_file_to_store(path: PathLike, store_path: PathLike):
    """Convert a saved JSONL[.gz] trace file to an on-disk store.

    Streams day by day when the snapshots are day-grouped (which
    :func:`save_trace` guarantees), holding one day plus the metadata
    tables in memory; arbitrary record orders fall back to a whole-trace
    load.  Returns the opened store.
    """
    from repro.trace.store import TraceStoreWriter, open_store

    writer = TraceStoreWriter.create(store_path)
    files: Dict[str, FileMeta] = {}
    clients: Dict[int, ClientMeta] = {}
    header = None
    day_caches: Dict[int, frozenset] = {}
    current_day = None
    done_days: Set[int] = set()
    counts = {"files": 0, "clients": 0, "snapshots": 0}
    streaming = True

    def flush_day() -> None:
        nonlocal current_day
        if current_day is None:
            return
        writer.append_day(current_day, day_caches, files=files, clients=clients)
        done_days.add(current_day)
        day_caches.clear()
        current_day = None

    with _open_read(path) as fh:
        try:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                rtype = record.get("type")
                if rtype == "header":
                    if header is not None:
                        raise ValueError(f"duplicate header record (line {lineno})")
                    header = _parse_header(record)
                    continue
                if header is None:
                    raise ValueError(
                        f"{rtype!r} record before the header (line {lineno})"
                    )
                if rtype == "file":
                    meta = FileMeta(
                        file_id=record["id"],
                        size=record["size"],
                        kind=record.get("kind", "unknown"),
                        category=record.get("category", -1),
                        name=record.get("name", ""),
                    )
                    files[meta.file_id] = meta
                    counts["files"] += 1
                elif rtype == "client":
                    meta = ClientMeta(
                        client_id=record["id"],
                        uid=record["uid"],
                        ip=record["ip"],
                        country=record["country"],
                        asn=record["asn"],
                        nickname=record.get("nickname", ""),
                    )
                    clients[meta.client_id] = meta
                    counts["clients"] += 1
                elif rtype == "snapshot":
                    day = record["day"]
                    if day in done_days:
                        streaming = False
                        break
                    if current_day is None:
                        # Sorted metadata interning needs every id known
                        # before the first segment is cut.
                        writer.register_files(files.values())
                        writer.register_clients(clients.values())
                        current_day = day
                    elif day != current_day:
                        flush_day()
                        current_day = day
                    day_caches[record["client"]] = frozenset(record["files"])
                    counts["snapshots"] += 1
                else:
                    raise ValueError(f"unknown record type {rtype!r}")
            if streaming:
                if not done_days and current_day is None:
                    # No snapshots at all: still record the metadata.
                    writer.register_files(files.values())
                    writer.register_clients(clients.values())
                flush_day()
        except EOFError as exc:
            raise ValueError(f"truncated gzip trace {path}: {exc}") from exc

    if not streaming:
        # Records were not day-grouped: redo the conversion from a full
        # in-memory load (correct for any order, at whole-trace RAM cost).
        import shutil

        shutil.rmtree(os.fspath(store_path))
        return trace_to_store(load_trace(path), store_path)
    if header is None:
        raise ValueError("trace stream has no header record")
    _check_counts(header, counts["files"], counts["clients"], counts["snapshots"])
    writer.close()
    return open_store(store_path)


def store_to_trace_file(store_path: PathLike, path: PathLike) -> None:
    """Convert an on-disk store back to a saved JSONL[.gz] trace file."""
    from repro.trace.store import open_store

    with open_store(store_path) as store:
        save_trace(store.to_trace(), path)
