"""Duplicate-client filtering (Section 2.3).

Clients sometimes change IP address (DHCP) or unique identifier (software
reinstall).  To avoid counting such clients several times, the paper removes
all clients sharing either the same IP address or the same unique identifier,
*keeping the free-riders*.

Interpretation implemented here: group clients by IP and by UID; whenever a
group contains more than one client, all non-free-rider members of the group
are removed.  Free-riders are kept regardless (their empty caches cannot
distort the sharing analyses, and the paper explicitly kept them).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Set

from repro.trace.model import ClientId, Trace


def duplicate_clients(trace: Trace) -> Set[ClientId]:
    """Clients that share an IP or a UID with at least one other client."""
    by_ip: Dict[str, List[ClientId]] = defaultdict(list)
    by_uid: Dict[str, List[ClientId]] = defaultdict(list)
    for client_id, meta in trace.clients.items():
        by_ip[meta.ip].append(client_id)
        by_uid[meta.uid].append(client_id)

    dupes: Set[ClientId] = set()
    for group in list(by_ip.values()) + list(by_uid.values()):
        if len(group) > 1:
            dupes.update(group)
    return dupes


def filter_duplicates(trace: Trace, keep_free_riders: bool = True) -> Trace:
    """Return the *filtered trace*: duplicates removed, free-riders kept.

    ``keep_free_riders=False`` additionally drops duplicated free-riders
    (useful for sensitivity checks; the paper's choice is the default).
    """
    dupes = duplicate_clients(trace)
    if keep_free_riders:
        dupes = {c for c in dupes if not trace.is_free_rider(c)}
    kept = [c for c in trace.clients if c not in dupes]
    return trace.restricted_to_clients(kept)
