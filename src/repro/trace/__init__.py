"""Trace data model and processing pipeline.

A :class:`~repro.trace.model.Trace` is the library's central artefact: a set
of daily cache observations ("snapshots") of eDonkey clients, together with
file and client metadata — exactly what the paper's crawler collected.

The pipeline mirrors Section 2.3 of the paper:

- the **full trace** is whatever the crawler (or synthetic generator)
  produced;
- :func:`~repro.trace.filtering.filter_duplicates` removes clients sharing
  an IP address or unique identifier, yielding the **filtered trace**;
- :func:`~repro.trace.extrapolation.extrapolate` keeps clients observed at
  least 5 times over a span of at least 10 days and pessimistically fills
  unobserved days with the intersection of the neighbouring observations,
  yielding the **extrapolated trace**.
"""

from repro.trace.extrapolation import ExtrapolationConfig, extrapolate
from repro.trace.filtering import filter_duplicates
from repro.trace.io import (
    convert_trace_file_to_store,
    load_trace,
    save_trace,
    store_to_trace_file,
    trace_to_store,
)
from repro.trace.model import (
    ClientMeta,
    FileMeta,
    Snapshot,
    StaticTrace,
    Trace,
)
from repro.trace.stats import (
    TraceCharacteristics,
    daily_counts,
    discovery_curve,
    general_characteristics,
)
from repro.trace.store import (
    TraceStore,
    TraceStoreError,
    TraceStoreWriter,
    open_store,
    verify_store,
)

__all__ = [
    "ClientMeta",
    "ExtrapolationConfig",
    "FileMeta",
    "Snapshot",
    "StaticTrace",
    "Trace",
    "TraceCharacteristics",
    "TraceStore",
    "TraceStoreError",
    "TraceStoreWriter",
    "convert_trace_file_to_store",
    "daily_counts",
    "discovery_curve",
    "extrapolate",
    "filter_duplicates",
    "general_characteristics",
    "load_trace",
    "open_store",
    "save_trace",
    "store_to_trace_file",
    "trace_to_store",
    "verify_store",
]
