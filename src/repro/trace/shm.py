"""Zero-copy shared-memory transport for compiled traces.

The sharded runtime fans a simulation out over a process pool, and every
worker needs the same :class:`~repro.trace.compiled.CompiledTrace`.
Pickling it per worker would copy the CSR columns — at ``Scale.HUGE``
that is tens of millions of ints plus a million file-id strings — once
per process.  This module instead packs every column into a single
``multiprocessing.shared_memory`` segment once, and hands workers a
:class:`SharedTraceHandle`: a few counts and a segment name, a few
hundred bytes of pickle no matter the trace size.

Layout of the segment (all 8-byte columns first so every typed view is
naturally aligned; the segment base is page-aligned):

======================  ====  ===========================================
column                  fmt   meaning
======================  ====  ===========================================
``cache_offsets``       q     CSR offsets, ``num_clients + 1``
``sharer_offsets``      q     inverted-index offsets, ``num_files + 1``
``id_offsets``          q     file-id blob offsets, ``num_files + 1``
``client_ids``          q     client ids in row order
``cache_files``         i     CSR file indices, ``total_replicas``
``sharer_rows``         i     inverted-index client rows
``static_counts``       i     per-file replica counts
``id_blob``             B     file-id strings, UTF-8, back to back
======================  ====  ===========================================

Attaching maps the int columns as typed ``memoryview`` slices — zero
copies, shared pages — and feeds them to
:meth:`CompiledTrace.from_shared_columns`, which also skips the
inverted-index rebuild.  Only the Python-object structures that cannot
live in flat memory are materialized per worker: the file-id strings
(decoded from the blob), the intern dict, and the per-row membership
sets.

Lifetime protocol: the exporting process owns the segment and is the
only one that may :meth:`~SharedTraceExport.unlink` it; attaching
processes map it *without* ``resource_tracker`` registration so a worker
exiting does not tear the segment out from under its siblings (the
tracker would otherwise unlink it during worker cleanup, and sibling
workers sharing one forked tracker would race their bookkeeping).
Workers call :meth:`AttachedTrace.close` after dropping every reference
to the trace; the owner unlinks after the pool has joined.

This module is deliberately numpy-free: the streaming store tools share
an import chain with it, and their bounded-RSS guarantee (checked by
``benchmarks/bench_scaling.py``) depends on plain-stdlib imports.
"""

from __future__ import annotations

import secrets
from array import array
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Tuple

from repro.trace.compiled import CompiledTrace

_ITEM_SIZE = {"q": 8, "i": 4, "B": 1}

#: Segment-name prefix — lets tests (and humans poking ``/dev/shm``)
#: attribute leaked segments to this transport.
SEGMENT_PREFIX = "repro_ct_"

_LayoutEntry = Tuple[int, str, int]  # (byte offset, format char, item count)


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Map an existing segment without resource-tracker registration.

    Register-then-unregister would leave a race: sibling pool workers
    share one forked tracker whose per-type cache is a *set*, so two
    workers registering the same name dedup to one entry and the second
    unregister logs a KeyError from the tracker daemon.  Suppressing the
    registration on the non-owning side avoids the message entirely
    (Python 3.13's ``track=False`` parameter, available before it).
    """
    original = resource_tracker.register

    def _skip_shared_memory(tracked_name, rtype):
        if rtype != "shared_memory":  # pragma: no cover - other rtypes
            original(tracked_name, rtype)

    resource_tracker.register = _skip_shared_memory
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _layout(
    num_clients: int, num_files: int, num_replicas: int, blob_len: int
) -> Tuple[Dict[str, _LayoutEntry], int]:
    """Column layout for a trace of the given shape, and the total size.

    Derived independently (and identically) on the export and attach
    sides from the four counts the handle carries, so the handle never
    needs to serialize offsets.
    """
    columns = (
        ("cache_offsets", "q", num_clients + 1),
        ("sharer_offsets", "q", num_files + 1),
        ("id_offsets", "q", num_files + 1),
        ("client_ids", "q", num_clients),
        ("cache_files", "i", num_replicas),
        ("sharer_rows", "i", num_replicas),
        ("static_counts", "i", num_files),
        ("id_blob", "B", blob_len),
    )
    layout: Dict[str, _LayoutEntry] = {}
    offset = 0
    for name, fmt, count in columns:
        layout[name] = (offset, fmt, count)
        offset += _ITEM_SIZE[fmt] * count
    return layout, offset


def _column_bytes(column, fmt: str, count: int) -> bytes:
    """Raw little-endian-native bytes of an int column.

    Columns arrive either as ``array`` instances (the in-process build
    path) or as typed ``memoryview`` slices (a trace that itself came
    from a store segment or another shm attach); both expose the buffer
    protocol with the right item width.  Anything else — e.g. the
    ``tuple`` of client ids — is packed through ``array``.
    """
    if isinstance(column, (array, memoryview)):
        data = bytes(column)
    else:
        data = array(fmt, column).tobytes()
    expected = _ITEM_SIZE[fmt] * count
    if len(data) != expected:
        raise ValueError(
            f"column packed to {len(data)} bytes, expected {expected}"
        )
    return data


class SharedTraceHandle:
    """A pickle-cheap reference to an exported compiled trace.

    Carries the segment name plus the four counts that determine the
    layout — pickling is O(1) in the trace size.  Workers call
    :meth:`attach`; the handle itself holds no OS resources.
    """

    __slots__ = (
        "name",
        "num_clients",
        "num_files",
        "num_replicas",
        "blob_len",
    )

    def __init__(
        self,
        name: str,
        num_clients: int,
        num_files: int,
        num_replicas: int,
        blob_len: int,
    ) -> None:
        self.name = name
        self.num_clients = num_clients
        self.num_files = num_files
        self.num_replicas = num_replicas
        self.blob_len = blob_len

    def __getstate__(self):
        return (
            self.name,
            self.num_clients,
            self.num_files,
            self.num_replicas,
            self.blob_len,
        )

    def __setstate__(self, state):
        (
            self.name,
            self.num_clients,
            self.num_files,
            self.num_replicas,
            self.blob_len,
        ) = state

    def attach(self) -> "AttachedTrace":
        """Map the segment and rebuild a :class:`CompiledTrace` over it.

        The int columns are typed views straight into the shared pages;
        the file-id strings are decoded (strings cannot be shared).  The
        mapping bypasses ``resource_tracker`` registration because this
        process does not own the segment — without that, the tracker
        "helpfully" unlinks it when the first worker exits.
        """
        _sweep_parked()
        shm = _attach_untracked(self.name)
        layout, total = _layout(
            self.num_clients, self.num_files, self.num_replicas, self.blob_len
        )
        if shm.size < total:
            shm.close()
            raise ValueError(
                f"segment {self.name!r} is {shm.size} bytes, handle "
                f"describes {total}"
            )
        buf = shm.buf

        def view(name: str):
            off, fmt, count = layout[name]
            return buf[off : off + _ITEM_SIZE[fmt] * count].cast(fmt)

        id_offsets = view("id_offsets")
        blob_off, _, blob_len = layout["id_blob"]
        blob = bytes(buf[blob_off : blob_off + blob_len])
        file_ids = tuple(
            blob[id_offsets[i] : id_offsets[i + 1]].decode("utf-8")
            for i in range(self.num_files)
        )
        trace = CompiledTrace.from_shared_columns(
            file_ids=file_ids,
            client_ids=tuple(view("client_ids")),
            cache_files=view("cache_files"),
            cache_offsets=view("cache_offsets"),
            sharer_rows=view("sharer_rows"),
            sharer_offsets=view("sharer_offsets"),
            static_counts=view("static_counts"),
        )
        return AttachedTrace(shm, trace)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SharedTraceHandle({self.name!r}, clients={self.num_clients}, "
            f"files={self.num_files}, replicas={self.num_replicas})"
        )


#: Mappings whose unmap was requested while trace views still referenced
#: their pages.  ``mmap.close`` refuses while exported buffers exist, and
#: letting ``SharedMemory.__del__`` retry at an arbitrary GC moment turns
#: that refusal into an unraisable error — so the mapping is parked here
#: (keeping the object alive and ``__del__`` at bay) and retried whenever
#: the transport is next used.  A parked mapping holds address space, not
#: the segment name: the owner's unlink is never delayed by it.
_parked_mappings: list = []


def _sweep_parked() -> None:
    still_parked = []
    for shm in _parked_mappings:
        try:
            shm.close()
        except BufferError:
            still_parked.append(shm)
    _parked_mappings[:] = still_parked


class AttachedTrace:
    """A worker-side mapping: the trace plus the segment keeping it alive.

    The compiled trace's columns are views into the segment, so the
    mapping must outlive the trace.  Hold this object for as long as the
    trace is in use, then drop every trace reference and :meth:`close`.
    Usable as a context manager.
    """

    __slots__ = ("_shm", "trace")

    def __init__(self, shm: shared_memory.SharedMemory, trace: CompiledTrace):
        self._shm = shm
        self.trace = trace

    def close(self) -> None:
        """Release the mapping (never unlinks — the exporter owns that).

        If trace views are still referenced somewhere — the usual case
        when the caller's trace variable is still in scope — the unmap
        cannot complete yet; the mapping is parked and retried on later
        transport activity.  Never raises either way.
        """
        self.trace = None
        try:
            self._shm.close()
        except BufferError:  # views still alive somewhere
            _parked_mappings.append(self._shm)
        _sweep_parked()

    def __enter__(self) -> CompiledTrace:
        return self.trace

    def __exit__(self, *exc) -> None:
        self.close()


class SharedTraceExport:
    """Owner side of a shared trace: the segment and its handle.

    Created by :func:`export_compiled`.  The exporting process keeps
    this object alive while workers run, then calls :meth:`close` (or
    uses it as a context manager) to unlink the name and release the
    mapping.  ``/dev/shm`` holds the pages until *both* the name is
    unlinked and every process has unmapped, so close-after-join leaks
    nothing.
    """

    __slots__ = ("_shm", "handle", "_unlinked")

    def __init__(
        self, shm: shared_memory.SharedMemory, handle: SharedTraceHandle
    ):
        self._shm = shm
        self.handle = handle
        self._unlinked = False

    def unlink(self) -> None:
        if not self._unlinked:
            self._unlinked = True
            # Attaches never registered with the resource tracker, so
            # the owner's registration (made at create time) is intact
            # and ``unlink``'s unconditional unregister balances it.
            self._shm.unlink()

    def close(self) -> None:
        self.unlink()
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - owner kept views
            pass

    def __enter__(self) -> "SharedTraceExport":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def export_compiled(compiled: CompiledTrace) -> SharedTraceExport:
    """Pack ``compiled``'s columns into one shared-memory segment.

    Every column — CSR caches, inverted index, replica counts, client
    ids, and the UTF-8 file-id table — is written once; workers attach
    through the returned export's :attr:`~SharedTraceExport.handle`.
    """
    _sweep_parked()
    encoded = [fid.encode("utf-8") for fid in compiled.file_ids]
    id_offsets = array("q", [0])
    acc = 0
    for chunk in encoded:
        acc += len(chunk)
        id_offsets.append(acc)
    blob = b"".join(encoded)

    n = compiled.num_clients
    m = compiled.num_files
    r = compiled.total_replicas
    layout, total = _layout(n, m, r, len(blob))

    shm = None
    for _ in range(16):
        name = SEGMENT_PREFIX + secrets.token_hex(8)
        try:
            shm = shared_memory.SharedMemory(
                name=name, create=True, size=max(1, total)
            )
            break
        except FileExistsError:  # pragma: no cover - 64-bit collision
            continue
    if shm is None:  # pragma: no cover - 16 collisions in a row
        raise RuntimeError("could not allocate a unique segment name")

    columns = {
        "cache_offsets": compiled.cache_offsets,
        "sharer_offsets": compiled.sharer_offsets,
        "id_offsets": id_offsets,
        "client_ids": compiled.client_ids,
        "cache_files": compiled.cache_files,
        "sharer_rows": compiled.sharer_rows,
        "static_counts": compiled.static_counts,
    }
    buf = shm.buf
    try:
        for colname, column in columns.items():
            off, fmt, count = layout[colname]
            data = _column_bytes(column, fmt, count)
            buf[off : off + len(data)] = data
        off, _, count = layout["id_blob"]
        buf[off : off + count] = blob
    except Exception:
        shm.unlink()
        shm.close()
        raise

    handle = SharedTraceHandle(shm.name, n, m, r, len(blob))
    return SharedTraceExport(shm, handle)
