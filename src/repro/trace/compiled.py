"""The compiled trace: an interned, columnar view of a static trace.

Every Section-5 simulation and Section-4 analysis hammers
:class:`~repro.trace.model.StaticTrace` — a dict of frozensets keyed by
*string* file ids — so the hottest paths (membership probes, sharer
lookups, replica counts, cache overlaps) pay string hashing and
pointer-chasing on every operation.  A :class:`CompiledTrace` is built
once from a static trace and gives the same information in a form the
hot loops can consume directly:

- **Intern tables**: every :data:`~repro.trace.model.FileId` string is
  interned to a dense ``FileIdx`` int.  Indices are assigned in sorted
  string order, so the mapping is *monotone*: ``sorted()`` over indices
  visits files in exactly the order ``sorted()`` over the original
  strings would.  That property is what keeps seeded consumers
  byte-identical — any code that sorts a cache before feeding it to an
  RNG draws in the same order on either representation.
- **Columnar caches**: per-client static caches are packed into one
  ``array('i')`` of sorted file indices plus an offsets array (CSR
  layout), with a per-client ``frozenset`` of ints for O(1) membership.
- **Inverted index**: per-file sharer arrays (client rows, ascending)
  and the static replica count of every file, precomputed.
- **Overlap kernels**: pairwise cache-overlap computation through
  scipy's sparse matrix product when scipy is available, through
  C-level ``Counter`` accumulation otherwise — both produce exactly the
  dict the pure-Python pair loop would.

Translation back to the public string ids happens at the boundary via
:meth:`CompiledTrace.file_id` / :meth:`CompiledTrace.to_file_ids`.

Invalidation: a compiled trace is a snapshot.  ``StaticTrace.compiled()``
memoizes it on the instance; every StaticTrace-producing operation
(``replace_caches``, ``without_clients``, ``without_files``,
``Trace.to_static`` — the only mutation paths in the library) returns a
*new* instance and therefore a fresh compilation.  Code that mutates
``StaticTrace.caches`` in place (none in this library) must call
``invalidate_compiled()``.
"""

from __future__ import annotations

from array import array
from collections import Counter
from itertools import combinations
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    TYPE_CHECKING,
)

from repro.trace.model import ClientId, FileId, pair_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.trace.model import StaticTrace

_sparse = None
_sparse_checked = False


def _get_sparse():
    """Import ``scipy.sparse`` on first use, not at module import.

    scipy is optional (the combinations kernel covers its absence) and
    heavy (~30 MB RSS), so importing it eagerly would tax every consumer
    of the trace layer — including streaming analyses whose whole point
    is a small footprint — whether or not the CSR kernel ever runs.
    """
    global _sparse, _sparse_checked
    if not _sparse_checked:
        _sparse_checked = True
        try:
            from scipy import sparse as _sparse_mod
        except ImportError:  # pragma: no cover - only without scipy
            _sparse_mod = None
        _sparse = _sparse_mod
    return _sparse

FileIdx = int


class CompiledTrace:
    """An immutable, interned, columnar snapshot of a static trace."""

    __slots__ = (
        "file_ids",
        "file_index",
        "client_ids",
        "client_row",
        "cache_offsets",
        "cache_files",
        "cache_sets",
        "sharer_offsets",
        "sharer_rows",
        "static_counts",
        "_csr",
    )

    def __init__(
        self,
        file_ids: Sequence[FileId],
        client_ids: Sequence[ClientId],
        cache_columns: Sequence[Sequence[FileIdx]],
    ) -> None:
        self.file_ids: Tuple[FileId, ...] = tuple(file_ids)
        self.file_index: Dict[FileId, FileIdx] = {
            fid: i for i, fid in enumerate(self.file_ids)
        }
        self.client_ids: Tuple[ClientId, ...] = tuple(client_ids)
        self.client_row: Dict[ClientId, int] = {
            cid: r for r, cid in enumerate(self.client_ids)
        }
        if len(self.client_row) != len(self.client_ids):
            raise ValueError("duplicate client ids")

        offsets = array("q", [0])
        files = array("i")
        sets: List[FrozenSet[FileIdx]] = []
        for column in cache_columns:
            files.extend(column)
            offsets.append(len(files))
            sets.append(frozenset(column))
        if len(sets) != len(self.client_ids):
            raise ValueError("one cache column per client required")
        self.cache_offsets = offsets
        self.cache_files = files
        self.cache_sets: Tuple[FrozenSet[FileIdx], ...] = tuple(sets)
        self._build_inverted_index()
        self._csr = None

    def _build_inverted_index(self) -> None:
        # Inverted index: count, prefix-sum, fill — client rows ascending
        # because rows are visited in ascending order.
        m = len(self.file_ids)
        counts = array("i", bytes(4 * m)) if m else array("i")
        for idx in self.cache_files:
            counts[idx] += 1
        self.static_counts = counts
        sharer_offsets = array("q", [0] * (m + 1))
        acc = 0
        for i in range(m):
            sharer_offsets[i] = acc
            acc += counts[i]
        sharer_offsets[m] = acc
        fill = array("q", sharer_offsets)
        sharer_rows = array("i", bytes(4 * acc)) if acc else array("i")
        for row in range(len(self.client_ids)):
            for idx in self.cache_files[
                self.cache_offsets[row] : self.cache_offsets[row + 1]
            ]:
                sharer_rows[fill[idx]] = row
                fill[idx] += 1
        self.sharer_offsets = sharer_offsets
        self.sharer_rows = sharer_rows

    # ------------------------------------------------------------------
    # Construction

    @classmethod
    def from_static(cls, trace: "StaticTrace") -> "CompiledTrace":
        """Compile ``trace``.

        File indices are assigned in sorted string order (monotone
        intern); client rows keep the ``caches`` dict insertion order so
        consumers that iterate ``caches.items()`` see the same client
        sequence on either representation.
        """
        distinct: set = set()
        for cache in trace.caches.values():
            distinct.update(cache)
        file_ids = sorted(distinct)
        index = {fid: i for i, fid in enumerate(file_ids)}
        client_ids = list(trace.caches)
        columns = [
            sorted(index[fid] for fid in trace.caches[cid])
            for cid in client_ids
        ]
        return cls(file_ids, client_ids, columns)

    @classmethod
    def from_columns(
        cls,
        file_ids: Sequence[FileId],
        client_ids: Sequence[ClientId],
        cache_files,
        cache_offsets,
        file_index: Optional[Dict[FileId, FileIdx]] = None,
    ) -> "CompiledTrace":
        """Adopt prebuilt CSR columns instead of re-interning.

        This is the out-of-core path: :meth:`TraceStore.compiled_day
        <repro.trace.store.TraceStore.compiled_day>` hands the mmapped
        segment columns straight in (``memoryview`` slices work — every
        consumer, including the scipy kernel, reads them through the
        buffer protocol), so the columns themselves are zero-copy.  Only
        the per-row membership sets and the inverted index are derived,
        in one pass over the replicas.  ``cache_files`` must be sorted
        ascending per client and ``cache_offsets`` must be a CSR offsets
        column (``offsets[0] == 0``, ``offsets[-1] == len(cache_files)``).
        ``file_index`` (when given) is adopted without copying — callers
        interning many days against one table share it.
        """
        self = cls.__new__(cls)
        self.file_ids = tuple(file_ids)
        self.file_index = (
            file_index
            if file_index is not None
            else {fid: i for i, fid in enumerate(self.file_ids)}
        )
        self.client_ids = tuple(client_ids)
        self.client_row = {cid: r for r, cid in enumerate(self.client_ids)}
        if len(self.client_row) != len(self.client_ids):
            raise ValueError("duplicate client ids")
        n = len(self.client_ids)
        if len(cache_offsets) != n + 1:
            raise ValueError(
                f"offsets column has {len(cache_offsets)} entries for "
                f"{n} clients (need n+1)"
            )
        if cache_offsets[0] != 0 or cache_offsets[n] != len(cache_files):
            raise ValueError("CSR offsets do not span the files column")
        self.cache_files = cache_files
        self.cache_offsets = cache_offsets
        self.cache_sets = tuple(
            frozenset(cache_files[cache_offsets[r] : cache_offsets[r + 1]])
            for r in range(n)
        )
        self._build_inverted_index()
        self._csr = None
        return self

    @classmethod
    def from_shared_columns(
        cls,
        *,
        file_ids: Sequence[FileId],
        client_ids: Sequence[ClientId],
        cache_files,
        cache_offsets,
        sharer_rows,
        sharer_offsets,
        static_counts,
    ) -> "CompiledTrace":
        """Adopt a full column set, inverted index included.

        This is the shared-memory attach path (:mod:`repro.trace.shm`):
        a worker process maps the exporting process's segment and hands
        every int column in as a ``memoryview`` slice, so nothing that
        :meth:`from_columns` would recompute per process — in particular
        the inverted index, the expensive part — is rebuilt.  Only the
        pointer-based Python structures that cannot live in flat memory
        are derived here: the per-row membership ``frozenset``s and the
        string intern dict.

        The columns are trusted (they came out of :meth:`__init__` or
        :meth:`from_columns` in the exporting process); only the cheap
        CSR span invariants are re-checked.
        """
        self = cls.__new__(cls)
        self.file_ids = (
            file_ids if isinstance(file_ids, tuple) else tuple(file_ids)
        )
        self.file_index = {fid: i for i, fid in enumerate(self.file_ids)}
        self.client_ids = (
            client_ids if isinstance(client_ids, tuple) else tuple(client_ids)
        )
        self.client_row = {cid: r for r, cid in enumerate(self.client_ids)}
        if len(self.client_row) != len(self.client_ids):
            raise ValueError("duplicate client ids")
        n = len(self.client_ids)
        m = len(self.file_ids)
        if len(cache_offsets) != n + 1:
            raise ValueError(
                f"offsets column has {len(cache_offsets)} entries for "
                f"{n} clients (need n+1)"
            )
        if cache_offsets[0] != 0 or cache_offsets[n] != len(cache_files):
            raise ValueError("CSR offsets do not span the files column")
        if len(sharer_offsets) != m + 1 or len(static_counts) != m:
            raise ValueError("inverted index columns do not match num_files")
        if sharer_offsets[m] != len(sharer_rows):
            raise ValueError("sharer offsets do not span the rows column")
        self.cache_files = cache_files
        self.cache_offsets = cache_offsets
        self.cache_sets = tuple(
            frozenset(cache_files[cache_offsets[r] : cache_offsets[r + 1]])
            for r in range(n)
        )
        self.sharer_rows = sharer_rows
        self.sharer_offsets = sharer_offsets
        self.static_counts = static_counts
        self._csr = None
        return self

    # ------------------------------------------------------------------
    # Sizes

    @property
    def num_clients(self) -> int:
        return len(self.client_ids)

    @property
    def num_files(self) -> int:
        return len(self.file_ids)

    @property
    def total_replicas(self) -> int:
        return len(self.cache_files)

    # ------------------------------------------------------------------
    # Intern / lookup boundary

    def file_idx(self, file_id: FileId) -> FileIdx:
        """Interned index of ``file_id`` (KeyError if unknown)."""
        return self.file_index[file_id]

    def file_id(self, idx: FileIdx) -> FileId:
        """Public string id of interned index ``idx``."""
        return self.file_ids[idx]

    def to_file_ids(self, idxs: Iterable[FileIdx]) -> List[FileId]:
        ids = self.file_ids
        return [ids[i] for i in idxs]

    def to_file_indices(self, file_ids: Iterable[FileId]) -> List[FileIdx]:
        index = self.file_index
        return [index[f] for f in file_ids]

    def row_of(self, client_id: ClientId) -> int:
        return self.client_row[client_id]

    # ------------------------------------------------------------------
    # Membership and columns

    def shares(self, client_id: ClientId, idx: FileIdx) -> bool:
        """O(1): does ``client_id``'s static cache contain file ``idx``?"""
        row = self.client_row.get(client_id)
        if row is None:
            return False
        return idx in self.cache_sets[row]

    def shares_row(self, row: int, idx: FileIdx) -> bool:
        return idx in self.cache_sets[row]

    def cache_set(self, client_id: ClientId) -> FrozenSet[FileIdx]:
        """The client's static cache as a frozen set of file indices."""
        return self.cache_sets[self.client_row[client_id]]

    def cache_column(self, client_id: ClientId) -> array:
        """The client's static cache as a sorted ``array('i')`` slice."""
        row = self.client_row[client_id]
        return self.cache_files[
            self.cache_offsets[row] : self.cache_offsets[row + 1]
        ]

    def cache_size(self, client_id: ClientId) -> int:
        row = self.client_row[client_id]
        return self.cache_offsets[row + 1] - self.cache_offsets[row]

    # ------------------------------------------------------------------
    # Inverted index

    def replica_count(self, idx: FileIdx) -> int:
        return self.static_counts[idx]

    def sharer_rows_of(self, idx: FileIdx) -> array:
        """Rows of the clients sharing file ``idx`` (ascending)."""
        return self.sharer_rows[
            self.sharer_offsets[idx] : self.sharer_offsets[idx + 1]
        ]

    def sharer_ids(self, idx: FileIdx) -> List[ClientId]:
        ids = self.client_ids
        return [ids[r] for r in self.sharer_rows_of(idx)]

    def replica_counts(self) -> Counter:
        """Counter ``file_id -> replica count`` (string-keyed boundary)."""
        return Counter(
            {
                fid: count
                for fid, count in zip(self.file_ids, self.static_counts)
                if count
            }
        )

    # ------------------------------------------------------------------
    # Overlap kernels

    def overlap(self, a: ClientId, b: ClientId) -> int:
        """Number of common files between two clients' static caches."""
        sa = self.cache_sets[self.client_row[a]]
        sb = self.cache_sets[self.client_row[b]]
        return len(sa & sb)

    def _csr_matrix(self):
        """The 0/1 client-by-file sparse matrix (scipy path), cached."""
        if self._csr is None:
            import numpy as np

            data = np.ones(len(self.cache_files), dtype=np.int32)
            self._csr = _get_sparse().csr_matrix(
                (
                    data,
                    np.frombuffer(self.cache_files, dtype=np.int32),
                    np.frombuffer(self.cache_offsets, dtype=np.int64),
                ),
                shape=(self.num_clients, max(1, self.num_files)),
            )
        return self._csr

    def pair_overlaps(
        self, file_mask: Optional[Sequence[bool]] = None
    ) -> Dict[Tuple[ClientId, ClientId], int]:
        """Common-file counts for every client pair with >= 1 common file.

        Exactly what the pure-Python inverted-index pair loop computes,
        via scipy's sparse matrix product when available (the Gram matrix
        of the 0/1 client-by-file matrix *is* the pairwise overlap) and
        via C-level ``Counter`` accumulation over ``combinations``
        otherwise.  ``file_mask[idx]`` restricts the computation to the
        files where it is true.
        """
        if _get_sparse() is not None and self.num_files:
            return self._pair_overlaps_csr(file_mask)
        return self._pair_overlaps_counter(file_mask)

    def _pair_overlaps_csr(self, file_mask):
        import numpy as np

        matrix = self._csr_matrix()
        if file_mask is not None:
            matrix = matrix[:, np.asarray(file_mask, dtype=bool)]
        gram = (matrix @ matrix.T).tocoo()
        rows, cols, vals = gram.row, gram.col, gram.data
        upper = rows < cols
        ids = self.client_ids
        out: Dict[Tuple[ClientId, ClientId], int] = {}
        for r, c, v in zip(rows[upper], cols[upper], vals[upper]):
            out[pair_key(ids[r], ids[c])] = int(v)
        return out

    def _pair_overlaps_counter(self, file_mask):
        ids = self.client_ids
        overlaps: Counter = Counter()
        for idx in range(self.num_files):
            if file_mask is not None and not file_mask[idx]:
                continue
            rows = self.sharer_rows_of(idx)
            if len(rows) < 2:
                continue
            sharers = sorted(ids[r] for r in rows)
            overlaps.update(combinations(sharers, 2))
        return dict(overlaps)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledTrace(clients={self.num_clients}, "
            f"files={self.num_files}, replicas={self.total_replicas})"
        )


class FileInterner:
    """A growing string-to-int intern table for ad-hoc cache maps.

    The analyses that operate on arbitrary cache maps (per-day snapshot
    dicts, filtered views) rather than on a ``StaticTrace`` use this to
    run their set arithmetic on ints.  Unlike :class:`CompiledTrace`,
    indices are assigned in first-seen order — these consumers only use
    intersection/union *sizes*, which are order-independent.
    """

    __slots__ = ("index", "ids")

    def __init__(self) -> None:
        self.index: Dict[FileId, int] = {}
        self.ids: List[FileId] = []

    def intern(self, file_id: FileId) -> int:
        idx = self.index.get(file_id)
        if idx is None:
            idx = len(self.ids)
            self.index[file_id] = idx
            self.ids.append(file_id)
        return idx

    def intern_set(self, file_ids: Iterable[FileId]) -> FrozenSet[int]:
        intern = self.intern
        return frozenset(intern(f) for f in file_ids)

    def intern_cache_map(
        self, caches: Mapping[ClientId, Iterable[FileId]]
    ) -> Dict[ClientId, FrozenSet[int]]:
        intern_set = self.intern_set
        return {cid: intern_set(cache) for cid, cache in caches.items()}

    def __len__(self) -> int:
        return len(self.ids)
