"""File kinds and the bimodal size distribution.

The paper (Figure 6) reports that 40% of all files are under 1 MB, 50% are
in the 1-10 MB MP3 range and only 10% are larger — but that among *popular*
files (popularity >= 5) about 45% are DIVX-sized (> 600 MB).  We reproduce
this by giving every file a *kind* whose distribution depends on whether the
file sits in the popular head of the intrinsic-popularity ranking, and a
size drawn from a kind-specific lognormal clamped to the kind's natural
range.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.util.rng import RngStream, stable_choice
from repro.util.validation import check_fraction

KB = 1024
MB = 1024 * 1024

#: kind -> (median bytes, lognormal sigma, min bytes, max bytes)
SIZE_MODELS: Dict[str, Tuple[float, float, int, int]] = {
    # small documents, images, subtitle files
    "document": (300 * KB, 1.3, 1 * KB, MB - 1),
    # single MP3 tracks
    "audio": (4 * MB, 0.5, MB, 10 * MB),
    # complete albums, small videos, software
    "album": (60 * MB, 0.9, 10 * MB, 600 * MB),
    "program": (80 * MB, 1.1, 10 * MB, 600 * MB),
    # DIVX movies
    "video": (700 * MB, 0.25, 600 * MB, 4096 * MB),
}

#: kind mix for the popularity head (popular files are mostly large videos)
HEAD_KIND_WEIGHTS: Dict[str, float] = {
    "video": 0.50,
    "album": 0.12,
    "program": 0.08,
    "audio": 0.20,
    "document": 0.10,
}

#: kind mix for the long tail (matches the overall 40/50/10 split once mixed)
TAIL_KIND_WEIGHTS: Dict[str, float] = {
    "video": 0.02,
    "album": 0.04,
    "program": 0.03,
    "audio": 0.50,
    "document": 0.41,
}


def sample_size(kind: str, rng: RngStream) -> int:
    """Draw a file size in bytes for ``kind`` (clamped lognormal)."""
    try:
        median, sigma, lo, hi = SIZE_MODELS[kind]
    except KeyError:
        raise ValueError(f"unknown file kind {kind!r}") from None
    mu = math.log(median)
    size = rng.py.lognormvariate(mu, sigma)
    return int(min(max(size, lo), hi))


@dataclass
class FileKindModel:
    """Draws (kind, size) pairs conditioned on popularity-head membership.

    ``head_fraction`` is the fraction of the intrinsic-popularity ranking
    treated as the popular head.  Weights may be overridden for ablations
    (e.g. an all-audio workload).
    """

    head_fraction: float = 0.05
    head_weights: Dict[str, float] = field(
        default_factory=lambda: dict(HEAD_KIND_WEIGHTS)
    )
    tail_weights: Dict[str, float] = field(
        default_factory=lambda: dict(TAIL_KIND_WEIGHTS)
    )

    def __post_init__(self) -> None:
        check_fraction("head_fraction", self.head_fraction)
        for label, weights in (("head", self.head_weights), ("tail", self.tail_weights)):
            unknown = set(weights) - set(SIZE_MODELS)
            if unknown:
                raise ValueError(f"unknown kinds in {label} weights: {unknown}")
            if sum(weights.values()) <= 0:
                raise ValueError(f"{label} weights must have positive total")

    def sample_kind(self, popularity_rank: int, universe_size: int, rng: RngStream) -> str:
        """Draw a kind given the file's intrinsic-popularity rank (0 = most
        popular) within a universe of ``universe_size`` files."""
        in_head = popularity_rank < self.head_fraction * universe_size
        weights = self.head_weights if in_head else self.tail_weights
        kinds = sorted(weights)
        return stable_choice(rng.py, kinds, [weights[k] for k in kinds])

    def sample(
        self, popularity_rank: int, universe_size: int, rng: RngStream
    ) -> Tuple[str, int]:
        kind = self.sample_kind(popularity_rank, universe_size, rng)
        return kind, sample_size(kind, rng)
