"""Workload calibration report.

One call checks a (temporal) trace against every marginal statistic the
paper reports, so anyone re-tuning :class:`~repro.workload.config.
WorkloadConfig` can see at a glance which targets their parameters hit
and which they broke.  Exposed on the CLI as ``python -m repro calibrate``.

Each check carries the paper's value, the measured value, an acceptance
band (deliberately generous — these are shape targets, not equalities)
and a pass flag.  ``repro.experiments`` asserts the same shapes with
per-figure granularity; this module is the quick, whole-workload view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.contribution import generosity_concentration
from repro.analysis.geographic import country_histogram, top_as_table
from repro.analysis.popularity import max_spread_fraction
from repro.analysis.semantic import clustering_correlation
from repro.trace.filtering import filter_duplicates
from repro.trace.model import Trace
from repro.trace.stats import discovery_curve, general_characteristics
from repro.util.tables import format_table
from repro.util.zipf import fit_zipf_slope


@dataclass(frozen=True)
class CalibrationCheck:
    """One target: paper value, measured value, acceptance verdict."""

    name: str
    paper: str
    measured: str
    ok: bool
    note: str = ""


def _check(name: str, paper: str, measured: float, lo: float, hi: float,
           fmt: str = "{:.2f}", note: str = "") -> CalibrationCheck:
    return CalibrationCheck(
        name=name,
        paper=paper,
        measured=fmt.format(measured),
        ok=lo <= measured <= hi,
        note=note,
    )


def calibration_report(trace: Trace) -> List[CalibrationCheck]:
    """Run every calibration check against a temporal trace."""
    checks: List[CalibrationCheck] = []
    filtered = filter_duplicates(trace)
    static = filtered.to_static()

    # -- free-riding ----------------------------------------------------
    chars = general_characteristics(filtered)
    checks.append(
        _check(
            "free-rider fraction (filtered)",
            "0.70-0.84",
            chars.free_rider_fraction,
            0.60,
            0.90,
        )
    )

    # -- popularity shape ------------------------------------------------
    counts = sorted(static.replica_counts().values(), reverse=True)
    if len(counts) >= 30:
        slope, r_squared = fit_zipf_slope(
            list(range(1, len(counts) + 1)), counts, skip_head=5
        )
        checks.append(
            _check("zipf slope (rank/replication)", "linear log-log",
                   slope, 0.2, 1.5)
        )
        checks.append(
            _check("zipf fit r^2", "> 0.7", r_squared, 0.7, 1.0)
        )

    # -- file sizes -------------------------------------------------------
    sizes = [meta.size for meta in static.files.values()]
    if sizes:
        under_1mb = sum(1 for s in sizes if s < 1024**2) / len(sizes)
        checks.append(
            _check("files under 1MB", "~0.40", under_1mb, 0.25, 0.55)
        )

    # -- contribution skew ------------------------------------------------
    if static.non_free_riders():
        concentration = generosity_concentration(static, 0.15)
        checks.append(
            _check("top-15% sharer concentration", "0.75",
                   concentration, 0.40, 0.95)
        )

    # -- geography ---------------------------------------------------------
    shares = {c: f for c, _, f in country_histogram(filtered)}
    checks.append(
        _check("FR client share", "0.29", shares.get("FR", 0.0), 0.21, 0.37)
    )
    checks.append(
        _check("DE client share", "0.28", shares.get("DE", 0.0), 0.20, 0.36)
    )
    as_rows = {r.asn: r for r in top_as_table(filtered, 8)}
    if 3320 in as_rows:
        checks.append(
            _check("AS3320 global share", "0.21",
                   as_rows[3320].global_share, 0.13, 0.29)
        )

    # -- dynamics -----------------------------------------------------------
    spread = max_spread_fraction(filtered)
    checks.append(
        _check("max file spread", "< 0.007 (scale-bound here)",
               spread, 0.0, 0.15,
               note="grows as 1/clients at reproduction scale")
    )
    new_files, _ = discovery_curve(trace)
    last_new = new_files.ys[-1] if new_files.ys else 0.0
    checks.append(
        _check("new files on last day", "> 0 (discovery never saturates)",
               last_new, 1.0, float("inf"), fmt="{:.0f}")
    )

    # -- semantic clustering -------------------------------------------------
    caches = {c: f for c, f in static.caches.items() if f}
    correlation = clustering_correlation(caches)
    if correlation.ys:
        checks.append(
            _check("P(another common | 1 common)", "steeply rising",
                   correlation.ys[0], 25.0, 100.0, fmt="{:.1f}%")
        )
    return checks


def render_report(checks: List[CalibrationCheck]) -> str:
    """Render checks as an aligned table plus a pass summary."""
    rows = [
        (
            "PASS" if check.ok else "FAIL",
            check.name,
            check.paper,
            check.measured,
            check.note,
        )
        for check in checks
    ]
    table = format_table(
        ("", "target", "paper", "measured", "note"),
        rows,
        title="Workload calibration report",
    )
    passed = sum(1 for c in checks if c.ok)
    return f"{table}\n{passed}/{len(checks)} targets within band"


def all_passed(checks: List[CalibrationCheck]) -> bool:
    return all(check.ok for check in checks)
