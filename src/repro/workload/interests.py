"""The interest-category model that plants semantic and geographic structure.

Files are grouped into categories (think "French rap", "German TV rips",
"Linux ISOs").  Some categories are *homed* in a country — their files are
mostly shared by clients of that country — while others are international.
Clients subscribe to a handful of categories, preferring those homed in
their own country; cache fills and churn then draw mostly from subscribed
categories.

Two dials control the planted structure:

- ``geo_affinity``: probability that a client picks its next interest among
  categories homed in its own country — drives Figures 11/12;
- ``interest_loyalty`` (lives in :class:`~repro.workload.config.WorkloadConfig`):
  probability that a file draw goes through a subscribed category rather
  than the global popularity distribution — drives Figures 13/14/18-21.

Setting either to zero removes the corresponding clustering, which is what
the ablation benchmark does.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.util.rng import RngStream, stable_choice
from repro.util.validation import check_fraction, check_positive
from repro.util.zipf import zipf_weights


class _LazyNumpy:
    """Defer the numpy import to first use (annotations are strings here).

    ``repro.workload`` sits on the CLI's help/import path (via
    ``repro.runtime.scale``); rebinding the module-global ``np`` on first
    attribute access keeps that baseline RSS numpy-free.
    """

    def __getattr__(self, name):
        import numpy

        globals()["np"] = numpy
        return getattr(numpy, name)


np = _LazyNumpy()


@dataclass(frozen=True)
class Category:
    """One interest category.

    ``home_country`` is ``None`` for international categories.  ``weight``
    is the category's share of overall interest (Zipf over categories).
    """

    index: int
    home_country: Optional[str]
    weight: float


class InterestUniverse:
    """The set of categories plus per-category file indexes.

    File membership is filled in by the generator (files are created with a
    category index); the universe then precomputes, per category, the
    cumulative intrinsic-weight table used for O(log n) popularity-weighted
    draws within the category.
    """

    def __init__(
        self,
        categories: Sequence[Category],
        within_alpha: Optional[float] = None,
        catalog_fraction: float = 1.0,
    ) -> None:
        if not categories:
            raise ValueError("need at least one category")
        if not 0.0 < catalog_fraction <= 1.0:
            raise ValueError("catalog_fraction must be in (0, 1]")
        self.categories: List[Category] = list(categories)
        self.within_alpha = within_alpha
        self.catalog_fraction = catalog_fraction
        self._files_by_category: Dict[int, List[int]] = {
            c.index: [] for c in categories
        }
        self._cum_by_category: Dict[int, np.ndarray] = {}
        self._file_weights: Optional[np.ndarray] = None

    def add_file(self, file_index: int, category_index: int) -> None:
        self._files_by_category[category_index].append(file_index)

    def finalize(self, file_weights: np.ndarray) -> None:
        """Freeze membership and precompute cumulative weight tables.

        ``file_weights[i]`` is the intrinsic popularity weight of file ``i``;
        it fixes the *ordering* of files within each category.  The actual
        within-category draw weights follow a local Zipf with exponent
        ``within_alpha``: community attention concentrates on the category's
        head regardless of how the category ranks globally.  This gives the
        popularity distribution a multi-replica body (files the whole
        community holds) on top of the singleton tail.
        """
        self._file_weights = np.asarray(file_weights, dtype=float)
        for cat_index, members in self._files_by_category.items():
            if not members:
                continue
            global_w = self._file_weights[np.asarray(members)]
            if self.within_alpha is None:
                # Community attention mirrors global popularity: the
                # category's draw weights are the members' intrinsic
                # weights.  Because intrinsic ranks are spread over the
                # whole universe, this concentrates draws on the few
                # members that happen to rank high globally — the
                # configuration that best reproduces the paper's
                # rare-vs-popular clustering contrast.
                weights = global_w.copy()
                order = np.argsort(-global_w, kind="stable")
                local_rank = np.empty(len(members), dtype=float)
                local_rank[order] = np.arange(1, len(members) + 1)
            else:
                order = np.argsort(-global_w, kind="stable")
                local_rank = np.empty(len(members), dtype=float)
                local_rank[order] = np.arange(1, len(members) + 1)
                weights = local_rank**-self.within_alpha
            # The community's *active catalog*: files ranked beyond the
            # catalog cut are never drawn via this category (they remain
            # reachable through the global path only).
            cut = max(1, int(round(self.catalog_fraction * len(members))))
            weights[local_rank > cut] = 0.0
            self._cum_by_category[cat_index] = np.cumsum(weights)

    def files_in(self, category_index: int) -> List[int]:
        return list(self._files_by_category[category_index])

    def category_sizes(self) -> Dict[int, int]:
        return {c: len(f) for c, f in self._files_by_category.items()}

    def sample_file(self, category_index: int, rng: RngStream) -> Optional[int]:
        """Popularity-weighted draw within a category (``None`` if empty)."""
        members = self._files_by_category.get(category_index)
        if not members:
            return None
        cum = self._cum_by_category[category_index]
        x = rng.py.random() * float(cum[-1])
        pos = bisect.bisect_right(cum, x)
        pos = min(pos, len(members) - 1)
        return members[pos]

    def homed_in(self, country: str) -> List[Category]:
        return [c for c in self.categories if c.home_country == country]

    def international(self) -> List[Category]:
        return [c for c in self.categories if c.home_country is None]


@dataclass
class InterestModel:
    """Builds the category universe and assigns client interests.

    Parameters
    ----------
    num_categories:
        Total categories in the universe.
    international_fraction:
        Fraction of categories without a home country.
    category_alpha:
        Zipf exponent over category interest weights.
    geo_affinity:
        Probability a client's next interest pick is restricted to
        categories homed in its own country (falls back to the global pick
        when the country has none).
    mean_extra_interests:
        Interests per client are ``1 + Poisson(mean_extra_interests)``.
    within_category_alpha:
        Zipf exponent of draw weights *inside* a category (community
        attention concentration); ``None`` (default) uses the members'
        intrinsic global weights instead of a local Zipf.
    catalog_fraction:
        Fraction of a category's files that the community actively trades
        (the rest are only reachable via the global path).  Lower values
        concentrate community draws, thickening the popularity body.
    """

    num_categories: int = 300
    international_fraction: float = 0.3
    category_alpha: float = 0.4
    geo_affinity: float = 0.7
    mean_extra_interests: float = 1.5
    within_category_alpha: Optional[float] = None
    catalog_fraction: float = 1.0

    def __post_init__(self) -> None:
        check_positive("num_categories", self.num_categories)
        check_fraction("international_fraction", self.international_fraction)
        check_fraction("geo_affinity", self.geo_affinity)
        if self.mean_extra_interests < 0:
            raise ValueError("mean_extra_interests must be >= 0")
        if self.within_category_alpha is not None and self.within_category_alpha < 0:
            raise ValueError("within_category_alpha must be >= 0")
        if not 0.0 < self.catalog_fraction <= 1.0:
            raise ValueError("catalog_fraction must be in (0, 1]")

    def build_universe(
        self, country_sampler, rng: RngStream
    ) -> InterestUniverse:
        """Create categories; ``country_sampler(rng)`` draws home countries
        (typically ``CountryModel.sample_country``), so category homes follow
        the client country mix."""
        weights = zipf_weights(self.num_categories, self.category_alpha)
        categories: List[Category] = []
        for i in range(self.num_categories):
            if rng.py.random() < self.international_fraction:
                home: Optional[str] = None
            else:
                home = country_sampler(rng)
            categories.append(Category(index=i, home_country=home, weight=float(weights[i])))
        return InterestUniverse(
            categories,
            within_alpha=self.within_category_alpha,
            catalog_fraction=self.catalog_fraction,
        )

    def assign_interests(
        self, universe: InterestUniverse, country: str, rng: RngStream
    ) -> List[int]:
        """Pick this client's interest categories (distinct, >= 1)."""
        n_interests = 1 + poisson_draw(self.mean_extra_interests, rng)
        homed = universe.homed_in(country)
        all_cats = universe.categories
        picks: List[int] = []
        attempts = 0
        while len(picks) < n_interests and attempts < 20 * n_interests:
            attempts += 1
            pool = homed if (homed and rng.py.random() < self.geo_affinity) else all_cats
            cat = stable_choice(rng.py, pool, [c.weight for c in pool])
            if cat.index not in picks:
                picks.append(cat.index)
        return picks


def poisson_draw(mean: float, rng: RngStream) -> int:
    """Poisson draw via the python stream (keeps numpy stream untouched)."""
    if mean <= 0:
        return 0
    import math

    limit = math.exp(-mean)
    k = 0
    product = rng.py.random()
    while product > limit:
        k += 1
        product *= rng.py.random()
    return k
