"""Workload configuration.

One dataclass gathers every dial of the synthetic workload so that each
experiment can state its full parameterization in one place (and DESIGN.md's
per-experiment index can reference it).  Defaults are tuned so that the
generated trace reproduces the paper's marginal statistics at laptop scale:

===========================  =============================================
paper observation             default responsible parameters
===========================  =============================================
~74-84% free-riders           ``free_rider_fraction=0.74``
Zipf-like popularity, flat    ``file_alpha=0.7``, ``flat_head=5``
head (Fig 5)
40/50/10 size split, popular  :mod:`repro.workload.filesizes` head/tail mix
files mostly DIVX (Fig 6)
80% of sharers < 100 files,   ``cache_size_median=15``,
top 15% hold ~75% (Fig 7)     ``cache_size_sigma=1.8``
~5 new files/client/day       ``daily_adds_mean=5.0``
sudden-rise/slow-decay        ``num_shock_files=8``, ``shock_boost``,
popularity (Fig 8-10)         ``shock_half_life_days``
country/AS mix (Fig 4, T2)    :func:`repro.workload.geo.default_country_model`
semantic clustering           ``interest_loyalty=0.9`` + interest model
(Fig 13-21)
geographic clustering         ``InterestModel.geo_affinity=0.7``
(Fig 11-12)
===========================  =============================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
)
from repro.workload.filesizes import FileKindModel
from repro.workload.interests import InterestModel


@dataclass
class WorkloadConfig:
    """All parameters of the synthetic workload generator."""

    # ------------------------------------------------------------- scale
    num_clients: int = 2000
    num_files: int = 80000
    days: int = 56
    start_day: int = 343  # paper-style day-of-year numbering

    # ------------------------------------------------------- populations
    free_rider_fraction: float = 0.74
    duplicate_fraction: float = 0.05  # alias clients (same IP or UID)
    # Fraction of clients that join mid-trace (the network was growing
    # during the measurement; 0 keeps the population static).  Arrivals
    # are uniform over the first two thirds of the trace.
    arrival_fraction: float = 0.0

    # ---------------------------------------------------- file popularity
    file_alpha: float = 0.7  # Zipf exponent over intrinsic file weights
    flat_head: int = 5  # flat region at the top of the ranking
    preexisting_fraction: float = 0.6  # files born before the trace starts

    # -------------------------------------------------------- peer caches
    cache_size_median: float = 15.0
    cache_size_sigma: float = 1.8
    cache_size_max: int = 2000
    interest_loyalty: float = 0.9  # P(draw via a subscribed category)

    # ------------------------------------------------- mainstream content
    # A pool of globally popular, interest-free files (chart music,
    # blockbusters): every client requests them occasionally, which is what
    # pollutes semantic lists and gives Figures 19/20 their shape.
    mainstream_prob: float = 0.05  # P(a draw goes to the mainstream pool)
    mainstream_pool_size: int = 4000
    mainstream_alpha: float = 0.3
    mainstream_flat_head: int = 20

    # ------------------------------------------------------------- churn
    daily_adds_mean: float = 5.0  # Poisson mean of files added per day

    # -------------------------------------------------- popularity shocks
    num_shock_files: int = 8
    shock_boost: float = 30.0  # multiplicative weight boost at release
    shock_half_life_days: float = 6.0
    shock_trend_cap: float = 0.01  # max fraction of adds that chase trends

    # ------------------------------------------------- crawler observation
    obs_capacity_start: float = 0.80  # fraction of clients crawled, day 0
    obs_capacity_end: float = 0.45  # ... linearly decaying to this
    online_alpha: float = 5.0  # Beta parameters of per-client availability
    online_beta: float = 2.0
    outage_days: int = 0  # optional crawler outage at the start (Fig 2 dip)

    # ------------------------------------------------------------- models
    interest_model: InterestModel = field(default_factory=InterestModel)
    kind_model: FileKindModel = field(default_factory=FileKindModel)

    def __post_init__(self) -> None:
        check_positive("num_clients", self.num_clients)
        check_positive("num_files", self.num_files)
        check_positive("days", self.days)
        check_fraction("free_rider_fraction", self.free_rider_fraction)
        check_fraction("duplicate_fraction", self.duplicate_fraction)
        check_fraction("arrival_fraction", self.arrival_fraction)
        check_non_negative("file_alpha", self.file_alpha)
        check_non_negative("flat_head", self.flat_head)
        check_fraction("preexisting_fraction", self.preexisting_fraction)
        check_positive("cache_size_median", self.cache_size_median)
        check_positive("cache_size_sigma", self.cache_size_sigma)
        check_positive("cache_size_max", self.cache_size_max)
        check_fraction("interest_loyalty", self.interest_loyalty)
        check_fraction("mainstream_prob", self.mainstream_prob)
        check_positive("mainstream_pool_size", self.mainstream_pool_size)
        check_non_negative("mainstream_alpha", self.mainstream_alpha)
        check_non_negative("mainstream_flat_head", self.mainstream_flat_head)
        if self.mainstream_pool_size > self.num_files:
            raise ValueError("mainstream_pool_size cannot exceed num_files")
        check_non_negative("daily_adds_mean", self.daily_adds_mean)
        check_non_negative("num_shock_files", self.num_shock_files)
        check_non_negative("shock_boost", self.shock_boost)
        check_positive("shock_half_life_days", self.shock_half_life_days)
        check_fraction("shock_trend_cap", self.shock_trend_cap)
        check_fraction("obs_capacity_start", self.obs_capacity_start)
        check_fraction("obs_capacity_end", self.obs_capacity_end)
        check_positive("online_alpha", self.online_alpha)
        check_positive("online_beta", self.online_beta)
        check_non_negative("outage_days", self.outage_days)
        if self.num_shock_files > self.num_files:
            raise ValueError("num_shock_files cannot exceed num_files")

    @property
    def end_day(self) -> int:
        """First day *after* the trace (exclusive bound)."""
        return self.start_day + self.days

    def small(self) -> "WorkloadConfig":
        """A down-scaled copy for fast unit tests.

        Scale ratios (files per client, categories vs. sharers) track the
        defaults so the planted clustering survives the shrink."""
        import dataclasses

        return dataclasses.replace(
            self,
            num_clients=200,
            num_files=6000,
            days=20,
            num_shock_files=3,
            mainstream_pool_size=300,
            interest_model=dataclasses.replace(
                self.interest_model, num_categories=32
            ),
        )
