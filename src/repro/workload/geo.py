"""Geography: countries, autonomous systems and synthetic IP allocation.

The country mix follows Figure 4 of the paper (FR 29%, DE 28%, ES 16%,
US 5%, ...) and the AS mix within each major country follows Table 2
(Deutsche Telekom hosts 75% of German clients, France Telecom 51% of French
clients, and so on).  IPs are synthetic: each AS owns one or more /16-style
blocks and hands out addresses sequentially — all the analyses need is that
two clients in the same AS share a block prefix and that IP equality is
meaningful for duplicate filtering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.util.rng import RngStream, stable_choice
from repro.util.validation import check_fraction


@dataclass(frozen=True)
class AsInfo:
    """An autonomous system: number, human name, and national share."""

    asn: int
    name: str
    national_share: float

    def __post_init__(self) -> None:
        check_fraction("national_share", self.national_share)


@dataclass
class CountryModel:
    """Country weights plus per-country AS tables.

    ``country_weights`` need not sum to one; they are normalized on use.
    Every country must have at least one AS whose shares sum to <= 1; the
    remainder goes to a synthetic catch-all AS per country.
    """

    country_weights: Dict[str, float]
    as_tables: Dict[str, List[AsInfo]] = field(default_factory=dict)
    _catch_all_base: int = 64000

    def __post_init__(self) -> None:
        if not self.country_weights:
            raise ValueError("country model needs at least one country")
        for country, weight in self.country_weights.items():
            if weight < 0:
                raise ValueError(f"negative weight for {country}")
        # Give every country a catch-all AS covering the residual share.
        for idx, country in enumerate(sorted(self.country_weights)):
            table = list(self.as_tables.get(country, []))
            used = sum(a.national_share for a in table)
            if used > 1.0 + 1e-9:
                raise ValueError(
                    f"AS shares for {country} sum to {used:.3f} > 1"
                )
            if used < 1.0:
                table.append(
                    AsInfo(
                        asn=self._catch_all_base + idx,
                        name=f"{country}-other",
                        national_share=1.0 - used,
                    )
                )
            self.as_tables[country] = table

    def countries(self) -> List[str]:
        return sorted(self.country_weights)

    def sample_country(self, rng: RngStream) -> str:
        names = self.countries()
        weights = [self.country_weights[c] for c in names]
        return stable_choice(rng.py, names, weights)

    def sample_asn(self, country: str, rng: RngStream) -> int:
        table = self.as_tables[country]
        return stable_choice(
            rng.py, [a.asn for a in table], [a.national_share for a in table]
        )

    def as_name(self, asn: int) -> str:
        for table in self.as_tables.values():
            for info in table:
                if info.asn == asn:
                    return info.name
        return f"AS{asn}"


def default_country_model() -> CountryModel:
    """The paper's empirical country and AS mix (Figure 4 and Table 2).

    The 6% "Others" bucket of Figure 4 is split over a handful of further
    European countries; every percentage from the paper is kept verbatim.
    """
    country_weights = {
        "FR": 0.29,
        "DE": 0.28,
        "ES": 0.16,
        "US": 0.05,
        "IT": 0.03,
        "IL": 0.02,
        "GB": 0.02,
        "TW": 0.01,
        "PL": 0.01,
        "AT": 0.01,
        "NL": 0.01,
        # "Others" split (Figure 4 shows 6% but its named buckets only sum
        # to 95% after rounding; the residual 11% goes to further European
        # countries so the weights total exactly 1):
        "BE": 0.03,
        "CH": 0.02,
        "PT": 0.02,
        "SE": 0.02,
        "DK": 0.01,
        "FI": 0.01,
    }
    as_tables = {
        # Table 2: national shares of the top ASes.
        "DE": [AsInfo(3320, "Deutsche Telekom AG", 0.75)],
        "FR": [
            AsInfo(3215, "France Telecom Transpac", 0.51),
            AsInfo(12322, "Proxad ISP France", 0.24),
        ],
        "ES": [AsInfo(3352, "Telefonica Data Espana", 0.50)],
        "US": [AsInfo(1668, "AOL-primehost USA", 0.60)],
    }
    return CountryModel(country_weights=country_weights, as_tables=as_tables)


class IpAllocator:
    """Hands out unique synthetic IPv4 addresses, one block per AS.

    Each AS receives consecutive /16 blocks starting from ``10.0.0.0``-style
    space as needed; addresses inside a block are sequential.  The allocator
    also supports deliberately *reusing* an address (for injecting DHCP-style
    duplicate clients into a workload).
    """

    def __init__(self) -> None:
        self._next_block = 0
        self._blocks: Dict[int, List[int]] = {}
        self._next_host: Dict[int, int] = {}

    def _block_prefix(self, block_index: int) -> Tuple[int, int]:
        # Map block index into 10.x.y.0/16-ish space (wraps after 65536).
        hi = 10 + (block_index >> 8) % 200
        lo = block_index & 0xFF
        return hi, lo

    def allocate(self, asn: int) -> str:
        """A fresh address within the AS's current block."""
        if asn not in self._blocks:
            self._blocks[asn] = [self._next_block]
            self._next_host[asn] = 0
            self._next_block += 1
        host = self._next_host[asn]
        if host >= 65536:
            self._blocks[asn].append(self._next_block)
            self._next_block += 1
            self._next_host[asn] = 0
            host = 0
        block = self._blocks[asn][-1]
        self._next_host[asn] = host + 1
        b1, b2 = self._block_prefix(block)
        return f"{b1}.{b2}.{host >> 8}.{host & 0xFF}"

    def blocks_of(self, asn: int) -> Sequence[int]:
        return tuple(self._blocks.get(asn, ()))
