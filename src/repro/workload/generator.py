"""The synthetic workload generator.

Builds a file universe, a client population and a day-by-day cache churn
process, and records crawler-style snapshots into a
:class:`~repro.trace.model.Trace`.  See the package docstring for the model
and :class:`~repro.workload.config.WorkloadConfig` for the dials.

Two entry points:

- :meth:`SyntheticWorkloadGenerator.generate` — the full temporal trace
  (Figures 1-3, 5, 8-10, 13-17 need the day dimension);
- :meth:`SyntheticWorkloadGenerator.generate_static` — initial cache fills
  only, returned as a :class:`~repro.trace.model.StaticTrace` (the Section 5
  search simulations run on the static view, so skipping the churn loop
  makes those experiments much faster).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.trace.model import ClientMeta, FileMeta, StaticTrace, Trace
from repro.util.rng import RngStream
from repro.util.zipf import ZipfSampler
from repro.workload.config import WorkloadConfig
from repro.workload.geo import CountryModel, IpAllocator, default_country_model


class _LazyNumpy:
    """Defer the numpy import to first use (annotations are strings here).

    ``repro.workload`` sits on the CLI's help/import path (via
    ``repro.runtime.scale``); rebinding the module-global ``np`` on first
    attribute access keeps that baseline RSS numpy-free.
    """

    def __getattr__(self, name):
        import numpy

        globals()["np"] = numpy
        return getattr(numpy, name)


np = _LazyNumpy()
from repro.workload.interests import InterestUniverse, poisson_draw

_NICKNAME_POOL = [
    "darkstar", "muse", "pingu", "rider", "shadow", "neo", "zorro", "pixel",
    "atlas", "comet", "dexter", "echo", "falcon", "gizmo", "hydra", "indigo",
    "jolt", "karma", "luna", "mantis", "nova", "orbit", "pulse", "quark",
    "rogue", "sonic", "titan", "umbra", "vortex", "wraith", "xenon", "yeti",
]


@dataclass
class ShockEvent:
    """A popularity shock: a file released mid-trace with a boosted,
    exponentially decaying attraction weight (drives Figures 8-10)."""

    file_index: int
    release_day: int
    boost: float
    half_life_days: float

    def attraction(self, day: int) -> float:
        if day < self.release_day:
            return 0.0
        age = day - self.release_day
        return self.boost * 0.5 ** (age / self.half_life_days)


@dataclass
class ClientProfile:
    """Generator-internal view of one client."""

    meta: ClientMeta
    free_rider: bool
    interests: List[int]
    target_cache_size: int
    online_prob: float
    alias_of: Optional[int] = None  # client_id of the primary identity
    join_day: int = 0  # first day the client exists (absolute day number)


class SyntheticWorkloadGenerator:
    """Generates synthetic eDonkey traces.  Deterministic given (config, seed)."""

    def __init__(
        self,
        config: Optional[WorkloadConfig] = None,
        seed: int = 0,
        country_model: Optional[CountryModel] = None,
    ) -> None:
        self.config = config or WorkloadConfig()
        self.seed = seed
        self.rng = RngStream(seed, "workload")
        self.country_model = country_model or default_country_model()
        self._built = False
        # Populated by _build():
        self.files: List[FileMeta] = []
        self.file_weights: np.ndarray = np.empty(0)
        self.birth_days: np.ndarray = np.empty(0)
        self.universe: Optional[InterestUniverse] = None
        self.profiles: List[ClientProfile] = []
        self.shocks: List[ShockEvent] = []
        self._global_sampler: Optional[ZipfSampler] = None
        self._mainstream_sampler: Optional[ZipfSampler] = None
        self._born_order: np.ndarray = np.empty(0)  # file indices by birth day

    # ------------------------------------------------------------------
    # Universe construction

    def _build(self) -> None:
        if self._built:
            return
        self._build_files()
        self._build_clients()
        self._build_shocks()
        self._built = True

    def _build_files(self) -> None:
        cfg = self.config
        rng = self.rng.child("files")
        interest_model = cfg.interest_model
        self.universe = interest_model.build_universe(
            self.country_model.sample_country, rng.child("categories")
        )
        categories = self.universe.categories
        cat_weights = [c.weight for c in categories]
        cat_cum = np.cumsum(cat_weights)
        cat_total = float(cat_cum[-1])

        self._global_sampler = ZipfSampler(cfg.num_files, cfg.file_alpha, cfg.flat_head)
        # The mainstream pool is the global popular head: indices
        # [0, mainstream_pool_size), drawn with their own (flatter) Zipf.
        self._mainstream_sampler = ZipfSampler(
            cfg.mainstream_pool_size, cfg.mainstream_alpha, cfg.mainstream_flat_head
        )
        self.file_weights = np.array(
            [self._global_sampler.weight(i) for i in range(cfg.num_files)]
        )

        births = np.empty(cfg.num_files, dtype=int)
        files: List[FileMeta] = []
        size_rng = rng.child("sizes")
        for i in range(cfg.num_files):
            x = rng.py.random() * cat_total
            cat_index = int(np.searchsorted(cat_cum, x, side="right"))
            cat_index = min(cat_index, len(categories) - 1)
            kind, size = cfg.kind_model.sample(i, cfg.num_files, size_rng)
            if rng.py.random() < cfg.preexisting_fraction:
                births[i] = cfg.start_day - 1
            else:
                births[i] = rng.py.randrange(cfg.start_day, cfg.end_day)
            meta = FileMeta(
                file_id=f"f{i:07x}",
                size=size,
                kind=kind,
                category=cat_index,
                name=f"{kind}-{i}",
            )
            files.append(meta)
            self.universe.add_file(i, cat_index)
        self.files = files
        self.birth_days = births
        self.universe.finalize(self.file_weights)
        self._born_order = np.argsort(births, kind="stable")

    def _build_clients(self) -> None:
        cfg = self.config
        rng = self.rng.child("clients")
        allocator = IpAllocator()
        profiles: List[ClientProfile] = []
        next_id = 0
        n_primary = cfg.num_clients

        for _ in range(n_primary):
            profile = self._make_profile(next_id, rng, allocator)
            profiles.append(profile)
            next_id += 1

        # Duplicate/alias injection: some clients appear twice (DHCP churn or
        # software reinstall).  Aliases reuse the IP or the UID of a primary.
        dup_rng = self.rng.child("duplicates")
        aliases: List[ClientProfile] = []
        for primary in profiles:
            if dup_rng.py.random() >= cfg.duplicate_fraction:
                continue
            alias = self._make_profile(next_id, rng, allocator)
            next_id += 1
            if dup_rng.py.random() < 0.5:
                # Same IP, new UID (DHCP lease reuse).
                alias_meta = ClientMeta(
                    client_id=alias.meta.client_id,
                    uid=alias.meta.uid,
                    ip=primary.meta.ip,
                    country=primary.meta.country,
                    asn=primary.meta.asn,
                    nickname=alias.meta.nickname,
                )
            else:
                # Same UID, new IP (client moved).
                alias_meta = ClientMeta(
                    client_id=alias.meta.client_id,
                    uid=primary.meta.uid,
                    ip=alias.meta.ip,
                    country=primary.meta.country,
                    asn=primary.meta.asn,
                    nickname=primary.meta.nickname,
                )
            alias.meta = alias_meta
            alias.alias_of = primary.meta.client_id
            aliases.append(alias)
        self.profiles = profiles + aliases

    def _make_profile(
        self, client_id: int, rng: RngStream, allocator: IpAllocator
    ) -> ClientProfile:
        cfg = self.config
        if cfg.arrival_fraction > 0 and rng.py.random() < cfg.arrival_fraction:
            arrival_span = max(1, (cfg.days * 2) // 3)
            join_day = cfg.start_day + rng.py.randrange(arrival_span)
        else:
            join_day = cfg.start_day
        country = self.country_model.sample_country(rng)
        asn = self.country_model.sample_asn(country, rng)
        ip = allocator.allocate(asn)
        uid = f"u{rng.py.getrandbits(64):016x}"
        nickname = (
            rng.py.choice(_NICKNAME_POOL) + str(rng.py.randrange(100))
        )
        free_rider = rng.py.random() < cfg.free_rider_fraction
        if free_rider:
            interests: List[int] = []
            target = 0
        else:
            assert self.universe is not None
            interests = cfg.interest_model.assign_interests(
                self.universe, country, rng.child(f"interests[{client_id}]")
            )
            raw = rng.py.lognormvariate(
                math.log(cfg.cache_size_median), cfg.cache_size_sigma
            )
            target = int(min(max(raw, 1), cfg.cache_size_max))
        online_prob = rng.py.betavariate(cfg.online_alpha, cfg.online_beta)
        meta = ClientMeta(
            client_id=client_id,
            uid=uid,
            ip=ip,
            country=country,
            asn=asn,
            nickname=nickname,
        )
        return ClientProfile(
            meta=meta,
            free_rider=free_rider,
            interests=interests,
            target_cache_size=target,
            online_prob=online_prob,
            join_day=join_day,
        )

    def _build_shocks(self) -> None:
        cfg = self.config
        if cfg.num_shock_files == 0:
            self.shocks = []
            return
        rng = self.rng.child("shocks")
        # Shock files are drawn from the popular-ish head (they become the
        # most replicated files) and are re-labelled as born at release.
        candidates = list(range(min(cfg.num_files, max(50, cfg.flat_head * 5))))
        picks = rng.sample_without_replacement(candidates, cfg.num_shock_files)
        shocks: List[ShockEvent] = []
        # Stagger releases over the first two thirds of the trace so that the
        # trace captures both the rise and the decay (Figure 8).
        span = max(1, (cfg.days * 2) // 3)
        for i, file_index in enumerate(sorted(picks)):
            release = cfg.start_day + 1 + (i * span) // max(1, len(picks))
            self.birth_days[file_index] = release
            shocks.append(
                ShockEvent(
                    file_index=file_index,
                    release_day=release,
                    boost=cfg.shock_boost,
                    half_life_days=cfg.shock_half_life_days,
                )
            )
        self.shocks = shocks
        self._born_order = np.argsort(self.birth_days, kind="stable")

    # ------------------------------------------------------------------
    # File draws

    def _num_born(self, day: int) -> int:
        return int(np.searchsorted(self.birth_days[self._born_order], day, side="right"))

    def _fallback_draw(self, day: int, rng: RngStream) -> Optional[int]:
        """Uniform draw among files born by ``day`` (last-resort path)."""
        n_born = self._num_born(day)
        if n_born == 0:
            return None
        pos = rng.py.randrange(n_born)
        return int(self._born_order[pos])

    def _draw_file(
        self,
        profile: ClientProfile,
        day: int,
        rng: RngStream,
        exclude: Set[int],
        trend_prob: float,
        shock_cum: Optional[np.ndarray],
    ) -> Optional[int]:
        """Draw one file index for ``profile`` on ``day``.

        Order of preference: trending shock file (with probability
        ``trend_prob``), then a popularity-weighted draw inside one of the
        client's interest categories (probability ``interest_loyalty``),
        then a global popularity-weighted draw.  All paths reject files not
        yet born or already cached, with a uniform born-file fallback.
        """
        cfg = self.config
        assert self.universe is not None and self._global_sampler is not None

        if shock_cum is not None and trend_prob > 0 and rng.py.random() < trend_prob:
            x = rng.py.random() * float(shock_cum[-1])
            pos = int(np.searchsorted(shock_cum, x, side="right"))
            pos = min(pos, len(self.shocks) - 1)
            idx = self.shocks[pos].file_index
            if idx not in exclude and self.birth_days[idx] <= day:
                return idx
            # fall through to the normal paths on rejection

        for _ in range(40):
            draw = rng.py.random()
            if draw < cfg.mainstream_prob:
                idx = self._mainstream_sampler.sample(rng.py)
            elif profile.interests and rng.py.random() < cfg.interest_loyalty:
                cat = profile.interests[rng.py.randrange(len(profile.interests))]
                idx = self.universe.sample_file(cat, rng)
            else:
                idx = self._global_sampler.sample(rng.py)
            if idx is None:
                continue
            if idx in exclude or self.birth_days[idx] > day:
                continue
            return idx

        for _ in range(20):
            idx = self._fallback_draw(day, rng)
            if idx is None:
                return None
            if idx not in exclude:
                return idx
        return None

    def _shock_tables(self, day: int):
        """Per-day trend probability and cumulative shock weights."""
        if not self.shocks:
            return 0.0, None
        attractions = np.array([s.attraction(day) for s in self.shocks])
        total = float(attractions.sum())
        if total <= 0:
            return 0.0, None
        trend_prob = min(
            self.config.shock_trend_cap, total / (total + self.config.shock_boost)
        )
        return trend_prob, np.cumsum(attractions)

    # ------------------------------------------------------------------
    # Cache processes

    def _initial_fill(
        self, profile: ClientProfile, day: int, rng: RngStream
    ) -> Set[int]:
        cache: Set[int] = set()
        for _ in range(profile.target_cache_size):
            idx = self._draw_file(profile, day, rng, cache, 0.0, None)
            if idx is None:
                break
            cache.add(idx)
        return cache

    def _churn_day(
        self,
        profile: ClientProfile,
        cache: Set[int],
        day: int,
        rng: RngStream,
        trend_prob: float,
        shock_cum: Optional[np.ndarray],
    ) -> None:
        cfg = self.config
        n_add = poisson_draw(cfg.daily_adds_mean, rng)
        for _ in range(n_add):
            idx = self._draw_file(profile, day, rng, cache, trend_prob, shock_cum)
            if idx is None:
                break
            cache.add(idx)
        # Evict uniformly at random back down to the target size: the client
        # deletes old downloads to reclaim disk space.
        excess = len(cache) - profile.target_cache_size
        if excess > 0:
            victims = rng.sample_without_replacement(sorted(cache), excess)
            cache.difference_update(victims)

    def _observation_prob(self, profile: ClientProfile, day_offset: int) -> float:
        cfg = self.config
        if cfg.days <= 1:
            capacity = cfg.obs_capacity_start
        else:
            frac = day_offset / (cfg.days - 1)
            capacity = (
                cfg.obs_capacity_start
                + (cfg.obs_capacity_end - cfg.obs_capacity_start) * frac
            )
        prob = profile.online_prob * capacity
        # Optional crawler outage near the start (the paper's network
        # failure around day 345 produces the dip in Figure 2).
        if cfg.outage_days and 2 <= day_offset < 2 + cfg.outage_days:
            prob *= 0.25
        return prob

    # ------------------------------------------------------------------
    # Public facade (used by the eDonkey network substrate)

    def build(self) -> None:
        """Build the file universe, client profiles and shock schedule.

        Idempotent; called implicitly by :meth:`generate` and
        :meth:`generate_static`."""
        self._build()

    def initial_cache(self, profile: "ClientProfile", day: int, rng: RngStream) -> Set[int]:
        """Public wrapper: fill a fresh cache for ``profile`` as of ``day``."""
        self._build()
        return self._initial_fill(profile, day, rng)

    def churn_cache(
        self, profile: "ClientProfile", cache: Set[int], day: int, rng: RngStream
    ) -> None:
        """Public wrapper: apply one day of churn to ``cache`` in place."""
        self._build()
        trend_prob, shock_cum = self._shock_tables(day)
        self._churn_day(profile, cache, day, rng, trend_prob, shock_cum)

    def file_meta(self, index: int) -> FileMeta:
        """Metadata of file ``index`` (files are indexed 0..num_files)."""
        self._build()
        return self.files[index]

    def draw_request(
        self,
        profile: "ClientProfile",
        day: int,
        rng: RngStream,
        exclude: Set[int],
    ) -> Optional[int]:
        """Public wrapper: one interest-driven file request for ``profile``.

        Used by live client simulations to generate realistic queries
        (same draw paths as cache churn, including trend chasing)."""
        self._build()
        trend_prob, shock_cum = self._shock_tables(day)
        return self._draw_file(profile, day, rng, exclude, trend_prob, shock_cum)

    # ------------------------------------------------------------------
    # Public API

    def generate(self) -> Trace:
        """Run the full day-by-day process and return the temporal trace."""
        self._build()
        cfg = self.config
        trace = Trace(
            files={m.file_id: m for m in self.files},
            clients={p.meta.client_id: p.meta for p in self.profiles},
        )
        churn_rng = self.rng.child("churn")
        obs_rng = self.rng.child("observation")
        caches: Dict[int, Set[int]] = {}
        client_rngs: Dict[int, RngStream] = {
            p.meta.client_id: churn_rng.child(f"c[{p.meta.client_id}]")
            for p in self.profiles
        }

        for day_offset in range(cfg.days):
            day = cfg.start_day + day_offset
            trend_prob, shock_cum = self._shock_tables(day)
            for profile in self.profiles:
                cid = profile.meta.client_id
                if profile.free_rider or day < profile.join_day:
                    continue
                rng = client_rngs[cid]
                if cid not in caches:
                    caches[cid] = self._initial_fill(profile, day, rng)
                else:
                    self._churn_day(
                        profile, caches[cid], day, rng, trend_prob, shock_cum
                    )
            for profile in self.profiles:
                cid = profile.meta.client_id
                if day < profile.join_day:
                    continue
                if obs_rng.py.random() < self._observation_prob(profile, day_offset):
                    cache = caches.get(cid, set())
                    trace.observe(
                        day, cid, (self.files[i].file_id for i in cache)
                    )
        return trace

    def generate_static(self) -> StaticTrace:
        """Initial cache fills only (no churn loop), as a static trace.

        Births are ignored — every file is available — because the static
        view corresponds to "the union of everything the client ever
        shared".  Free-riders get empty caches.
        """
        self._build()
        fill_rng = self.rng.child("static-fill")
        last_day = self.config.end_day - 1
        caches: Dict[int, frozenset] = {}
        for profile in self.profiles:
            cid = profile.meta.client_id
            if profile.free_rider:
                caches[cid] = frozenset()
                continue
            rng = fill_rng.child(f"c[{cid}]")
            indices = self._initial_fill(profile, last_day, rng)
            caches[cid] = frozenset(self.files[i].file_id for i in indices)
        return StaticTrace(
            caches=caches,
            files={m.file_id: m for m in self.files},
            clients={p.meta.client_id: p.meta for p in self.profiles},
        )


def generate_trace(
    config: Optional[WorkloadConfig] = None, seed: int = 0
) -> Trace:
    """One-call helper: build a generator and produce the temporal trace."""
    return SyntheticWorkloadGenerator(config=config, seed=seed).generate()


def generate_static_trace(
    config: Optional[WorkloadConfig] = None, seed: int = 0
) -> StaticTrace:
    """One-call helper for the static (Section 5) workload."""
    return SyntheticWorkloadGenerator(config=config, seed=seed).generate_static()
