"""Synthetic eDonkey workload generation.

The paper's analyses run on a 56-day crawl trace that no longer exists (the
nickname-query crawl path it relied on was removed from eDonkey servers, as
the paper itself notes).  This package generates synthetic traces whose
*marginal statistics match everything the paper reports* — free-riding rate,
Zipf-like popularity, bimodal file sizes, country/AS mix, heavy-tailed
generosity, cache churn of ~5 files/client/day, popularity shocks — and
whose *clustering structure is planted through an explicit interest model*:

- every file belongs to an **interest category**;
- categories may have a **home country** (geographic affinity);
- non-free-riding clients subscribe to a few categories, preferring
  categories homed in their own country;
- cache fills and daily churn draw mostly from subscribed categories.

Semantic clustering (Section 4.2 / 5) and geographic clustering (Section
4.1) thus emerge from one mechanism — the hypothesis the paper itself
advances — and the downstream analyses must recover the planted structure.
"""

from repro.workload.config import WorkloadConfig
from repro.workload.filesizes import FileKindModel, sample_size
from repro.workload.generator import SyntheticWorkloadGenerator, generate_trace
from repro.workload.geo import CountryModel, IpAllocator, default_country_model
from repro.workload.interests import InterestModel, InterestUniverse

__all__ = [
    "CountryModel",
    "FileKindModel",
    "InterestModel",
    "InterestUniverse",
    "IpAllocator",
    "SyntheticWorkloadGenerator",
    "WorkloadConfig",
    "default_country_model",
    "generate_trace",
    "sample_size",
]
