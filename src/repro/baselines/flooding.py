"""Gnutella-style flooding search over a random unstructured overlay.

Peers form a random regular-ish graph; a query floods breadth-first with a
TTL, contacting every reached peer.  The figures of merit are the hit rate
and the number of peers contacted — for a file replicated on a fraction
``p`` of peers, roughly ``1/p`` contacts are needed (the paper's "143 peers
must be contacted" estimate for its most popular file at 0.7% spread).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.trace.model import ClientId, FileId, StaticTrace
from repro.util.rng import RngStream
from repro.util.validation import check_positive


@dataclass
class FloodingConfig:
    """Overlay degree and flood TTL."""

    degree: int = 4
    ttl: int = 5

    def __post_init__(self) -> None:
        check_positive("degree", self.degree)
        check_positive("ttl", self.ttl)


def build_overlay(
    peers: List[ClientId], degree: int, rng: RngStream
) -> Dict[ClientId, List[ClientId]]:
    """A connected random overlay with average degree ~``degree``.

    Construction: a random cycle (guarantees connectivity) plus random
    chords until the average degree target is met.  Self-loops and parallel
    edges are skipped.
    """
    if len(peers) < 2:
        return {p: [] for p in peers}
    order = rng.shuffled(peers)
    adjacency: Dict[ClientId, Set[ClientId]] = {p: set() for p in peers}
    n = len(order)
    for i, peer in enumerate(order):
        other = order[(i + 1) % n]
        adjacency[peer].add(other)
        adjacency[other].add(peer)
    target_edges = max(n, (degree * n) // 2)
    current_edges = n  # the cycle
    attempts = 0
    while current_edges < target_edges and attempts < 20 * target_edges:
        attempts += 1
        a = order[rng.py.randrange(n)]
        b = order[rng.py.randrange(n)]
        if a == b or b in adjacency[a]:
            continue
        adjacency[a].add(b)
        adjacency[b].add(a)
        current_edges += 1
    return {p: sorted(neigh) for p, neigh in adjacency.items()}


@dataclass
class FloodResult:
    hit: bool
    contacted: int
    hops_to_hit: Optional[int]


class FloodingSearch:
    """Flood queries over a fixed overlay built from a static trace.

    By default the membership probes run on the trace's compiled form:
    the queried file id is interned to an int once per search, and each
    visited peer's cache is a frozen set of ints.  ``use_compiled=False``
    probes the original string caches; results are identical (only the
    key representation changes — the BFS order and the overlay RNG never
    see file ids).
    """

    def __init__(
        self,
        trace: StaticTrace,
        config: Optional[FloodingConfig] = None,
        seed: int = 0,
        use_compiled: bool = True,
    ) -> None:
        self.trace = trace
        self.config = config or FloodingConfig()
        self.rng = RngStream(seed, "flooding")
        self.peers = sorted(trace.caches)
        self.overlay = build_overlay(self.peers, self.config.degree, self.rng)
        if use_compiled:
            compiled = trace.compiled()
            self._file_index: Optional[Dict[FileId, int]] = compiled.file_index
            row = compiled.client_row
            sets = compiled.cache_sets
            self._lookup: Dict[ClientId, frozenset] = {
                peer: sets[row[peer]] for peer in self.peers
            }
        else:
            self._file_index = None
            self._lookup = trace.caches

    def _file_key(self, file_id: FileId):
        """Interned probe key (None — matching nothing — if unknown)."""
        if self._file_index is None:
            return file_id
        return self._file_index.get(file_id)

    def search(self, start: ClientId, file_id: FileId) -> FloodResult:
        """BFS flood from ``start`` with the configured TTL.

        Every visited peer (except the requester) counts as contacted,
        whether or not it holds the file — flooding does not stop early,
        but we do report the hop at which the first replica was found.
        """
        lookup = self._lookup
        file_key = self._file_key(file_id)
        visited: Set[ClientId] = {start}
        queue: deque = deque([(start, 0)])
        contacted = 0
        hops_to_hit: Optional[int] = None
        while queue:
            peer, depth = queue.popleft()
            if depth >= self.config.ttl:
                continue
            for neighbour in self.overlay.get(peer, ()):
                if neighbour in visited:
                    continue
                visited.add(neighbour)
                contacted += 1
                if hops_to_hit is None and file_key in lookup.get(
                    neighbour, frozenset()
                ):
                    hops_to_hit = depth + 1
                queue.append((neighbour, depth + 1))
        return FloodResult(
            hit=hops_to_hit is not None,
            contacted=contacted,
            hops_to_hit=hops_to_hit,
        )

    def contacts_until_hit(
        self, start: ClientId, file_id: FileId, max_contacts: int = 100_000
    ) -> Tuple[bool, int]:
        """Contacts made until the first replica is reached (expanding-ring
        style accounting: the flood is cut as soon as the file is found)."""
        lookup = self._lookup
        file_key = self._file_key(file_id)
        visited: Set[ClientId] = {start}
        queue: deque = deque([(start, 0)])
        contacted = 0
        while queue:
            peer, depth = queue.popleft()
            for neighbour in self.overlay.get(peer, ()):
                if neighbour in visited:
                    continue
                visited.add(neighbour)
                contacted += 1
                if file_key in lookup.get(neighbour, frozenset()):
                    return True, contacted
                if contacted >= max_contacts:
                    return False, contacted
                queue.append((neighbour, depth + 1))
        return False, contacted


def expected_contacts(spread_fraction: float) -> float:
    """The paper's back-of-envelope: 1 / spread for random probing."""
    if not 0 < spread_fraction <= 1:
        raise ValueError("spread fraction must be in (0, 1]")
    return 1.0 / spread_fraction


def measure_flooding(
    trace: StaticTrace,
    num_queries: int = 200,
    config: Optional[FloodingConfig] = None,
    seed: int = 0,
    use_compiled: bool = True,
) -> Dict[str, float]:
    """Monte-Carlo estimate of flooding cost on a static trace.

    Queries pick a random requester and a random file held by someone else,
    then measure contacts-until-hit.  Returns hit rate and mean contacts.
    """
    search = FloodingSearch(
        trace, config=config, seed=seed, use_compiled=use_compiled
    )
    rng = RngStream(seed, "flooding-queries")
    sharers = [c for c, cache in trace.caches.items() if cache]
    if not sharers:
        raise ValueError("trace has no sharers")
    replica_slots: List[Tuple[ClientId, FileId]] = [
        (peer, fid) for peer in sharers for fid in sorted(trace.caches[peer])
    ]
    hits = 0
    total_contacts = 0
    for _ in range(num_queries):
        owner, file_id = replica_slots[rng.py.randrange(len(replica_slots))]
        requester = search.peers[rng.py.randrange(len(search.peers))]
        if requester == owner:
            continue
        ok, contacts = search.contacts_until_hit(requester, file_id)
        hits += int(ok)
        total_contacts += contacts
    return {
        "queries": float(num_queries),
        "hit_rate": hits / num_queries,
        "mean_contacts": total_contacts / num_queries,
    }
