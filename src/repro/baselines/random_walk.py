"""Random-walk search over the same unstructured overlay as flooding.

Random walks trade latency for load: a walk contacts one peer per step,
so its cost is bounded by the walk length instead of exploding with the
flood radius.  Included as the standard alternative baseline for
unstructured search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.baselines.flooding import build_overlay
from repro.trace.model import ClientId, FileId, StaticTrace
from repro.util.rng import RngStream
from repro.util.validation import check_positive


@dataclass
class RandomWalkConfig:
    """Overlay degree, number of parallel walkers and per-walker steps."""

    degree: int = 4
    walkers: int = 4
    steps: int = 64

    def __post_init__(self) -> None:
        check_positive("degree", self.degree)
        check_positive("walkers", self.walkers)
        check_positive("steps", self.steps)


@dataclass
class WalkResult:
    hit: bool
    contacted: int


class RandomWalkSearch:
    """k parallel random walks with step budgets.

    Membership probes run on the compiled trace by default (interned
    file key against frozen int sets); ``use_compiled=False`` probes the
    original string caches.  Walk RNG draws never touch file ids, so
    results are identical either way.
    """

    def __init__(
        self,
        trace: StaticTrace,
        config: Optional[RandomWalkConfig] = None,
        seed: int = 0,
        use_compiled: bool = True,
    ) -> None:
        self.trace = trace
        self.config = config or RandomWalkConfig()
        self.rng = RngStream(seed, "random-walk")
        self.peers = sorted(trace.caches)
        self.overlay = build_overlay(self.peers, self.config.degree, self.rng)
        if use_compiled:
            compiled = trace.compiled()
            row = compiled.client_row
            sets = compiled.cache_sets
            self._file_index = compiled.file_index
            self._lookup: Dict[ClientId, frozenset] = {
                peer: sets[row[peer]] for peer in self.peers
            }
        else:
            self._file_index = None
            self._lookup = trace.caches

    def search(self, start: ClientId, file_id: FileId) -> WalkResult:
        lookup = self._lookup
        if self._file_index is None:
            file_key = file_id
        else:
            file_key = self._file_index.get(file_id)
        contacted = 0
        for walker in range(self.config.walkers):
            walk_rng = self.rng.child(f"walk[{start}/{walker}]")
            current = start
            for _ in range(self.config.steps):
                neighbours = self.overlay.get(current, [])
                if not neighbours:
                    break
                current = neighbours[walk_rng.py.randrange(len(neighbours))]
                contacted += 1
                if file_key in lookup.get(current, frozenset()):
                    return WalkResult(hit=True, contacted=contacted)
        return WalkResult(hit=False, contacted=contacted)


def measure_random_walk(
    trace: StaticTrace,
    num_queries: int = 200,
    config: Optional[RandomWalkConfig] = None,
    seed: int = 0,
    use_compiled: bool = True,
) -> Dict[str, float]:
    """Monte-Carlo hit rate / contact cost of random-walk search."""
    search = RandomWalkSearch(
        trace, config=config, seed=seed, use_compiled=use_compiled
    )
    rng = RngStream(seed, "walk-queries")
    replica_slots: list[Tuple[ClientId, FileId]] = [
        (peer, fid)
        for peer, cache in trace.caches.items()
        if cache
        for fid in sorted(cache)
    ]
    if not replica_slots:
        raise ValueError("trace has no replicas")
    hits = 0
    total_contacts = 0
    for _ in range(num_queries):
        owner, file_id = replica_slots[rng.py.randrange(len(replica_slots))]
        requester = search.peers[rng.py.randrange(len(search.peers))]
        if requester == owner:
            continue
        result = search.search(requester, file_id)
        hits += int(result.hit)
        total_contacts += result.contacted
    return {
        "queries": float(num_queries),
        "hit_rate": hits / num_queries,
        "mean_contacts": total_contacts / num_queries,
    }
