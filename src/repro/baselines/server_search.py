"""Centralized server lookup — eDonkey's own first tier, as a baseline.

A central index maps every file to its current sources, so any file with at
least one source is found with a single query.  It is the upper bound on
hit rate (and the thing the semantic-neighbour design tries to make
unnecessary); its cost model is one message to the server per request plus
the server's index memory.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.trace.model import ClientId, FileId, StaticTrace


@dataclass
class LookupStats:
    queries: int = 0
    hits: int = 0
    index_entries: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.queries if self.queries else 0.0


class ServerLookup:
    """A central file -> sources index with publish/unpublish."""

    def __init__(self) -> None:
        self._index: Dict[FileId, Set[ClientId]] = defaultdict(set)
        self.stats = LookupStats()

    @classmethod
    def from_trace(cls, trace: StaticTrace) -> "ServerLookup":
        lookup = cls()
        for client_id, cache in trace.caches.items():
            for fid in cache:
                lookup.publish(client_id, fid)
        return lookup

    def publish(self, client_id: ClientId, file_id: FileId) -> None:
        self._index[file_id].add(client_id)
        self.stats.index_entries += 1

    def unpublish(self, client_id: ClientId, file_id: FileId) -> None:
        sources = self._index.get(file_id)
        if sources is not None:
            sources.discard(client_id)
            if not sources:
                del self._index[file_id]

    def lookup(self, file_id: FileId, exclude: Optional[ClientId] = None) -> List[ClientId]:
        """All current sources of ``file_id`` (one round-trip)."""
        self.stats.queries += 1
        sources = [
            c for c in sorted(self._index.get(file_id, set())) if c != exclude
        ]
        if sources:
            self.stats.hits += 1
        return sources

    def index_size(self) -> int:
        """Number of live (file, source) entries — the server's memory cost."""
        return sum(len(s) for s in self._index.values())
