"""Centralized server lookup — eDonkey's own first tier, as a baseline.

A central index maps every file to its current sources, so any file with at
least one source is found with a single query.  It is the upper bound on
hit rate (and the thing the semantic-neighbour design tries to make
unnecessary); its cost model is one message to the server per request plus
the server's index memory.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.trace.model import ClientId, FileId, StaticTrace


@dataclass
class LookupStats:
    queries: int = 0
    hits: int = 0
    index_entries: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.queries if self.queries else 0.0


class ServerLookup:
    """A central file -> sources index with publish/unpublish.

    The public API speaks string file ids.  Built from a trace with
    ``use_compiled`` (the default), the internal index is keyed by the
    trace's interned file ints — ``_key`` translates at the boundary, and
    ids unknown to the intern table (published later) fall back to their
    string key — so bulk construction walks the compiled inverted index
    instead of hashing every (client, file-string) pair.
    """

    def __init__(self) -> None:
        self._index: Dict[FileId, Set[ClientId]] = defaultdict(set)
        self._file_index: Optional[Dict[FileId, int]] = None
        self.stats = LookupStats()

    @classmethod
    def from_trace(
        cls, trace: StaticTrace, use_compiled: bool = True
    ) -> "ServerLookup":
        lookup = cls()
        if use_compiled:
            compiled = trace.compiled()
            lookup._file_index = compiled.file_index
            for idx in range(compiled.num_files):
                rows = compiled.sharer_rows_of(idx)
                if len(rows):
                    lookup._index[idx] = set(compiled.client_ids[r] for r in rows)
            lookup.stats.index_entries += compiled.total_replicas
            return lookup
        for client_id, cache in trace.caches.items():
            for fid in cache:
                lookup.publish(client_id, fid)
        return lookup

    def _key(self, file_id: FileId):
        """Internal index key for ``file_id`` (interned when known)."""
        if self._file_index is None:
            return file_id
        return self._file_index.get(file_id, file_id)

    def publish(self, client_id: ClientId, file_id: FileId) -> None:
        self._index[self._key(file_id)].add(client_id)
        self.stats.index_entries += 1

    def unpublish(self, client_id: ClientId, file_id: FileId) -> None:
        key = self._key(file_id)
        sources = self._index.get(key)
        if sources is not None:
            sources.discard(client_id)
            if not sources:
                del self._index[key]

    def lookup(self, file_id: FileId, exclude: Optional[ClientId] = None) -> List[ClientId]:
        """All current sources of ``file_id`` (one round-trip)."""
        self.stats.queries += 1
        sources = [
            c
            for c in sorted(self._index.get(self._key(file_id), set()))
            if c != exclude
        ]
        if sources:
            self.stats.hits += 1
        return sources

    def index_size(self) -> int:
        """Number of live (file, source) entries — the server's memory cost."""
        return sum(len(s) for s in self._index.values())
