"""Baseline search mechanisms the paper compares against (implicitly or
explicitly): Gnutella-style flooding over an unstructured overlay, random
walks, and centralized server lookup (eDonkey's own first tier).

Section 3 of the paper derives that with the most popular file held by
under 0.7% of peers, a flooding search must contact ~143 peers on average;
:mod:`repro.baselines.flooding` reproduces that estimate empirically, and
the benchmarks compare flooding/random-walk contact counts against semantic
neighbour lists.
"""

from repro.baselines.flooding import (
    FloodingConfig,
    FloodingSearch,
    build_overlay,
    expected_contacts,
)
from repro.baselines.random_walk import RandomWalkConfig, RandomWalkSearch
from repro.baselines.server_search import ServerLookup

__all__ = [
    "FloodingConfig",
    "FloodingSearch",
    "RandomWalkConfig",
    "RandomWalkSearch",
    "ServerLookup",
    "build_overlay",
    "expected_contacts",
]
