"""The eDonkey (ed2k) file hashing scheme.

Files are divided into 9.5 MB blocks (9,728,000 bytes); each block gets an
MD4 checksum, and the file identifier is the MD4 of the concatenation of all
partial checksums.  A single-block file's identifier is simply the MD4 of
its content (the historical ed2k convention: the root hash is only computed
when there is more than one block digest to combine).

Checksums let clients verify blocks independently, which is what enables
eDonkey's *partial sharing*: a file is shared as soon as one block has been
downloaded and verified.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.edonkey.md4 import MD4, md4_digest

#: 9.5 MB, the eDonkey block ("chunk") size.
BLOCK_SIZE = 9_728_000


def num_blocks(file_size: int) -> int:
    """Number of blocks for a file of ``file_size`` bytes (min 1)."""
    if file_size < 0:
        raise ValueError(f"file size must be >= 0, got {file_size}")
    if file_size == 0:
        return 1
    return (file_size + BLOCK_SIZE - 1) // BLOCK_SIZE


def block_hashes(data: bytes) -> List[bytes]:
    """MD4 digests of each 9.5 MB block of ``data``."""
    if len(data) == 0:
        return [md4_digest(b"")]
    return [
        md4_digest(data[offset : offset + BLOCK_SIZE])
        for offset in range(0, len(data), BLOCK_SIZE)
    ]


def root_hash(partials: Sequence[bytes]) -> bytes:
    """Combine partial block digests into the ed2k file identifier."""
    if not partials:
        raise ValueError("need at least one block digest")
    for digest in partials:
        if len(digest) != 16:
            raise ValueError("block digests must be 16 bytes (MD4)")
    if len(partials) == 1:
        return bytes(partials[0])
    combined = MD4()
    for digest in partials:
        combined.update(digest)
    return combined.digest()


def ed2k_hash(data: bytes) -> str:
    """The ed2k identifier (hex) of an in-memory file."""
    return root_hash(block_hashes(data)).hex()


def ed2k_hash_stream(chunks: Iterable[bytes]) -> str:
    """The ed2k identifier of a file supplied as an iterable of chunks.

    Chunks may have arbitrary sizes; they are re-blocked internally, so this
    works for streaming large files without materializing them.
    """
    partials: List[bytes] = []
    current = MD4()
    current_len = 0
    total_len = 0
    for chunk in chunks:
        total_len += len(chunk)
        view = memoryview(chunk)
        while len(view) > 0:
            room = BLOCK_SIZE - current_len
            take = min(room, len(view))
            current.update(bytes(view[:take]))
            current_len += take
            view = view[take:]
            if current_len == BLOCK_SIZE:
                partials.append(current.digest())
                current = MD4()
                current_len = 0
    # Trailing partial block (or the empty file's single empty block).  Note
    # the ed2k quirk: a file of exactly k*BLOCK_SIZE bytes has k+1 blocks,
    # the last being empty -- we follow the simpler historical variant where
    # the trailing empty block is included only when the file is empty or
    # ends mid-block, matching :func:`block_hashes` above.
    if current_len > 0 or total_len == 0:
        partials.append(current.digest())
    return root_hash(partials).hex()


def synthetic_file_id(token: str) -> str:
    """A stable ed2k-style identifier for a *synthetic* file.

    The simulator does not materialize 700 MB of bytes per fake movie; it
    derives the identifier by hashing the file's token (name + size) with
    the same MD4 primitive, so identifiers look and distribute like real
    ones while costing O(len(token)).
    """
    return md4_digest(token.encode("utf-8")).hex()
