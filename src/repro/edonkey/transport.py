"""The transport seam of the message plane.

A :class:`Transport` is the routing surface a client consumes: the same
``to_server`` / ``to_client`` / ``callback_to_client`` trio the
simulated :class:`~repro.edonkey.network.Network` has always exposed —
which is why :class:`~repro.edonkey.client.Client` works against any
implementation unchanged.  Two implementations live here:

- :class:`SimTransport` — a thin adapter over an in-memory ``Network``.
  It adds no logic and draws no randomness, so a seeded simulation run
  through it is byte-identical to one that passes the network directly
  (pinned by ``tests/service/test_transport.py``).
- :class:`TcpTransport` — the asyncio-streams client side of service
  mode, speaking ``repro.wire/1`` frames to a live ``repro serve``
  process.  Its surface is the async mirror of the trio: requests are
  sequence-tagged so several can be in flight on one connection, and a
  reply suppressed by the server's fault injector surfaces as ``None``
  after the timeout — exactly how the simulated network reports a
  dropped or timed-out message.

Client-to-client messages have no live path: in service mode only the
index server is reachable, and browsing is server-mediated via
:class:`~repro.edonkey.messages.BrowseUser`.  ``TcpTransport.to_client``
therefore raises :class:`TransportError` rather than silently failing.

``asyncio`` is imported lazily inside ``TcpTransport`` methods so that
importing this module (which the CLI's cold-import gate does) keeps the
baseline asyncio-free.
"""

from __future__ import annotations

from typing import Optional


class TransportError(RuntimeError):
    """A transport-level failure: cannot connect, closed, or unroutable."""


class Transport:
    """Minimal message-routing surface consumed by clients."""

    def to_server(self, server_id: int, message):
        """Deliver to a server; returns the reply or ``None``."""
        raise NotImplementedError

    def to_client(self, client_id: int, message):
        """Deliver to a client over a direct connection."""
        raise NotImplementedError

    def callback_to_client(self, client_id: int, message):
        """Deliver via the server-forced callback path."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any underlying connection (no-op by default)."""


class SimTransport(Transport):
    """Adapter over the in-memory simulated network.

    Pure delegation: every call forwards to the wrapped network's
    method of the same name, so traffic accounting, fault injection and
    RNG draws are exactly those of a direct-network run.
    """

    def __init__(self, network) -> None:
        self.network = network

    def to_server(self, server_id: int, message):
        return self.network.to_server(server_id, message)

    def to_client(self, client_id: int, message):
        return self.network.to_client(client_id, message)

    def callback_to_client(self, client_id: int, message):
        return self.network.callback_to_client(client_id, message)


class TcpTransport(Transport):
    """Asyncio-streams transport speaking framed ``repro.wire/1``.

    Open with :meth:`open`, issue requests with :meth:`request` (or the
    async ``to_server`` mirror), close with :meth:`aclose`.  A single
    background reader task resolves in-flight request futures by the
    sequence number the server echoes, so callers may pipeline freely.
    """

    def __init__(self, reader, writer) -> None:
        import asyncio

        self._reader = reader
        self._writer = writer
        self._next_seq = 0
        self._pending = {}  # seq -> Future
        self._closed = False
        self._error: Optional[BaseException] = None
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )

    @classmethod
    async def open(
        cls,
        host: str,
        port: int,
        *,
        retries: int = 0,
        retry_delay_s: float = 0.2,
    ) -> "TcpTransport":
        """Connect to a live index service.

        ``retries`` covers the serve-process startup race in scripted
        runs: each failed attempt sleeps ``retry_delay_s`` and tries
        again before giving up with :class:`TransportError`.
        """
        import asyncio

        last: Optional[BaseException] = None
        for attempt in range(retries + 1):
            try:
                reader, writer = await asyncio.open_connection(host, port)
                return cls(reader, writer)
            except OSError as exc:
                last = exc
                if attempt < retries:
                    await asyncio.sleep(retry_delay_s)
        raise TransportError(f"cannot connect to {host}:{port}: {last}")

    async def _read_loop(self) -> None:
        from repro.edonkey.wire import WireError, read_frame

        try:
            while True:
                frame = await read_frame(self._reader)
                if frame is None:
                    break
                message, seq = frame
                future = self._pending.pop(seq, None)
                if future is not None and not future.done():
                    future.set_result(message)
        except (WireError, ConnectionError, OSError) as exc:
            self._error = exc
        failure = self._error or TransportError("connection closed")
        for future in self._pending.values():
            if not future.done():
                future.set_exception(failure)
        self._pending.clear()

    async def request(self, message, timeout: Optional[float] = None):
        """Send one request; await its reply.

        Returns ``None`` when no reply arrives within ``timeout`` —
        matching the simulated network's convention for dropped and
        timed-out messages.  Wire-protocol violations from the peer
        (:class:`~repro.edonkey.wire.WireError`) propagate to every
        outstanding request.
        """
        import asyncio

        if self._closed:
            raise TransportError("transport is closed")
        if self._error is not None:
            raise self._error
        seq = self._next_seq
        self._next_seq += 1
        future = asyncio.get_running_loop().create_future()
        self._pending[seq] = future

        from repro.edonkey.wire import write_frame

        try:
            await write_frame(self._writer, message, seq=seq)
            if timeout is None:
                return await future
            return await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            return None
        except ConnectionError as exc:
            raise self._error or TransportError(str(exc)) from exc
        finally:
            self._pending.pop(seq, None)

    # Async mirror of the Transport trio -------------------------------

    async def to_server(self, server_id: int, message):
        """The single live endpoint answers regardless of ``server_id``."""
        return await self.request(message)

    async def to_client(self, client_id: int, message):
        raise TransportError(
            "client-to-client messages are server-mediated in service "
            "mode: send BrowseUser to the server instead"
        )

    async def callback_to_client(self, client_id: int, message):
        raise TransportError(
            "callbacks are server-mediated in service mode"
        )

    async def aclose(self) -> None:
        """Close the connection and stop the reader task."""
        if self._closed:
            return
        self._closed = True
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        self._reader_task.cancel()
        try:
            await self._reader_task
        except BaseException:
            pass

    def close(self) -> None:
        """Best-effort sync close; prefer :meth:`aclose` in async code."""
        self._closed = True
        self._writer.close()
        self._reader_task.cancel()
