"""The eDonkey crawler (Section 2.2), rebuilt on the simulated network.

The crawler is initialized with a list of servers.  It connects to all of
them, retrieves new server lists, and builds its user list by sweeping
``query-users`` nickname searches from ``"aaa"`` to ``"zzz"`` (servers cap
replies at 200 users, so the sweep is what makes broad discovery possible).
The list is filtered to *reachable* (non-firewalled) clients, which another
module then browses every day, retrieving the description of all files in
each cache.  Successful browses become trace snapshots.

Fidelity notes mirrored from the paper:

- servers that do not implement ``query-users`` return nothing — if no
  crawled server supports it, the crawl legitimately collapses (that is why
  the authors say such a trace could no longer be collected);
- clients that disable browsing yield no snapshot;
- a daily browse budget models the crawler's bandwidth constraints — the
  declining budget reproduces Figure 1's decline in clients scanned daily.
"""

from __future__ import annotations

import itertools
import os
import string
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional, Set, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.checkpoint import Checkpointer
    from repro.runtime.context import RunContext

from repro.edonkey.messages import BrowseRequest, QueryUsers, ServerListRequest
from repro.edonkey.network import Network
from repro.faults import RetryPolicy
from repro.obs import Observer
from repro.trace.model import ClientMeta, FileMeta, Trace
from repro.util.rng import RngStream
from repro.util.validation import check_positive

#: Checkpoint kind tag for crawler snapshots.
CRAWL_CHECKPOINT_KIND = "crawl"


@dataclass
class CrawlerConfig:
    """Crawler behaviour.

    ``query_length`` is the nickname-substring length of the sweep (3 in the
    paper: ``aaa`` .. ``zzz``).  ``browse_budget_start``/``_end`` bound the
    number of browse attempts per day, decaying linearly (the paper's
    tightening bandwidth constraints).  ``days`` is the crawl duration.
    """

    days: int = 56
    query_length: int = 3
    browse_budget_start: int = 10_000
    browse_budget_end: int = 5_000
    refresh_users_every: int = 1  # days between nickname sweeps
    #: Retry policy for unanswered browses and nickname queries on a faulty
    #: network.  ``None`` disables retries (every failure is final, the
    #: pre-fault-layer behaviour).  Retries consume browse budget and their
    #: backoff is accounted in simulated seconds, never slept.
    retry: Optional[RetryPolicy] = None

    def __post_init__(self) -> None:
        check_positive("days", self.days)
        check_positive("query_length", self.query_length)
        check_positive("browse_budget_start", self.browse_budget_start)
        check_positive("browse_budget_end", self.browse_budget_end)
        check_positive("refresh_users_every", self.refresh_users_every)
        if self.browse_budget_end > self.browse_budget_start:
            raise ValueError(
                "browse_budget_end must be <= browse_budget_start "
                f"(the daily browse budget decays over the crawl), got "
                f"end={self.browse_budget_end} > start={self.browse_budget_start}"
            )

    def budget_on(self, day_offset: int) -> int:
        if self.days <= 1:
            return self.browse_budget_start
        frac = day_offset / (self.days - 1)
        return int(
            self.browse_budget_start
            + (self.browse_budget_end - self.browse_budget_start) * frac
        )


@dataclass
class CrawlStats:
    """Bookkeeping about the crawl itself (not the trace)."""

    nickname_queries: int = 0
    users_discovered: int = 0
    firewalled_skipped: int = 0
    browse_attempts: int = 0
    browse_refused: int = 0
    browse_succeeded: int = 0
    servers_without_query_users: int = 0
    browse_retries: int = 0
    query_retries: int = 0
    backoff_seconds: float = 0.0  # simulated time spent in backoff

    @property
    def browse_success_rate(self) -> float:
        if self.browse_attempts == 0:
            return 0.0
        return self.browse_succeeded / self.browse_attempts

    def as_dict(self) -> Dict[str, float]:
        """Flat mapping for the observability counters."""
        return {
            "nickname_queries": float(self.nickname_queries),
            "users_discovered": float(self.users_discovered),
            "firewalled_skipped": float(self.firewalled_skipped),
            "browse_attempts": float(self.browse_attempts),
            "browse_refused": float(self.browse_refused),
            "browse_succeeded": float(self.browse_succeeded),
            "servers_without_query_users": float(
                self.servers_without_query_users
            ),
            "browse_retries": float(self.browse_retries),
            "query_retries": float(self.query_retries),
            "backoff_seconds": self.backoff_seconds,
        }


class Crawler:
    """Crawls a :class:`~repro.edonkey.network.Network` into a Trace."""

    def __init__(
        self,
        network: Network,
        config: Optional[CrawlerConfig] = None,
        seed: Optional[int] = None,
        obs: Optional[Observer] = None,
        ctx: Optional["RunContext"] = None,
        store_dir: Optional[Union[str, "os.PathLike[str]"]] = None,
        stream: bool = False,
    ) -> None:
        if ctx is not None:
            if seed is None:
                seed = ctx.seed
            if obs is None:
                obs = ctx.obs
        if seed is None:
            seed = 0
        self.network = network
        self.config = config or CrawlerConfig()
        self.rng = RngStream(seed, "crawler")
        self.stats = CrawlStats()
        self.obs = obs if obs is not None else network.obs
        self.known_servers: Set[int] = set(network.servers)
        self.reachable_users: Dict[int, str] = {}  # client_id -> nickname
        # client_id -> generator profile, built once: resolving metadata
        # per newly-seen client by scanning the profile list is O(N) per
        # lookup and made large crawls quadratic.
        self._profiles_by_id = {
            p.meta.client_id: p for p in network.generator.profiles
        }
        # Resume state: the trace under construction and the next day to
        # crawl.  Both travel inside a checkpoint, so a restored crawler
        # picks up exactly where the snapshot was taken.
        self._trace: Optional[Trace] = None
        self._next_day_offset = 0
        # Incremental trace-store output (a plain string so it pickles
        # into checkpoints).  Each completed day is appended *before* the
        # day's checkpoint, so a crash-and-resume replays the day and
        # idempotently rewrites the same segment.
        self.store_dir: Optional[str] = (
            os.fspath(store_dir) if store_dir is not None else None
        )
        # Streaming mode: each day goes straight into the store and is
        # then dropped from the in-memory trace, so a Scale.HUGE crawl
        # holds at most one day of snapshots resident.  File/client
        # metadata dictionaries are kept (the store interns from them).
        if stream and self.store_dir is None:
            raise ValueError("stream=True requires a store_dir sink")
        self.stream = stream

    # ------------------------------------------------------------------
    # Discovery

    def refresh_server_list(self) -> None:
        """Ask every known server for its server list (gossip walk)."""
        # Sorted: ``known_servers`` is a set, and set iteration order can
        # change across a pickle round-trip; the walk order decides which
        # server is asked first, which matters under message faults.
        frontier = sorted(self.known_servers)
        while frontier:
            server_id = frontier.pop()
            reply = self.network.to_server(server_id, ServerListRequest())
            if reply is None:
                continue
            for other in reply.servers:
                if other not in self.known_servers:
                    self.known_servers.add(other)
                    frontier.append(other)

    def sweep_nicknames(self) -> int:
        """Run the ``aaa``..``zzz`` sweep on every known server.

        Returns the number of *new* reachable users discovered.  Users whose
        replies flag them as firewalled are skipped (the crawler cannot
        connect to them).
        """
        new_users = 0
        patterns = (
            "".join(letters)
            for letters in itertools.product(
                string.ascii_lowercase, repeat=self.config.query_length
            )
        )
        for pattern in patterns:
            for server_id in sorted(self.known_servers):
                reply = self._query_users(server_id, pattern)
                self.stats.nickname_queries += 1
                if reply is None:
                    continue
                if not reply.supported:
                    continue
                for client_id, nickname, firewalled in reply.users:
                    if firewalled:
                        self.stats.firewalled_skipped += 1
                        continue
                    if client_id not in self.reachable_users:
                        self.reachable_users[client_id] = nickname
                        new_users += 1
        self.stats.users_discovered = len(self.reachable_users)
        self.stats.servers_without_query_users = sum(
            1
            for sid in self.known_servers
            if not self.network.servers[sid].config.supports_query_users
        )
        return new_users

    def _query_users(self, server_id: int, pattern: str):
        """One nickname query, retried (with backoff) when the reply is
        lost on a faulty network.  Unsupported/empty replies are answers,
        not failures — only ``None`` (drop, timeout, dead server) retries."""
        reply = self.network.to_server(server_id, QueryUsers(pattern=pattern))
        policy = self.config.retry
        if policy is None:
            return reply
        attempt = 0
        while reply is None and attempt < policy.max_retries:
            attempt += 1
            self.stats.query_retries += 1
            self.stats.backoff_seconds += policy.delay(attempt)
            self.network.faults.stats.retries += 1
            reply = self.network.to_server(server_id, QueryUsers(pattern=pattern))
        return reply

    # ------------------------------------------------------------------
    # Browsing

    def browse_all(self, trace: Trace, day: int, budget: int) -> int:
        """Browse reachable users within ``budget`` attempts; record
        snapshots.

        Returns the number of successful browses.  The browse order is
        shuffled so the budget cut does not systematically starve the same
        clients.  Every attempt — including each retry of an unanswered
        browse — consumes one unit of budget, so failures eat into how
        many clients the crawler reaches that day (the paper's bandwidth
        constraint under hostile conditions).
        """
        order = self.rng.shuffled(sorted(self.reachable_users))
        policy = self.config.retry
        successes = 0
        remaining = budget
        for client_id in order:
            if remaining <= 0:
                break
            attempt = 0
            while True:
                remaining -= 1
                self.stats.browse_attempts += 1
                reply = self.network.to_client(
                    client_id, BrowseRequest(requester_id=-1)
                )
                if reply is not None:
                    break
                if (
                    policy is None
                    or attempt >= policy.max_retries
                    or remaining <= 0
                ):
                    break
                attempt += 1
                self.stats.browse_retries += 1
                self.stats.backoff_seconds += policy.delay(attempt)
                self.network.faults.stats.retries += 1
            if reply is None or not reply.allowed:
                self.stats.browse_refused += 1
                continue
            self._ensure_client_meta(trace, client_id)
            for desc in reply.files:
                if desc.file_id not in trace.files:
                    trace.add_file(
                        FileMeta(
                            file_id=desc.file_id,
                            size=desc.size,
                            kind=desc.kind,
                            name=desc.name,
                        )
                    )
            trace.observe(day, client_id, (d.file_id for d in reply.files))
            successes += 1
            self.stats.browse_succeeded += 1
        return successes

    def _ensure_client_meta(self, trace: Trace, client_id: int) -> None:
        if client_id in trace.clients:
            return
        # The real crawler records the IP it connected to and resolves the
        # country / AS with a GeoIP database; here the generator's profile
        # plays the role of that database.
        profile = self._profiles_by_id[client_id]
        trace.add_client(
            ClientMeta(
                client_id=client_id,
                uid=profile.meta.uid,
                ip=profile.meta.ip,
                country=profile.meta.country,
                asn=profile.meta.asn,
                nickname=profile.meta.nickname,
            )
        )

    def _append_store_day(self, day: int, trace: Trace) -> None:
        """Append ``day``'s snapshots to the on-disk trace store.

        The writer is opened per day (no open handle survives a crash or a
        pickle round-trip) and the append happens *before* the day's
        checkpoint: a crash between the two makes resume replay the day,
        and re-appending deterministically replaces the same segment.
        """
        from repro.trace.store import TraceStoreWriter

        with TraceStoreWriter.open(self.store_dir, create=True) as writer:
            writer.append_day(
                day,
                trace.snapshots_on(day),
                files=trace.files,
                clients=trace.clients,
            )

    # ------------------------------------------------------------------
    # Checkpointing

    def save_checkpoint(self, checkpointer: "Checkpointer") -> None:
        """Snapshot the whole crawler (network, trace and RNGs included).

        The observer's live span stack is excluded: the snapshot is taken
        between days, and the resumed process opens its own spans — a
        restored half-open stack would corrupt its span paths.
        """
        # Counted *before* pickling so the snapshot itself carries the
        # save it belongs to; a resumed run then continues the counter
        # exactly where an uninterrupted checkpointing run would be.
        self.obs.count("checkpoint/saves")
        stack = self.obs._stack
        self.obs._stack = []
        try:
            checkpointer.save(
                CRAWL_CHECKPOINT_KIND,
                self._next_day_offset,
                {"crawler": self},
                seed=self.rng.seed,
                meta={
                    "day": self._next_day_offset,
                    "network_day": self.network.day,
                    "snapshots": (
                        self._trace.num_snapshots if self._trace else 0
                    ),
                },
            )
        finally:
            self.obs._stack = stack

    @classmethod
    def resume_from(cls, checkpointer: "Checkpointer") -> "Crawler":
        """Rebuild a mid-crawl crawler from the latest checkpoint."""
        payload, _info = checkpointer.load_latest(CRAWL_CHECKPOINT_KIND)
        crawler = payload["crawler"]
        if not isinstance(crawler, cls):
            raise TypeError(
                f"checkpoint payload holds {type(crawler).__name__}, "
                f"expected {cls.__name__}"
            )
        return crawler

    @property
    def next_day_offset(self) -> int:
        """The next day the crawl loop will execute (0 on a fresh crawler)."""
        return self._next_day_offset

    # ------------------------------------------------------------------
    # Full crawl

    def crawl(
        self,
        days: Optional[int] = None,
        checkpointer: Optional["Checkpointer"] = None,
        on_day_end: Optional[Callable[[int], None]] = None,
    ) -> Trace:
        """Run a multi-day crawl and return the collected trace.

        With observability enabled the per-day phases are timed under the
        ``crawl/day/...`` span hierarchy and the final
        :class:`CrawlStats` are exported as ``crawler/*`` counters.

        With a ``checkpointer`` the crawler snapshots itself after every
        completed day; a crawler rebuilt via :meth:`resume_from`
        continues from the checkpointed day and produces byte-identical
        final artefacts.  ``on_day_end(day_offset)`` (if given) runs
        after each day's checkpoint — the chaos harness uses it to kill
        the process at a precise point.
        """
        days = days if days is not None else self.config.days
        if self._trace is None:
            self._trace = Trace()
        trace = self._trace
        start = self._next_day_offset
        obs = self.obs
        obs.gauge("progress/days_total", days)
        obs.gauge("progress/days_done", start)
        with obs.span("crawl"):
            if start == 0:
                with obs.span("refresh_servers"):
                    self.refresh_server_list()
            for day_offset in range(start, days):
                obs.instant(
                    "day_start",
                    args={"day": day_offset, "network_day": self.network.day},
                    cat="crawl",
                )
                with obs.span("day"):
                    if day_offset % self.config.refresh_users_every == 0:
                        with obs.span("sweep_nicknames"):
                            self.sweep_nicknames()
                    budget = self.config.budget_on(day_offset)
                    network_day = self.network.day
                    with obs.span("browse"):
                        self.browse_all(trace, network_day, budget)
                    if self.store_dir is not None:
                        with obs.span("store_append"):
                            self._append_store_day(network_day, trace)
                        if self.stream:
                            trace.drop_day(network_day)
                    self.network.advance_day()
                self._next_day_offset = day_offset + 1
                obs.gauge("progress/days_done", day_offset + 1)
                if checkpointer is not None:
                    self.save_checkpoint(checkpointer)
                if on_day_end is not None:
                    on_day_end(day_offset)
        if obs.enabled:
            obs.merge_counters(self.stats.as_dict(), prefix="crawler/")
            obs.gauge(
                "crawler/browse_success_rate", self.stats.browse_success_rate
            )
            self.network.export_metrics()
        return trace

    def degradation_report(
        self, trace: Trace, baseline_snapshots: Optional[int] = None
    ):
        """Graceful-degradation summary of this crawl (see
        :class:`~repro.core.metrics.DegradationReport`).

        ``baseline_snapshots`` is the snapshot count of a fault-free run
        with the same seed and config; when given, the report carries
        the trace-completeness ratio against it."""
        from repro.core.metrics import build_degradation_report

        return build_degradation_report(
            self.network.faults.stats,
            self.stats,
            trace.num_snapshots,
            baseline_snapshots=baseline_snapshots,
        )
