"""The eDonkey client.

Second-tier node: shares a cache of files, publishes it to a server on
connect, answers browse requests (unless the user disabled browsing),
answers block requests, and downloads files block-by-block from multiple
sources with MD4 verification and *partial sharing* — a file is published as
soon as one block has been downloaded and verified (Section 2.1).

Block contents are not materialized; a block's checksum is derived from
``(file_id, block_index)`` with the same MD4 primitive on both sides, which
preserves the verify/corrupt/retry control flow without storing gigabytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.edonkey.hashing import num_blocks
from repro.edonkey.md4 import md4_digest
from repro.edonkey.messages import (
    BlockReply,
    BlockRequest,
    BrowseReply,
    BrowseRequest,
    CallbackRequest,
    ConnectRequest,
    FileDescription,
    FileStatusReply,
    FileStatusRequest,
    PublishFiles,
    Query,
    QuerySources,
    SearchRequest,
    UdpSearchRequest,
)


def block_checksum(file_id: str, block_index: int) -> bytes:
    """The simulated content checksum of one block."""
    return md4_digest(f"{file_id}:{block_index}".encode("utf-8"))


@dataclass
class SharedFile:
    """A (possibly partial) file in a client's cache."""

    description: FileDescription
    blocks_present: List[bool]

    @classmethod
    def complete(cls, description: FileDescription) -> "SharedFile":
        n = num_blocks(description.size)
        return cls(description=description, blocks_present=[True] * n)

    @classmethod
    def empty(cls, description: FileDescription) -> "SharedFile":
        n = num_blocks(description.size)
        return cls(description=description, blocks_present=[False] * n)

    @property
    def num_blocks(self) -> int:
        return len(self.blocks_present)

    @property
    def is_complete(self) -> bool:
        return all(self.blocks_present)

    @property
    def is_shareable(self) -> bool:
        """Shared as soon as at least one block is verified."""
        return any(self.blocks_present)

    def missing_blocks(self) -> List[int]:
        return [i for i, present in enumerate(self.blocks_present) if not present]


@dataclass
class ClientConfig:
    """Client behaviour flags.

    ``firewalled`` models low-ID clients: inbound connections fail (the
    crawler cannot browse them).  ``browseable`` models the user-visible
    "allow others to view my shared files" switch.  ``corrupts_uploads``
    marks a malicious/broken source used to exercise corruption detection.
    """

    firewalled: bool = False
    browseable: bool = True
    corrupts_uploads: bool = False


class Client:
    """An eDonkey client node."""

    def __init__(
        self,
        client_id: int,
        nickname: str,
        config: Optional[ClientConfig] = None,
    ) -> None:
        self.client_id = client_id
        self.nickname = nickname
        self.config = config or ClientConfig()
        self.cache: Dict[str, SharedFile] = {}
        self.server_id: Optional[int] = None
        self.known_servers: Set[int] = set()
        self.download_failures = 0
        self.corruptions_detected = 0

    # ------------------------------------------------------------------
    # Cache management

    def share(self, description: FileDescription) -> None:
        """Add a complete file to the cache."""
        self.cache[description.file_id] = SharedFile.complete(description)

    def unshare(self, file_id: str) -> None:
        self.cache.pop(file_id, None)

    def shared_descriptions(self) -> List[FileDescription]:
        """Descriptions of shareable files (>= 1 verified block)."""
        return [
            shared.description
            for shared in self.cache.values()
            if shared.is_shareable
        ]

    def shared_file_ids(self) -> Set[str]:
        return {
            fid for fid, shared in self.cache.items() if shared.is_shareable
        }

    # ------------------------------------------------------------------
    # Server interaction

    def connect(self, transport, server_id: int) -> bool:
        """Connect to a server, publish the cache, learn the server list.

        ``transport`` is anything exposing the
        :class:`~repro.edonkey.transport.Transport` trio — the simulated
        :class:`~repro.edonkey.network.Network` itself, or a
        :class:`~repro.edonkey.transport.SimTransport` adapter over it.
        """
        reply = transport.to_server(
            server_id,
            ConnectRequest(
                client_id=self.client_id,
                nickname=self.nickname,
                firewalled=self.config.firewalled,
            ),
        )
        if reply is None or not reply.accepted:
            # None: the connect was lost in flight or the server is down.
            return False
        self.server_id = server_id
        self.known_servers.update(reply.server_list)
        self.publish(transport)
        return True

    def publish(self, transport) -> None:
        """(Re-)publish the current cache to the connected server."""
        if self.server_id is None:
            raise RuntimeError("publish before connect")
        transport.to_server(
            self.server_id,
            PublishFiles(
                client_id=self.client_id, files=self.shared_descriptions()
            ),
        )

    def find_sources(self, transport, file_id: str) -> List[int]:
        if self.server_id is None:
            raise RuntimeError("source query before connect")
        reply = transport.to_server(
            self.server_id, QuerySources(client_id=self.client_id, file_id=file_id)
        )
        if reply is None:
            return []
        return [s for s in reply.sources if s != self.client_id]

    def search(self, transport, query: Query, limit: int = 200) -> List[FileDescription]:
        """Keyword/range search on the connected server (TCP)."""
        if self.server_id is None:
            raise RuntimeError("search before connect")
        reply = transport.to_server(
            self.server_id,
            SearchRequest(client_id=self.client_id, query=query, limit=limit),
        )
        if reply is None:
            return []
        return list(reply.results)

    def search_all_servers(
        self, transport, query: Query, limit: int = 200
    ) -> List[FileDescription]:
        """Search the connected server over TCP, then spray the query to
        every other known server over UDP (Section 2.1: servers do not
        forward queries to each other, clients do it themselves).

        Results are deduplicated by file id, connected-server results
        first.
        """
        results = self.search(transport, query, limit=limit)
        seen = {desc.file_id for desc in results}
        for server_id in sorted(self.known_servers):
            if server_id == self.server_id:
                continue
            reply = transport.to_server(
                server_id,
                UdpSearchRequest(client_id=self.client_id, query=query),
            )
            if reply is None:
                continue
            for desc in reply.results:
                if desc.file_id not in seen:
                    seen.add(desc.file_id)
                    results.append(desc)
                    if len(results) >= limit:
                        return results
        return results

    def _request_callback(self, transport, source_id: int) -> bool:
        """Ask known servers to force firewalled ``source_id`` to connect
        back; True if some server has it as a session.

        Two firewalled peers cannot reach each other at all: the callback
        connection must land on the *requester*, so a firewalled requester
        cannot use this channel."""
        if self.config.firewalled:
            return False
        for server_id in sorted(self.known_servers):
            granted = transport.to_server(
                server_id,
                CallbackRequest(
                    requester_id=self.client_id, target_id=source_id
                ),
            )
            if granted:
                return True
        return False

    def _send_to_source(self, transport, source_id: int, message, callbacks: set):
        """Send a client-to-client message, using the server-mediated
        callback channel for firewalled sources that granted one."""
        if source_id in callbacks:
            return transport.callback_to_client(source_id, message)
        reply = transport.to_client(source_id, message)
        if reply is not None:
            return reply
        # Direct connection failed (firewalled?): try the callback route.
        if self._request_callback(transport, source_id):
            callbacks.add(source_id)
            return transport.callback_to_client(source_id, message)
        return None

    # ------------------------------------------------------------------
    # Client-to-client handlers (invoked via the network router)

    def handle_browse(self, _msg: BrowseRequest) -> BrowseReply:
        if not self.config.browseable:
            return BrowseReply(allowed=False)
        return BrowseReply(allowed=True, files=self.shared_descriptions())

    def handle_file_status(self, msg: FileStatusRequest) -> FileStatusReply:
        shared = self.cache.get(msg.file_id)
        if shared is None or not shared.is_shareable:
            return FileStatusReply(available=False)
        return FileStatusReply(available=True, blocks=list(shared.blocks_present))

    def handle_block_request(self, msg: BlockRequest) -> BlockReply:
        shared = self.cache.get(msg.file_id)
        if shared is None:
            return BlockReply(ok=False)
        if not 0 <= msg.block_index < shared.num_blocks:
            return BlockReply(ok=False)
        if not shared.blocks_present[msg.block_index]:
            return BlockReply(ok=False)
        checksum = block_checksum(msg.file_id, msg.block_index)
        if self.config.corrupts_uploads:
            checksum = bytes(b ^ 0xFF for b in checksum)
        return BlockReply(ok=True, checksum=checksum)

    # ------------------------------------------------------------------
    # Downloading

    def download(
        self,
        transport,
        description: FileDescription,
        sources: Optional[List[int]] = None,
        republish: bool = True,
    ) -> bool:
        """Download a file, verifying every block; returns True on success.

        Sources are tried round-robin per block; a corrupted block is
        detected via its checksum and re-fetched from the next source.
        Partial progress is kept (and shared) even if the download stalls.
        """
        if sources is None:
            sources = self.find_sources(transport, description.file_id)
        if not sources:
            self.download_failures += 1
            return False

        shared = self.cache.get(description.file_id)
        if shared is None or not shared.blocks_present:
            shared = SharedFile.empty(description)
            self.cache[description.file_id] = shared

        callbacks: set = set()
        for block_index in shared.missing_blocks():
            fetched = False
            for source_id in sources:
                status = self._send_to_source(
                    transport,
                    source_id,
                    FileStatusRequest(file_id=description.file_id),
                    callbacks,
                )
                if status is None or not status.available:
                    continue
                if block_index >= len(status.blocks) or not status.blocks[block_index]:
                    continue
                reply = self._send_to_source(
                    transport,
                    source_id,
                    BlockRequest(
                        file_id=description.file_id, block_index=block_index
                    ),
                    callbacks,
                )
                if reply is None or not reply.ok:
                    continue
                expected = block_checksum(description.file_id, block_index)
                if reply.checksum != expected:
                    self.corruptions_detected += 1
                    continue
                shared.blocks_present[block_index] = True
                fetched = True
                break
            if not fetched:
                self.download_failures += 1
                if republish and self.server_id is not None and shared.is_shareable:
                    self.publish(transport)
                return False

        if republish and self.server_id is not None:
            self.publish(transport)
        return True
