"""MD4 message digest, from scratch per RFC 1320.

eDonkey identifies files by MD4: each 9.5 MB block is MD4-hashed and the
file identifier is the MD4 of the concatenated block digests.  ``hashlib``
builds frequently ship without MD4 (OpenSSL moved it to the legacy
provider), so the substrate carries its own implementation.

The implementation follows RFC 1320's reference description: three rounds of
16 operations over 512-bit blocks, little-endian throughout.  It passes the
RFC's appendix test vectors (see ``tests/edonkey/test_md4.py``).
"""

from __future__ import annotations

import struct

_MASK = 0xFFFFFFFF


def _lrot(value: int, count: int) -> int:
    value &= _MASK
    return ((value << count) | (value >> (32 - count))) & _MASK


def _f(x: int, y: int, z: int) -> int:
    return (x & y) | (~x & z)


def _g(x: int, y: int, z: int) -> int:
    return (x & y) | (x & z) | (y & z)


def _h(x: int, y: int, z: int) -> int:
    return x ^ y ^ z


class MD4:
    """Incremental MD4 with the familiar ``update()`` / ``digest()`` API.

    Example::

        >>> MD4(b"abc").hexdigest()
        'a448017aaf21d8525fc10ae87aa6729d'
    """

    digest_size = 16
    block_size = 64

    def __init__(self, data: bytes = b"") -> None:
        self._state = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476]
        self._buffer = b""
        self._length = 0  # total message length in bytes
        if data:
            self.update(data)

    def update(self, data: bytes) -> None:
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError("MD4 input must be bytes-like")
        data = bytes(data)
        self._length += len(data)
        buf = self._buffer + data
        offset = 0
        while offset + 64 <= len(buf):
            self._compress(buf[offset : offset + 64])
            offset += 64
        self._buffer = buf[offset:]

    def _compress(self, block: bytes) -> None:
        x = list(struct.unpack("<16I", block))
        a, b, c, d = self._state

        # Round 1: F, shifts 3/7/11/19, message order 0..15.
        for i in range(16):
            k = i
            s = (3, 7, 11, 19)[i % 4]
            if i % 4 == 0:
                a = _lrot(a + _f(b, c, d) + x[k], s)
            elif i % 4 == 1:
                d = _lrot(d + _f(a, b, c) + x[k], s)
            elif i % 4 == 2:
                c = _lrot(c + _f(d, a, b) + x[k], s)
            else:
                b = _lrot(b + _f(c, d, a) + x[k], s)

        # Round 2: G + 0x5A827999, shifts 3/5/9/13, column-major order.
        order2 = (0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15)
        for i in range(16):
            k = order2[i]
            s = (3, 5, 9, 13)[i % 4]
            if i % 4 == 0:
                a = _lrot(a + _g(b, c, d) + x[k] + 0x5A827999, s)
            elif i % 4 == 1:
                d = _lrot(d + _g(a, b, c) + x[k] + 0x5A827999, s)
            elif i % 4 == 2:
                c = _lrot(c + _g(d, a, b) + x[k] + 0x5A827999, s)
            else:
                b = _lrot(b + _g(c, d, a) + x[k] + 0x5A827999, s)

        # Round 3: H + 0x6ED9EBA1, shifts 3/9/11/15, bit-reversed order.
        order3 = (0, 8, 4, 12, 2, 10, 6, 14, 1, 9, 5, 13, 3, 11, 7, 15)
        for i in range(16):
            k = order3[i]
            s = (3, 9, 11, 15)[i % 4]
            if i % 4 == 0:
                a = _lrot(a + _h(b, c, d) + x[k] + 0x6ED9EBA1, s)
            elif i % 4 == 1:
                d = _lrot(d + _h(a, b, c) + x[k] + 0x6ED9EBA1, s)
            elif i % 4 == 2:
                c = _lrot(c + _h(d, a, b) + x[k] + 0x6ED9EBA1, s)
            else:
                b = _lrot(b + _h(c, d, a) + x[k] + 0x6ED9EBA1, s)

        self._state = [
            (self._state[0] + a) & _MASK,
            (self._state[1] + b) & _MASK,
            (self._state[2] + c) & _MASK,
            (self._state[3] + d) & _MASK,
        ]

    def digest(self) -> bytes:
        # Work on copies so digest() can be called repeatedly / interleaved
        # with update().
        clone = MD4.__new__(MD4)
        clone._state = list(self._state)
        clone._buffer = self._buffer
        clone._length = self._length

        bit_length = clone._length * 8
        padding = b"\x80" + b"\x00" * ((55 - clone._length) % 64)
        tail = padding + struct.pack("<Q", bit_length)
        buf = clone._buffer + tail
        offset = 0
        while offset + 64 <= len(buf):
            clone._compress(buf[offset : offset + 64])
            offset += 64
        return struct.pack("<4I", *clone._state)

    def hexdigest(self) -> str:
        return self.digest().hex()

    def copy(self) -> "MD4":
        clone = MD4.__new__(MD4)
        clone._state = list(self._state)
        clone._buffer = self._buffer
        clone._length = self._length
        return clone


def md4_digest(data: bytes) -> bytes:
    """One-shot MD4 of ``data``."""
    return MD4(data).digest()


def md4_hex(data: bytes) -> str:
    """One-shot hex MD4 of ``data``."""
    return MD4(data).hexdigest()
