"""The simulated eDonkey network: message router + day clock + builder.

The network owns servers and clients, routes messages between them
(counting traffic), refuses inbound client connections to firewalled peers,
and advances a day clock under which client caches churn (content comes
from a :class:`~repro.workload.generator.SyntheticWorkloadGenerator`, so the
substrate and the statistical generator share one content model).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.context import RunContext

from repro.edonkey.client import Client, ClientConfig
from repro.faults import FaultConfig, FaultInjector, FaultSchedule
from repro.edonkey.messages import FileDescription, MessageStats
from repro.edonkey.protocol import (
    ClientProtocolHandler,
    ServerProtocolHandler,
)
from repro.edonkey.server import Server, ServerConfig
from repro.obs import NULL_OBSERVER, Observer
from repro.util.rng import RngStream
from repro.util.validation import check_fraction, check_positive
from repro.workload.config import WorkloadConfig
from repro.workload.generator import SyntheticWorkloadGenerator


@dataclass
class NetworkConfig:
    """Topology and behaviour of the simulated network."""

    num_servers: int = 3
    firewalled_fraction: float = 0.25
    browse_disabled_fraction: float = 0.15
    query_users_support_fraction: float = 0.7  # fraction of *old* servers
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    # Live semantic-links extension (the paper's announced MLdonkey work):
    # build SemanticClient peers instead of plain clients.
    semantic_clients: bool = False
    semantic_strategy: str = "lru"
    semantic_list_size: int = 10
    # Session churn: clients go offline/online daily according to their
    # availability profile (the turnover the Overnet study measures).
    # Offline clients are unreachable and unpublished from their server.
    session_churn: bool = False
    # Failure injection: fraction of clients whose uploads are corrupted
    # (bad block checksums).  Downloaders detect the corruption via the
    # MD4 block hashes and retry other sources.
    corrupt_fraction: float = 0.0
    # Hostile-network fault model (message loss, timeouts, malformed
    # replies, transient peer downtime, server crashes).  All knobs off by
    # default, in which case the injector is never consulted.
    faults: FaultConfig = field(default_factory=FaultConfig)
    # Optional time-varying overrides on top of ``faults``: day windows
    # that ramp loss, burst churn, or crash servers repeatedly (see
    # :mod:`repro.faults.schedule`).  A schedule whose windows carry no
    # overrides is byte-identical to no schedule at all.
    fault_schedule: Optional[FaultSchedule] = None
    # Dead-neighbour detection for semantic clients: evict a semantic
    # neighbour after this many consecutive unanswered probes (None = off).
    semantic_dead_after: Optional[int] = None

    def __post_init__(self) -> None:
        check_positive("num_servers", self.num_servers)
        check_fraction("firewalled_fraction", self.firewalled_fraction)
        check_fraction("browse_disabled_fraction", self.browse_disabled_fraction)
        check_fraction(
            "query_users_support_fraction", self.query_users_support_fraction
        )
        check_positive("semantic_list_size", self.semantic_list_size)
        check_fraction("corrupt_fraction", self.corrupt_fraction)
        if self.semantic_dead_after is not None:
            check_positive("semantic_dead_after", self.semantic_dead_after)


class Network:
    """Routes messages, tracks traffic, and advances simulated days."""

    def __init__(
        self,
        generator: SyntheticWorkloadGenerator,
        config: NetworkConfig,
        obs: Optional[Observer] = None,
    ) -> None:
        self.config = config
        self.generator = generator
        self.obs = obs if obs is not None else NULL_OBSERVER
        self.servers: Dict[int, Server] = {}
        self.clients: Dict[int, Client] = {}
        # Per-target protocol handlers (the handler layer of the message
        # plane).  Constructed observer-less: the sim's metric surface
        # (``network/*`` hop counters) predates the handler layer and is
        # pinned by committed baselines; per-message protocol metrics
        # are recorded by the live service's handler instead.
        self._server_handlers: Dict[int, ServerProtocolHandler] = {}
        self._client_handlers: Dict[int, ClientProtocolHandler] = {}
        self.stats = MessageStats()
        self.day = generator.config.start_day
        self._caches: Dict[int, Set[int]] = {}  # client -> file indices
        self._churn_rng = generator.rng.child("network-churn")
        self._session_rng = generator.rng.child("network-sessions")
        self.offline: Set[int] = set()
        self.faults = FaultInjector(
            config.faults,
            generator.rng.child("network-faults"),
            schedule=config.fault_schedule,
        )
        self.down_servers: Set[int] = set()
        self._day_index = 0  # days elapsed since the build day

    # ------------------------------------------------------------------
    # Routing

    def add_server(self, server: Server) -> None:
        self.servers[server.server_id] = server
        self._server_handlers[server.server_id] = ServerProtocolHandler(server)
        for other in self.servers.values():
            other.learn_servers(self.servers.keys())

    def add_client(self, client: Client) -> None:
        self.clients[client.client_id] = client
        self._client_handlers[client.client_id] = ClientProtocolHandler(client)

    def to_server(self, server_id: int, message):
        """Deliver a message to a server; returns the reply (or None).

        Crashed servers and messages the fault injector drops both yield
        ``None`` — from the sender's side a dead server and a lost
        message are indistinguishable, which is exactly what the retry
        machinery has to cope with."""
        self.stats.count(message)
        if self.obs.enabled:
            self.obs.count("network/server_hops")
            self.obs.instant(type(message).__name__, cat="hop")
        server = self.servers.get(server_id)
        if server is None:
            return None
        if server_id in self.down_servers:
            self.faults.stats.server_down_messages += 1
            return None
        handler = self._server_handlers[server_id]
        return self.faults.filtered_dispatch(message, handler.handle)

    def to_client(self, client_id: int, message):
        """Deliver a message to a client over a direct TCP connection.

        Returns ``None`` when the connection cannot be established — the
        target is unknown or sits behind a firewall (low-ID).  The server-
        mediated callback that real eDonkey uses for firewalled *sources*
        is modelled in :meth:`callback_to_client`.
        """
        self.stats.count(message)
        if self.obs.enabled:
            self.obs.count("network/client_hops")
            self.obs.instant(type(message).__name__, cat="hop")
        client = self.clients.get(client_id)
        if client is None or client.config.firewalled:
            return None
        if client_id in self.offline:
            return None
        return self._deliver_to_client(client, message)

    def callback_to_client(self, client_id: int, message):
        """Deliver via the server-forced callback (reaches firewalled peers)."""
        self.stats.count(message)
        if self.obs.enabled:
            self.obs.count("network/callback_hops")
            self.obs.instant(type(message).__name__, cat="hop")
        client = self.clients.get(client_id)
        if client is None or client_id in self.offline:
            return None
        return self._deliver_to_client(client, message)

    def _deliver_to_client(self, client: Client, message):
        """Apply the fault model to a client-bound hop, then dispatch."""
        handler = self._client_handlers[client.client_id]
        if self.faults.enabled and self.faults.peer_unreachable(
            client.client_id
        ):
            return None
        return self.faults.filtered_dispatch(message, handler.handle)

    # ------------------------------------------------------------------
    # Day clock / content churn

    def cache_indices(self, client_id: int) -> Set[int]:
        return set(self._caches.get(client_id, set()))

    def advance_day(self) -> None:
        """Advance the clock one day: apply the fault schedule (crashes,
        recoveries, transient peer downtime), then session churn
        (optional), then churn every online sharer's cache and republish
        to its server."""
        with self.obs.span("network/advance_day"):
            self.day += 1
            self._day_index += 1
            # ``active`` (not ``enabled``): a scheduled injector may be
            # quiet today but still needs advance_day to apply the
            # window overrides for the new day.
            if self.faults.active:
                self._apply_fault_schedule()
            profiles = {p.meta.client_id: p for p in self.generator.profiles}
            if self.config.session_churn:
                self._apply_session_churn(profiles)
            for client_id, client in self.clients.items():
                profile = profiles.get(client_id)
                if profile is None or profile.free_rider:
                    continue
                if client_id in self.offline:
                    continue
                cache = self._caches.setdefault(client_id, set())
                rng = self._churn_rng.child(f"day[{self.day}]/c[{client_id}]")
                self.generator.churn_cache(profile, cache, self.day, rng)
                self._sync_client_cache(client, cache)
                if client.server_id is not None:
                    client.publish(self)

    def export_metrics(self) -> None:
        """Fold the network's existing accounting into the observer.

        Message traffic (:class:`~repro.edonkey.messages.MessageStats`)
        and fault outcomes (:class:`~repro.faults.stats.FaultStats`) are
        already counted by their owners; this surfaces both through the
        observability layer under stable prefixes instead of keeping a
        second set of live counters.
        """
        if not self.obs.enabled:
            return
        self.obs.merge_counters(self.stats.sent, prefix="network/messages/")
        fault_counters = self.faults.stats.as_dict()
        self.obs.gauge(
            "faults/delivery_rate", fault_counters.pop("delivery_rate")
        )
        self.obs.merge_counters(fault_counters, prefix="faults/")

    # ------------------------------------------------------------------
    # Fault schedule (server crashes, transient peer downtime)

    def _apply_fault_schedule(self) -> None:
        """Run the injector's schedule for the new day.

        Recoveries are processed before crashes so a ``0``-day downtime
        cannot resurrect a server on its own crash day, and orphaned
        clients (whose reconnect attempts all failed earlier) retry
        daily — the graceful-degradation loop."""
        self.faults.advance_day(self._day_index, self.clients.keys())
        crashes, recoveries = self.faults.server_events(self._day_index)
        for server_id in recoveries:
            if server_id in self.down_servers:
                self.down_servers.discard(server_id)
                self.faults.stats.server_recoveries += 1
        for server_id in crashes:
            self._crash_server(server_id)
        self._reconnect_orphans()

    def _crash_server(self, server_id: int) -> None:
        """Crash a server: its state is lost and its clients orphaned."""
        server = self.servers.get(server_id)
        if server is None or server_id in self.down_servers:
            return
        server.crash()
        self.down_servers.add(server_id)
        self.faults.stats.server_crashes += 1
        for client in self.clients.values():
            if client.server_id == server_id:
                client.server_id = None

    def _reconnect_orphans(self) -> None:
        """Re-home online clients that lost their server to a crash."""
        survivors = [
            sid for sid in sorted(self.servers) if sid not in self.down_servers
        ]
        if not survivors:
            return
        for client_id in sorted(self.clients):
            client = self.clients[client_id]
            if client.server_id is not None or client_id in self.offline:
                continue
            for server_id in survivors:
                if client.connect(self, server_id):
                    self.faults.stats.clients_reassigned += 1
                    break

    def _apply_session_churn(self, profiles) -> None:
        """Draw each client's online status for the new day.

        Going offline disconnects the client from its server (unpublishing
        its files and removing it from the nickname index); coming back
        reconnects and republishes.
        """
        for client_id, client in self.clients.items():
            profile = profiles.get(client_id)
            if profile is None:
                continue
            online = self._session_rng.py.random() < profile.online_prob
            was_offline = client_id in self.offline
            if online and was_offline:
                self.offline.discard(client_id)
                if client.server_id is not None:
                    server_id = client.server_id
                    client.connect(self, server_id)
            elif not online and not was_offline:
                self.offline.add(client_id)
                if client.server_id is not None:
                    server = self.servers.get(client.server_id)
                    if server is not None:
                        server.handle_disconnect(client_id)

    def _sync_client_cache(self, client: Client, indices: Set[int]) -> None:
        # Sorted iteration: ``indices`` is a set, and set iteration order
        # can legally change across a pickle round-trip (the rebuilt hash
        # table is compacted).  The client's insertion-ordered cache dict
        # feeds BrowseReply payloads and ultimately the trace's file
        # order, so resume-equivalence needs a canonical order here.
        descriptions = {
            meta.file_id: meta
            for meta in map(self.generator.file_meta, sorted(indices))
        }
        # Drop files no longer shared, add new ones as complete.
        for file_id in list(client.cache):
            if file_id not in descriptions:
                client.unshare(file_id)
        for file_id, meta in descriptions.items():
            if file_id not in client.cache:
                client.share(_to_description(meta))

    def check_invariants(self) -> List[str]:
        """Cross-layer consistency checks; returns problems (empty = ok).

        Run by the chaos harness after a resume: a checkpoint that
        restored half the object graph (a session without its client, a
        cache set disagreeing with the client's shared dict) surfaces
        here instead of as a silently divergent trace.  Only the
        *forward* session direction is checked — an online client can
        legitimately hold a stale ``server_id`` with no live session
        when message loss ate its reconnect attempt.
        """
        problems: List[str] = []
        for server_id, server in self.servers.items():
            if server_id in self.down_servers:
                if server.num_users:
                    problems.append(
                        f"down server {server_id} still has "
                        f"{server.num_users} sessions"
                    )
                continue
            problems.extend(server.check_invariants())
            for client_id in list(server._sessions):
                client = self.clients.get(client_id)
                if client is None:
                    problems.append(
                        f"server {server_id} has a session for unknown "
                        f"client {client_id}"
                    )
                    continue
                if client.server_id != server_id:
                    problems.append(
                        f"client {client_id} has a session on server "
                        f"{server_id} but points at {client.server_id}"
                    )
                if client_id in self.offline:
                    problems.append(
                        f"offline client {client_id} still has a session "
                        f"on server {server_id}"
                    )
        for client_id, indices in self._caches.items():
            client = self.clients.get(client_id)
            if client is None:
                problems.append(f"cache entry for unknown client {client_id}")
                continue
            expected = {
                self.generator.file_meta(idx).file_id for idx in indices
            }
            actual = set(client.cache)
            if expected != actual:
                missing = sorted(expected - actual)[:3]
                extra = sorted(actual - expected)[:3]
                problems.append(
                    f"client {client_id} cache disagrees with the "
                    f"network's index set (missing={missing}, "
                    f"extra={extra})"
                )
        return problems

    def seed_initial_caches(self) -> None:
        """Fill every sharer's cache as of the current day and publish."""
        if self.faults.active:
            # Day 0 of the fault schedule (a crash on the build day is a
            # legal scenario; transient downtime applies from day 0 too).
            self._apply_fault_schedule()
        for profile in self.generator.profiles:
            client = self.clients.get(profile.meta.client_id)
            if client is None or profile.free_rider:
                continue
            rng = self._churn_rng.child(f"seed/c[{profile.meta.client_id}]")
            cache = self.generator.initial_cache(profile, self.day, rng)
            self._caches[profile.meta.client_id] = cache
            self._sync_client_cache(client, cache)
            if client.server_id is not None:
                client.publish(self)


def _to_description(meta) -> FileDescription:
    return FileDescription(
        file_id=meta.file_id,
        name=meta.name or meta.file_id,
        size=meta.size,
        kind=meta.kind,
    )


def build_network(
    config: Optional[NetworkConfig] = None,
    seed: Optional[int] = None,
    obs: Optional[Observer] = None,
    ctx: Optional["RunContext"] = None,
) -> Network:
    """Construct a fully connected network: servers, clients (with caches
    published) and server-list gossip, ready for a crawler run.

    ``ctx`` supplies seed, observer and ambient fault config for anything
    not given explicitly; the legacy ``seed``/``obs`` parameters win when
    both are present.  The context's fault config applies only when the
    network config does not carry an enabled one of its own (experiments
    sweeping fault intensity keep full control).
    """
    if ctx is not None:
        if seed is None:
            seed = ctx.seed
        if obs is None:
            obs = ctx.obs
    if seed is None:
        seed = 0
    config = config or NetworkConfig()
    if ctx is not None and ctx.faults.enabled and not config.faults.enabled:
        config = dataclasses.replace(config, faults=ctx.faults)
    generator = SyntheticWorkloadGenerator(config=config.workload, seed=seed)
    generator.build()
    network = Network(generator, config, obs=obs)
    rng = RngStream(seed, "network")

    for i in range(config.num_servers):
        supports = rng.py.random() < config.query_users_support_fraction
        server = Server(
            server_id=i,
            config=ServerConfig(supports_query_users=supports),
        )
        network.add_server(server)

    server_ids = sorted(network.servers)
    for profile in generator.profiles:
        client_config = ClientConfig(
            firewalled=rng.py.random() < config.firewalled_fraction,
            browseable=rng.py.random() >= config.browse_disabled_fraction,
            corrupts_uploads=rng.py.random() < config.corrupt_fraction,
        )
        if config.semantic_clients:
            from repro.edonkey.semantic_client import SemanticClient

            client: Client = SemanticClient(
                client_id=profile.meta.client_id,
                nickname=profile.meta.nickname,
                config=client_config,
                strategy=config.semantic_strategy,
                list_size=config.semantic_list_size,
                dead_after=config.semantic_dead_after,
            )
        else:
            client = Client(
                client_id=profile.meta.client_id,
                nickname=profile.meta.nickname,
                config=client_config,
            )
        network.add_client(client)
        client.connect(network, server_ids[profile.meta.client_id % len(server_ids)])

    network.seed_initial_caches()
    return network
