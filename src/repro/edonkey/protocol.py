"""Transport-independent message dispatch: the handler layer.

The message plane is split into three layers (DESIGN.md §15):

- the **codec** (:mod:`repro.edonkey.wire`) turns message dataclasses
  into framed bytes and back;
- the **transport** (:mod:`repro.edonkey.transport`) moves messages —
  in-process via the simulated :class:`~repro.edonkey.network.Network`,
  or over TCP via asyncio streams;
- the **handler** (this module) maps a request to the ``handle_*``
  method of its target and returns the reply, knowing nothing about
  either of the other two.

Both transports consume the same handlers: the in-memory network routes
every server/client-bound hop through a :class:`ServerProtocolHandler`
or :class:`ClientProtocolHandler`, and the live asyncio service
(:mod:`repro.service.server`) dispatches decoded TCP frames through an
identical ``ServerProtocolHandler``.

Handlers optionally carry an :class:`~repro.obs.Observer` and record a
per-message-type counter (``protocol/server/SearchRequest``) and a
handle-latency histogram (``protocol/server/handle_s/SearchRequest``).
The simulated network constructs its handlers *without* an observer:
the sim's metric surface (``network/*`` hop counters, span aggregates)
predates this layer and is pinned by committed baselines, so the
per-message protocol metrics are a service-mode feature.  Handler
instances hold only their target and observer — no closures — so they
survive the checkpointer's pickle round-trip.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.edonkey.messages import (
    BlockRequest,
    BrowseRequest,
    BrowseUser,
    CallbackRequest,
    ConnectRequest,
    FileStatusRequest,
    PublishFiles,
    QuerySources,
    QueryUsers,
    SearchRequest,
    ServerListRequest,
    UdpSearchRequest,
)
from repro.obs import LATENCY_BOUNDS_S, NULL_OBSERVER, Observer


class UnroutableMessageError(TypeError):
    """No handler exists for this message type on this target.

    A ``TypeError`` subclass: misrouting a message is a programming
    error, and pre-refactor callers already expect ``TypeError``."""


#: Server-bound request type -> ``Server`` method name.
SERVER_HANDLERS: Dict[type, str] = {
    ConnectRequest: "handle_connect",
    PublishFiles: "handle_publish",
    SearchRequest: "handle_search",
    QuerySources: "handle_query_sources",
    QueryUsers: "handle_query_users",
    ServerListRequest: "handle_server_list",
    UdpSearchRequest: "handle_udp_search",
    CallbackRequest: "handle_callback",
    BrowseUser: "handle_browse_user",
}

#: Client-bound request type -> ``Client`` method name.
CLIENT_HANDLERS: Dict[type, str] = {
    BrowseRequest: "handle_browse",
    FileStatusRequest: "handle_file_status",
    BlockRequest: "handle_block_request",
}


class ProtocolHandler:
    """Request -> reply dispatch table over one target object."""

    role = "peer"
    table: Dict[type, str] = {}

    def __init__(self, target, obs: Optional[Observer] = None) -> None:
        self.target = target
        self.obs = obs if obs is not None else NULL_OBSERVER

    def handles(self, message) -> bool:
        """True when this handler routes ``message``'s type."""
        return type(message) in self.table

    def handle(self, message):
        """Dispatch ``message`` to its handler; returns the reply.

        Replies may be ``None`` (``PublishFiles``) or a bare bool
        (``CallbackRequest``) — wrapping those into wire messages is the
        transport's business, not the handler's."""
        name = self.table.get(type(message))
        if name is None:
            raise UnroutableMessageError(
                f"unroutable {self.role} message {type(message).__name__}"
            )
        method = getattr(self.target, name)
        obs = self.obs
        if not obs.enabled:
            return method(message)
        kind = type(message).__name__
        start = obs.clock()
        reply = method(message)
        elapsed = obs.clock() - start
        obs.count(f"protocol/{self.role}/{kind}")
        obs.hist(
            f"protocol/{self.role}/handle_s/{kind}", elapsed, LATENCY_BOUNDS_S
        )
        return reply


class ServerProtocolHandler(ProtocolHandler):
    """Dispatch for one :class:`~repro.edonkey.server.Server`."""

    role = "server"
    table = SERVER_HANDLERS

    @property
    def server(self):
        return self.target


class ClientProtocolHandler(ProtocolHandler):
    """Dispatch for one :class:`~repro.edonkey.client.Client`."""

    role = "client"
    table = CLIENT_HANDLERS

    @property
    def client(self):
        return self.target
