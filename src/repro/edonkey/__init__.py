"""eDonkey network simulation substrate.

This package implements the system the paper *measured*: a scaled-down but
protocol-faithful eDonkey network — index servers, clients, the hash scheme
(MD4 per RFC 1320 plus 9.5 MB block hashing), message-level client/server
and client/client interactions — and the *crawler* the authors built on top
of MLdonkey, including the parts the paper calls out explicitly:

- servers answer ``query-users`` nickname searches only if they implement
  the (old) feature, and cap replies at 200 users;
- the crawler sweeps nickname queries from ``"aaa"`` to ``"zzz"``;
- firewalled ("low-ID") clients are filtered out because the crawler cannot
  connect to them;
- clients may disable cache browsing, in which case the browse fails.

Running :class:`~repro.edonkey.crawler.Crawler` over a simulated network
produces a :class:`~repro.trace.model.Trace` — the same artefact the
synthetic generator emits — so the whole analysis pipeline can run
end-to-end against the protocol-level substrate.
"""

from repro.edonkey.client import Client, ClientConfig
from repro.edonkey.crawler import Crawler, CrawlerConfig
from repro.edonkey.hashing import BLOCK_SIZE, ed2k_hash, block_hashes
from repro.edonkey.md4 import MD4, md4_hex
from repro.edonkey.network import Network, NetworkConfig, build_network
from repro.edonkey.server import Server, ServerConfig

__all__ = [
    "BLOCK_SIZE",
    "Client",
    "ClientConfig",
    "Crawler",
    "CrawlerConfig",
    "MD4",
    "Network",
    "NetworkConfig",
    "Server",
    "ServerConfig",
    "block_hashes",
    "build_network",
    "ed2k_hash",
    "md4_hex",
]
