"""Semantic links in the eDonkey client — the paper's announced follow-up.

The conclusion of the paper: *"We have now started an implementation of
semantic links in an eDonkey client, MLdonkey, and will soon report
results on their efficiency."*  This module is that client, built on the
protocol substrate: a :class:`SemanticClient` keeps a bounded list of
semantic neighbours (any strategy from :mod:`repro.core.neighbours`) and
tries them — with direct ``FileStatusRequest`` probes — *before* asking
the server for sources.  Every successful download feeds the uploader
back into the list.

:class:`LiveSemanticSimulation` drives a whole network of such clients
day by day and measures what the design brief cares about: the fraction
of lookups the index server never sees, and how fast it grows as the
lists warm up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.neighbours import NeighbourStrategy, make_strategy
from repro.edonkey.client import Client, ClientConfig
from repro.edonkey.messages import FileDescription, FileStatusRequest
from repro.util.cdf import Series
from repro.util.rng import RngStream
from repro.util.validation import check_positive


@dataclass
class SemanticStats:
    """Per-client lookup accounting."""

    lookups: int = 0
    semantic_hits: int = 0  # found via a semantic neighbour, no server
    server_lookups: int = 0  # had to fall back to the server
    downloads_ok: int = 0
    downloads_failed: int = 0
    probe_failures: int = 0  # neighbour probes that got no answer
    neighbours_evicted: int = 0  # dead neighbours dropped from the list

    @property
    def server_avoidance(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.semantic_hits / self.lookups


class SemanticClient(Client):
    """An eDonkey client with a semantic neighbour list.

    ``strategy`` is any non-random strategy name from
    :mod:`repro.core.neighbours` (``lru``, ``history``, ``popularity``).

    ``dead_after`` enables dead-neighbour detection: a neighbour whose
    probes go unanswered (offline, crashed, firewalled, or lost to the
    fault layer) that many times *consecutively* is evicted from the
    list, making room for reachable peers.  ``None`` disables it.
    """

    def __init__(
        self,
        client_id: int,
        nickname: str,
        config: Optional[ClientConfig] = None,
        strategy: str = "lru",
        list_size: int = 10,
        dead_after: Optional[int] = None,
    ) -> None:
        super().__init__(client_id, nickname, config)
        if strategy == "random":
            raise ValueError(
                "the random benchmark strategy is simulation-only; a live "
                "client needs a learnable list (lru/history/popularity)"
            )
        if dead_after is not None:
            check_positive("dead_after", dead_after)
        self.neighbour_list: NeighbourStrategy = make_strategy(strategy, list_size)
        self.semantic_stats = SemanticStats()
        self.dead_after = dead_after
        self._probe_strikes: Dict[int, int] = {}

    # ------------------------------------------------------------------

    def _probe_neighbours(self, transport, file_id: str) -> Optional[int]:
        """Ask semantic neighbours directly whether they share ``file_id``.

        An unanswered probe counts a strike against the neighbour; any
        answer (even "I don't have it") clears its strikes."""
        for neighbour in list(self.neighbour_list.ordered()):
            status = transport.to_client(neighbour, FileStatusRequest(file_id=file_id))
            if status is None:
                self._record_probe_failure(neighbour)
                continue
            self._probe_strikes.pop(neighbour, None)
            if status.available:
                return neighbour
        return None

    def _record_probe_failure(self, neighbour: int) -> None:
        self.semantic_stats.probe_failures += 1
        if self.dead_after is None:
            return
        strikes = self._probe_strikes.get(neighbour, 0) + 1
        if strikes >= self.dead_after:
            self.neighbour_list.evict(neighbour)
            self._probe_strikes.pop(neighbour, None)
            self.semantic_stats.neighbours_evicted += 1
        else:
            self._probe_strikes[neighbour] = strikes

    def locate_and_download(self, transport, description: FileDescription) -> bool:
        """The semantic lookup path: neighbours first, server second.

        Returns True when the file was downloaded and verified.  The
        uploader — semantic or server-found — is recorded in the
        neighbour list either way, which is how the list bootstraps.
        """
        stats = self.semantic_stats
        stats.lookups += 1

        source = self._probe_neighbours(transport, description.file_id)
        if source is not None:
            stats.semantic_hits += 1
            sources = [source]
            popularity = 1
        else:
            stats.server_lookups += 1
            if self.server_id is None:
                # Orphaned by a server crash with no surviving server to
                # re-home to: the fallback path is gone this round.
                stats.downloads_failed += 1
                return False
            sources = self.find_sources(transport, description.file_id)
            popularity = len(sources)
            if not sources:
                stats.downloads_failed += 1
                return False

        ok = self.download(transport, description, sources=sources)
        if ok:
            stats.downloads_ok += 1
            self.neighbour_list.record_upload(
                sources[0], popularity=max(1, popularity)
            )
        else:
            stats.downloads_failed += 1
        return ok


@dataclass
class LiveSemanticConfig:
    """Day loop parameters for the live simulation."""

    days: int = 10
    requests_per_client_per_day: int = 3
    strategy: str = "lru"
    list_size: int = 10
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("days", self.days)
        check_positive("requests_per_client_per_day", self.requests_per_client_per_day)
        check_positive("list_size", self.list_size)


@dataclass
class LiveSemanticResult:
    """Outcome of a live run."""

    avoidance_by_day: Series
    total_lookups: int
    total_semantic_hits: int
    total_server_lookups: int
    download_success_rate: float
    per_client_stats: Dict[int, SemanticStats] = field(default_factory=dict)

    @property
    def final_avoidance(self) -> float:
        return self.avoidance_by_day.ys[-1] / 100.0 if self.avoidance_by_day.ys else 0.0

    @property
    def overall_avoidance(self) -> float:
        if self.total_lookups == 0:
            return 0.0
        return self.total_semantic_hits / self.total_lookups


class LiveSemanticSimulation:
    """Drives a network of :class:`SemanticClient` peers day by day.

    The network must have been built with semantic clients (see
    ``NetworkConfig.semantic_clients``).  Each day, every non-free-riding
    client issues a few requests for files drawn from its interest
    profile and resolves them through the semantic path; then the network
    advances a day (churn + republish).
    """

    def __init__(self, network, config: Optional[LiveSemanticConfig] = None) -> None:
        self.network = network
        self.config = config or LiveSemanticConfig()
        self.rng = RngStream(self.config.seed, "live-semantic")
        self._clients: List[SemanticClient] = [
            client
            for client in network.clients.values()
            if isinstance(client, SemanticClient)
        ]
        if not self._clients:
            raise ValueError(
                "network has no SemanticClient peers; build it with "
                "NetworkConfig(semantic_clients=True)"
            )
        self._profiles = {
            p.meta.client_id: p for p in network.generator.profiles
        }

    def _requesters(self) -> List[SemanticClient]:
        return [
            client
            for client in self._clients
            if not self._profiles[client.client_id].free_rider
            and not client.config.firewalled
        ]

    def _draw_request(self, client: SemanticClient, day: int) -> Optional[FileDescription]:
        profile = self._profiles[client.client_id]
        generator = self.network.generator
        exclude = {
            i
            for i in range(len(generator.files))
            if generator.files[i].file_id in client.cache
        }
        rng = self.rng.child(f"req[{client.client_id}/{day}]")
        index = generator.draw_request(profile, day, rng, exclude)
        if index is None:
            return None
        meta = generator.file_meta(index)
        return FileDescription(
            file_id=meta.file_id,
            name=meta.name or meta.file_id,
            size=meta.size,
            kind=meta.kind,
        )

    def run(self) -> LiveSemanticResult:
        avoidance = Series(name="server avoidance (%)")
        for day_offset in range(self.config.days):
            day = self.network.day
            day_lookups = 0
            day_semantic = 0
            for client in self._requesters():
                for _ in range(self.config.requests_per_client_per_day):
                    description = self._draw_request(client, day)
                    if description is None:
                        continue
                    before = client.semantic_stats.semantic_hits
                    client.locate_and_download(self.network, description)
                    day_lookups += 1
                    if client.semantic_stats.semantic_hits > before:
                        day_semantic += 1
            if day_lookups:
                avoidance.append(day_offset, 100.0 * day_semantic / day_lookups)
            self.network.advance_day()

        total_lookups = sum(c.semantic_stats.lookups for c in self._clients)
        total_semantic = sum(c.semantic_stats.semantic_hits for c in self._clients)
        total_server = sum(c.semantic_stats.server_lookups for c in self._clients)
        ok = sum(c.semantic_stats.downloads_ok for c in self._clients)
        failed = sum(c.semantic_stats.downloads_failed for c in self._clients)
        return LiveSemanticResult(
            avoidance_by_day=avoidance,
            total_lookups=total_lookups,
            total_semantic_hits=total_semantic,
            total_server_lookups=total_server,
            download_success_rate=ok / max(1, ok + failed),
            per_client_stats={
                c.client_id: c.semantic_stats for c in self._clients
            },
        )
