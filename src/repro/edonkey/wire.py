"""Versioned wire codec for the eDonkey message plane (``repro.wire/1``).

The simulator routes :mod:`repro.edonkey.messages` dataclasses as Python
objects; service mode (``repro serve``) sends the same dataclasses over
TCP.  This module is the codec layer between the two: every message
dataclass encodes to a canonical JSON document and back, byte-exactly,
with strict validation on decode — a malformed peer cannot smuggle an
unexpected type or field into a handler.

Wire format
-----------

A *frame* is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON (pure ASCII as emitted)::

    +--------------+----------------------------------------------+
    | length (4B)  | {"fields":{...},"seq":0,"type":"...","v":...}|
    +--------------+----------------------------------------------+

The payload document carries four keys, always all present:

- ``v``      — the schema version string, :data:`WIRE_SCHEMA`;
- ``seq``    — an optional per-connection sequence number (``null`` when
  unused).  Replies echo the request's ``seq`` so a transport can match
  replies to requests even when the fault injector suppresses some;
- ``type``   — the message dataclass name (``SearchRequest``, ...);
- ``fields`` — the dataclass fields, encoded recursively.

Field encoding is driven by the dataclass type annotations: primitives
pass through, ``bytes`` become ``{"$bytes": "<hex>"}``, tuples become
JSON arrays (rebuilt as tuples on decode), and nested message
dataclasses — :class:`~repro.edonkey.messages.FileDescription`, the
:class:`~repro.edonkey.messages.Query` expression tree — become
``{"$type": "<Name>", "fields": {...}}`` envelopes.  JSON is emitted
with sorted keys and compact separators, so ``encode → decode → encode``
reproduces the original bytes exactly.

Strictness: unknown message types, unknown or missing fields, wrong
primitive types, bad hex, schema-version mismatches, zero-length,
truncated and oversized frames all raise :class:`WireError` (a
``ValueError``) with a message naming the offence.

The module deliberately imports neither ``asyncio`` nor anything heavy:
the async helpers (:func:`read_frame` / :func:`write_frame`) duck-type
against ``StreamReader``/``StreamWriter`` and catch ``EOFError`` (the
base class of ``asyncio.IncompleteReadError``), so importing the codec
keeps the CLI's cold-import baseline asyncio-free.
"""

from __future__ import annotations

import dataclasses
import json
import struct
import typing
from typing import Any, Dict, List, Optional, Tuple, Type

from repro.edonkey import messages as _messages
from repro.edonkey.messages import Query

#: Version tag carried in every frame payload.
WIRE_SCHEMA = "repro.wire/1"

#: Hard ceiling on one frame's payload size.  Far above any legitimate
#: reply (a 200-result SearchReply is a few hundred KB) but small enough
#: that a garbage length prefix cannot make a reader allocate gigabytes.
MAX_FRAME_BYTES = 4 * 1024 * 1024

_HEADER = struct.Struct(">I")

#: Size of the length prefix in bytes.
HEADER_BYTES = _HEADER.size


class WireError(ValueError):
    """A frame or payload that violates ``repro.wire/1``."""


def _build_registry() -> Dict[str, type]:
    """Every dataclass defined in :mod:`repro.edonkey.messages`.

    Built by introspection so a newly added message automatically joins
    the codec; the round-trip test suite asserts the registry is
    exhaustive against the same introspection.
    """
    registry: Dict[str, type] = {}
    for name in dir(_messages):
        obj = getattr(_messages, name)
        if (
            isinstance(obj, type)
            and dataclasses.is_dataclass(obj)
            and obj.__module__ == _messages.__name__
        ):
            registry[obj.__name__] = obj
    return registry


#: ``name -> dataclass`` for every encodable message type.
MESSAGE_TYPES: Dict[str, type] = _build_registry()

# Resolved type hints per dataclass, computed once (get_type_hints has
# to evaluate the module's postponed annotations).
_HINTS: Dict[type, Dict[str, Any]] = {}


def _hints(cls: type) -> Dict[str, Any]:
    hints = _HINTS.get(cls)
    if hints is None:
        hints = _HINTS[cls] = typing.get_type_hints(cls)
    return hints


# ----------------------------------------------------------------------
# Encoding


def _encode_value(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, bytes):
        return {"$bytes": value.hex()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        if MESSAGE_TYPES.get(cls.__name__) is not cls:
            raise WireError(
                f"cannot encode unregistered dataclass {cls.__name__}"
            )
        return {"$type": cls.__name__, "fields": _encode_fields(value)}
    if isinstance(value, (list, tuple)):
        return [_encode_value(item) for item in value]
    if isinstance(value, dict):
        encoded: Dict[str, Any] = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise WireError(
                    f"cannot encode dict key of type {type(key).__name__}"
                )
            encoded[key] = _encode_value(item)
        return encoded
    raise WireError(f"cannot encode value of type {type(value).__name__}")


def _encode_fields(message: Any) -> Dict[str, Any]:
    return {
        f.name: _encode_value(getattr(message, f.name))
        for f in dataclasses.fields(message)
    }


def encode_payload(message: Any, seq: Optional[int] = None) -> bytes:
    """The canonical JSON payload bytes for one message (no framing)."""
    cls = type(message)
    if MESSAGE_TYPES.get(cls.__name__) is not cls:
        raise WireError(f"cannot encode non-message type {cls.__name__}")
    if seq is not None and (isinstance(seq, bool) or not isinstance(seq, int)):
        raise WireError(f"seq must be an int or None, got {seq!r}")
    document = {
        "v": WIRE_SCHEMA,
        "seq": seq,
        "type": cls.__name__,
        "fields": _encode_fields(message),
    }
    return json.dumps(
        document,
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
    ).encode("ascii")


def encode_frame(message: Any, seq: Optional[int] = None) -> bytes:
    """One length-prefixed frame carrying ``message``."""
    payload = encode_payload(message, seq=seq)
    if len(payload) > MAX_FRAME_BYTES:
        raise WireError(
            f"oversized frame: payload is {len(payload)} bytes "
            f"(limit {MAX_FRAME_BYTES})"
        )
    return _HEADER.pack(len(payload)) + payload


# ----------------------------------------------------------------------
# Decoding


def _type_name(hint: Any) -> str:
    return getattr(hint, "__name__", None) or str(hint)


def _decode_value(value: Any, hint: Any, where: str) -> Any:
    origin = typing.get_origin(hint)
    if origin is typing.Union:
        args = typing.get_args(hint)
        if value is None and type(None) in args:
            return None
        concrete = [a for a in args if a is not type(None)]
        if len(concrete) != 1:
            raise WireError(f"{where}: unsupported union annotation {hint!r}")
        return _decode_value(value, concrete[0], where)
    if hint is bool:
        if not isinstance(value, bool):
            raise WireError(
                f"{where}: expected bool, got {type(value).__name__}"
            )
        return value
    if hint is int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise WireError(
                f"{where}: expected int, got {type(value).__name__}"
            )
        return value
    if hint is float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise WireError(
                f"{where}: expected float, got {type(value).__name__}"
            )
        return float(value)
    if hint is str:
        if not isinstance(value, str):
            raise WireError(
                f"{where}: expected str, got {type(value).__name__}"
            )
        return value
    if hint is bytes:
        if (
            not isinstance(value, dict)
            or set(value) != {"$bytes"}
            or not isinstance(value["$bytes"], str)
        ):
            raise WireError(f"{where}: expected a {{'$bytes': hex}} object")
        try:
            return bytes.fromhex(value["$bytes"])
        except ValueError as exc:
            raise WireError(f"{where}: bad hex in $bytes: {exc}") from None
    if origin is list:
        (item_hint,) = typing.get_args(hint)
        if not isinstance(value, list):
            raise WireError(
                f"{where}: expected list, got {type(value).__name__}"
            )
        return [
            _decode_value(item, item_hint, f"{where}[{index}]")
            for index, item in enumerate(value)
        ]
    if origin is tuple:
        args = typing.get_args(hint)
        if not isinstance(value, list):
            raise WireError(
                f"{where}: expected list, got {type(value).__name__}"
            )
        if len(args) == 2 and args[1] is Ellipsis:
            return tuple(
                _decode_value(item, args[0], f"{where}[{index}]")
                for index, item in enumerate(value)
            )
        if len(value) != len(args):
            raise WireError(
                f"{where}: expected {len(args)} elements, got {len(value)}"
            )
        return tuple(
            _decode_value(item, item_hint, f"{where}[{index}]")
            for index, (item, item_hint) in enumerate(zip(value, args))
        )
    if origin is dict:
        key_hint, value_hint = typing.get_args(hint)
        if key_hint is not str:
            raise WireError(f"{where}: unsupported dict key type {key_hint!r}")
        if not isinstance(value, dict):
            raise WireError(
                f"{where}: expected object, got {type(value).__name__}"
            )
        return {
            key: _decode_value(item, value_hint, f"{where}[{key!r}]")
            for key, item in value.items()
        }
    if isinstance(hint, type) and (
        dataclasses.is_dataclass(hint) or issubclass(hint, Query)
    ):
        return _decode_envelope(value, expected=hint, where=where)
    raise WireError(f"{where}: unsupported annotation {_type_name(hint)}")


def _decode_envelope(value: Any, expected: Optional[type], where: str) -> Any:
    """Decode a ``{"$type": ..., "fields": ...}`` nested-message object."""
    if not isinstance(value, dict) or set(value) != {"$type", "fields"}:
        raise WireError(
            f"{where}: expected a {{'$type', 'fields'}} message object"
        )
    name = value["$type"]
    if not isinstance(name, str):
        raise WireError(f"{where}: $type must be a string")
    cls = MESSAGE_TYPES.get(name)
    if cls is None:
        raise WireError(f"{where}: unknown message type {name!r}")
    if expected is not None and not issubclass(cls, expected):
        raise WireError(
            f"{where}: {name} is not a {_type_name(expected)}"
        )
    return _decode_fields(cls, value["fields"], where=f"{where}.{name}")


def _decode_fields(cls: type, fields: Any, where: str) -> Any:
    if not isinstance(fields, dict):
        raise WireError(f"{where}: fields must be an object")
    declared = dataclasses.fields(cls)
    declared_names = {f.name for f in declared}
    unknown = sorted(set(fields) - declared_names)
    if unknown:
        raise WireError(f"{where}: unknown fields {unknown}")
    missing = sorted(declared_names - set(fields))
    if missing:
        raise WireError(f"{where}: missing fields {missing}")
    hints = _hints(cls)
    kwargs = {
        f.name: _decode_value(fields[f.name], hints[f.name], f"{where}.{f.name}")
        for f in declared
    }
    try:
        return cls(**kwargs)
    except (TypeError, ValueError) as exc:
        raise WireError(f"{where}: invalid field values: {exc}") from exc


def decode_payload(data: bytes) -> Tuple[Any, Optional[int]]:
    """Decode one frame payload; returns ``(message, seq)``."""
    try:
        document = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise WireError(f"undecodable frame payload: {exc}") from None
    if not isinstance(document, dict):
        raise WireError("frame payload must be a JSON object")
    expected_keys = {"v", "seq", "type", "fields"}
    if set(document) != expected_keys:
        raise WireError(
            f"frame payload must carry exactly {sorted(expected_keys)}, "
            f"got {sorted(document)}"
        )
    if document["v"] != WIRE_SCHEMA:
        raise WireError(
            f"unsupported wire schema {document['v']!r} "
            f"(this build speaks {WIRE_SCHEMA})"
        )
    seq = document["seq"]
    if seq is not None and (isinstance(seq, bool) or not isinstance(seq, int)):
        raise WireError(f"seq must be an int or null, got {seq!r}")
    name = document["type"]
    if not isinstance(name, str):
        raise WireError("type must be a string")
    cls = MESSAGE_TYPES.get(name)
    if cls is None:
        raise WireError(f"unknown message type {name!r}")
    message = _decode_fields(cls, document["fields"], where=name)
    return message, seq


def frame_length(header: bytes) -> int:
    """Validate a 4-byte length prefix and return the payload length."""
    if len(header) != HEADER_BYTES:
        raise WireError(
            f"truncated frame header: got {len(header)} of "
            f"{HEADER_BYTES} bytes"
        )
    (length,) = _HEADER.unpack(header)
    if length == 0:
        raise WireError("zero-length frame")
    if length > MAX_FRAME_BYTES:
        raise WireError(
            f"oversized frame: header declares {length} bytes "
            f"(limit {MAX_FRAME_BYTES})"
        )
    return length


def decode_frame(
    buffer: bytes, offset: int = 0
) -> Optional[Tuple[Any, Optional[int], int]]:
    """Decode the frame at ``offset``; ``(message, seq, next_offset)``.

    Returns ``None`` when the buffer holds only part of a frame (more
    bytes are needed); raises :class:`WireError` on an invalid one.
    """
    remaining = len(buffer) - offset
    if remaining < HEADER_BYTES:
        return None
    length = frame_length(bytes(buffer[offset : offset + HEADER_BYTES]))
    if remaining - HEADER_BYTES < length:
        return None
    start = offset + HEADER_BYTES
    message, seq = decode_payload(bytes(buffer[start : start + length]))
    return message, seq, start + length


def decode_frames(data: bytes) -> List[Tuple[Any, Optional[int]]]:
    """Decode a complete byte string into its frames, strictly.

    Trailing partial frames are an error here (the stream readers use
    :func:`decode_frame` for incremental parsing): a closed connection
    that left half a frame behind surfaces as ``WireError`` rather than
    silent truncation.
    """
    frames: List[Tuple[Any, Optional[int]]] = []
    offset = 0
    while offset < len(data):
        step = decode_frame(data, offset)
        if step is None:
            raise WireError(
                f"truncated frame at byte {offset}: "
                f"{len(data) - offset} trailing bytes"
            )
        message, seq, offset = step
        frames.append((message, seq))
    return frames


# ----------------------------------------------------------------------
# Async stream helpers (duck-typed; no asyncio import)


async def read_frame(reader) -> Optional[Tuple[Any, Optional[int]]]:
    """Read one frame from an ``asyncio.StreamReader``-like object.

    Returns ``(message, seq)``, or ``None`` on a clean EOF at a frame
    boundary.  EOF inside a frame raises :class:`WireError` — the peer
    hung up mid-message.  (``asyncio.IncompleteReadError`` is an
    ``EOFError``, so the codec stays importable without asyncio.)
    """
    try:
        header = await reader.readexactly(HEADER_BYTES)
    except EOFError as exc:
        if getattr(exc, "partial", b""):
            raise WireError(
                "truncated frame: connection closed mid-header"
            ) from None
        return None
    length = frame_length(header)
    try:
        payload = await reader.readexactly(length)
    except EOFError:
        raise WireError(
            f"truncated frame: connection closed before {length} "
            "payload bytes arrived"
        ) from None
    return decode_payload(payload)


async def write_frame(writer, message: Any, seq: Optional[int] = None) -> None:
    """Write one frame to an ``asyncio.StreamWriter``-like object."""
    writer.write(encode_frame(message, seq=seq))
    await writer.drain()
