"""The eDonkey index server.

First-tier node of the hybrid architecture (Section 2.1): indexes the files
published by connected clients, answers keyword/range searches and source
queries, propagates the server list, and — on old versions only — answers
``query-users`` nickname searches with at most 200 users per reply.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.edonkey.messages import (
    BrowseReply,
    BrowseUser,
    CallbackRequest,
    ConnectReply,
    ConnectRequest,
    FileDescription,
    PublishFiles,
    QuerySources,
    QueryUsers,
    SearchReply,
    SearchRequest,
    ServerListReply,
    ServerListRequest,
    SourcesReply,
    UdpSearchRequest,
    UsersReply,
)
from repro.util.validation import check_positive


@dataclass
class ServerConfig:
    """Server capabilities and limits.

    ``supports_query_users`` models the version split the paper relies on:
    old servers implement nickname search, new ones do not.
    """

    max_users: int = 200_000
    reply_limit: int = 200
    supports_query_users: bool = True

    def __post_init__(self) -> None:
        check_positive("max_users", self.max_users)
        check_positive("reply_limit", self.reply_limit)


@dataclass
class _Session:
    nickname: str
    firewalled: bool
    files: Dict[str, FileDescription] = field(default_factory=dict)


class Server:
    """An index server: sessions, file index, keyword index, server list."""

    def __init__(self, server_id: int, config: Optional[ServerConfig] = None) -> None:
        self.server_id = server_id
        self.config = config or ServerConfig()
        self._sessions: Dict[int, _Session] = {}
        self._sources: Dict[str, Set[int]] = {}  # file_id -> client ids
        self._keywords: Dict[str, Set[str]] = {}  # token -> file ids
        self._descriptions: Dict[str, FileDescription] = {}
        self._nick_trigrams: Dict[str, Set[int]] = {}  # trigram -> client ids
        self.known_servers: Set[int] = {server_id}

    # ------------------------------------------------------------------
    # Session management

    @property
    def num_users(self) -> int:
        return len(self._sessions)

    def connected(self, client_id: int) -> bool:
        return client_id in self._sessions

    def handle_connect(self, msg: ConnectRequest) -> ConnectReply:
        if len(self._sessions) >= self.config.max_users:
            return ConnectReply(accepted=False, reason="server full")
        self._sessions[msg.client_id] = _Session(
            nickname=msg.nickname, firewalled=msg.firewalled
        )
        for trigram in _trigrams(msg.nickname):
            self._nick_trigrams.setdefault(trigram, set()).add(msg.client_id)
        return ConnectReply(accepted=True, server_list=sorted(self.known_servers))

    def crash(self) -> None:
        """Lose all volatile state (sessions and indexes).

        Models a server process dying: the server-list gossip survives
        (it is how a restarted server rejoins), but every session, file
        index, keyword index and nickname index is gone.  Clients must
        re-connect and re-publish for the server to index them again.
        """
        self._sessions.clear()
        self._sources.clear()
        self._keywords.clear()
        self._descriptions.clear()
        self._nick_trigrams.clear()

    def handle_disconnect(self, client_id: int) -> None:
        session = self._sessions.pop(client_id, None)
        if session is None:
            return
        for trigram in _trigrams(session.nickname):
            bucket = self._nick_trigrams.get(trigram)
            if bucket is not None:
                bucket.discard(client_id)
                if not bucket:
                    del self._nick_trigrams[trigram]
        for file_id in session.files:
            self._remove_source(file_id, client_id)

    def _remove_source(self, file_id: str, client_id: int) -> None:
        sources = self._sources.get(file_id)
        if not sources:
            return
        sources.discard(client_id)
        if not sources:
            del self._sources[file_id]
            desc = self._descriptions.pop(file_id, None)
            if desc is not None:
                for token in desc.tokens():
                    bucket = self._keywords.get(token)
                    if bucket is not None:
                        bucket.discard(file_id)
                        if not bucket:
                            del self._keywords[token]

    # ------------------------------------------------------------------
    # Publishing and search

    def handle_publish(self, msg: PublishFiles) -> None:
        session = self._sessions.get(msg.client_id)
        if session is None:
            raise KeyError(f"client {msg.client_id} not connected")
        # Re-publication replaces the previous list.
        for file_id in list(session.files):
            self._remove_source(file_id, msg.client_id)
        session.files = {}
        for desc in msg.files:
            session.files[desc.file_id] = desc
            self._sources.setdefault(desc.file_id, set()).add(msg.client_id)
            if desc.file_id not in self._descriptions:
                self._descriptions[desc.file_id] = desc
                for token in desc.tokens():
                    self._keywords.setdefault(token, set()).add(desc.file_id)

    def handle_search(self, msg: SearchRequest) -> SearchReply:
        # Narrow the candidate set with the keyword index when the query has
        # a top-level Keyword / And-of-Keyword structure; otherwise scan.
        candidates = self._candidate_ids(msg.query)
        results: List[FileDescription] = []
        truncated = False
        for file_id in sorted(candidates):
            desc = self._descriptions.get(file_id)
            if desc is None or not msg.query.matches(desc):
                continue
            if len(results) >= msg.limit:
                truncated = True
                break
            results.append(desc)
        return SearchReply(results=results, truncated=truncated)

    def _candidate_ids(self, query) -> Set[str]:
        from repro.edonkey.messages import And, Keyword

        if isinstance(query, Keyword) and query.field is None:
            return set(self._keywords.get(query.term.lower(), set()))
        if isinstance(query, And):
            narrowed: Optional[Set[str]] = None
            for part in query.parts:
                if isinstance(part, Keyword) and part.field is None:
                    bucket = self._keywords.get(part.term.lower(), set())
                    narrowed = (
                        set(bucket) if narrowed is None else narrowed & bucket
                    )
            if narrowed is not None:
                return narrowed
        return set(self._descriptions)

    def handle_query_sources(self, msg: QuerySources) -> SourcesReply:
        sources = sorted(self._sources.get(msg.file_id, set()))
        return SourcesReply(file_id=msg.file_id, sources=sources[: self.config.reply_limit])

    def handle_udp_search(self, msg: UdpSearchRequest) -> SearchReply:
        """A UDP query from a non-connected client: same index lookup,
        smaller reply budget (UDP datagrams are small)."""
        return self.handle_search(
            SearchRequest(client_id=msg.client_id, query=msg.query, limit=msg.limit)
        )

    def handle_callback(self, msg: CallbackRequest, network=None) -> bool:
        """Forward a callback request to a connected firewalled client.

        Returns True when the target is a connected session (the network
        then lets the requester reach it once through
        :meth:`~repro.edonkey.network.Network.callback_to_client`).  The
        ``network`` parameter is vestigial — the handler only consults
        its own session table — and defaults to ``None`` so the
        transport-independent dispatch can call every handler with the
        message alone."""
        return msg.target_id in self._sessions

    def handle_browse_user(self, msg: BrowseUser) -> BrowseReply:
        """Server-mediated browse (service mode): list the target's
        published files from its session, in publish order — the same
        order a direct :class:`~repro.edonkey.messages.BrowseRequest`
        to the client would return them in."""
        session = self._sessions.get(msg.target_id)
        if session is None:
            return BrowseReply(allowed=False)
        return BrowseReply(allowed=True, files=list(session.files.values()))

    # ------------------------------------------------------------------
    # Nickname search (the crawler's entry point)

    def handle_query_users(self, msg: QueryUsers) -> UsersReply:
        if not self.config.supports_query_users:
            return UsersReply(users=[], supported=False)
        pattern = msg.pattern.lower()
        # Patterns of length >= 3 go through the trigram index (the sweep
        # sends 26^3 of them); shorter patterns fall back to a full scan.
        if len(pattern) >= 3:
            candidates = sorted(self._nick_trigrams.get(pattern[:3], set()))
        else:
            candidates = sorted(self._sessions)
        matches: List[Tuple[int, str, bool]] = []
        truncated = False
        for client_id in candidates:
            session = self._sessions.get(client_id)
            if session is None:
                continue
            if pattern in session.nickname.lower():
                if len(matches) >= self.config.reply_limit:
                    truncated = True
                    break
                matches.append((client_id, session.nickname, session.firewalled))
        return UsersReply(users=matches, supported=True, truncated=truncated)

    # ------------------------------------------------------------------
    # Server list gossip (the only data communicated between servers)

    def handle_server_list(self, _msg: ServerListRequest) -> ServerListReply:
        return ServerListReply(servers=sorted(self.known_servers))

    def learn_servers(self, server_ids) -> None:
        self.known_servers.update(server_ids)

    # ------------------------------------------------------------------
    # Self-checks

    def check_invariants(self) -> List[str]:
        """Cross-check the internal indexes; returns problems (empty = ok).

        The chaos harness runs this after every resumed day: a checkpoint
        that restored sessions without their index entries (or vice
        versa) shows up here rather than as a silently wrong trace.
        """
        problems: List[str] = []
        tag = f"server {self.server_id}"
        for client_id, session in self._sessions.items():
            for file_id in session.files:
                sources = self._sources.get(file_id, set())
                if client_id not in sources:
                    problems.append(
                        f"{tag}: session {client_id} publishes {file_id!r} "
                        "but is missing from its source set"
                    )
        for file_id, sources in self._sources.items():
            if not sources:
                problems.append(f"{tag}: empty source set for {file_id!r}")
            if file_id not in self._descriptions:
                problems.append(
                    f"{tag}: sourced file {file_id!r} has no description"
                )
            for client_id in sources:
                session = self._sessions.get(client_id)
                if session is None:
                    problems.append(
                        f"{tag}: source {client_id} of {file_id!r} has no "
                        "session"
                    )
                elif file_id not in session.files:
                    problems.append(
                        f"{tag}: source {client_id} of {file_id!r} does not "
                        "publish it"
                    )
        for file_id in self._descriptions:
            if file_id not in self._sources:
                problems.append(
                    f"{tag}: described file {file_id!r} has no sources"
                )
        for token, bucket in self._keywords.items():
            for file_id in bucket:
                if file_id not in self._descriptions:
                    problems.append(
                        f"{tag}: keyword {token!r} indexes unknown file "
                        f"{file_id!r}"
                    )
        for trigram, bucket in self._nick_trigrams.items():
            for client_id in bucket:
                session = self._sessions.get(client_id)
                if session is None:
                    problems.append(
                        f"{tag}: nickname trigram {trigram!r} references "
                        f"disconnected client {client_id}"
                    )
                elif trigram not in _trigrams(session.nickname):
                    problems.append(
                        f"{tag}: trigram {trigram!r} does not occur in "
                        f"nickname of client {client_id}"
                    )
        return problems


def _trigrams(nickname: str) -> Set[str]:
    lowered = nickname.lower()
    if len(lowered) < 3:
        return set()
    return {lowered[i : i + 3] for i in range(len(lowered) - 2)}
