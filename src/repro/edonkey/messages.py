"""eDonkey protocol messages and the server-side query language.

The paper (Section 2.1) describes the client/server protocol surface this
module models:

- clients publish their cache contents on connect;
- queries may combine keyword searches on meta-data fields, range queries on
  size / bit-rate / availability, and ``and`` / ``or`` / ``not`` operators;
- clients query servers for *sources* of a file id;
- old servers implement ``query-users`` (search users by nickname), capped
  at 200 results per reply;
- clients can *browse* one another (list shared files) unless disabled.

Messages are plain dataclasses routed by :class:`~repro.edonkey.network.Network`;
queries are a small expression tree evaluated against published file
descriptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

# ----------------------------------------------------------------------
# Published file descriptions


@dataclass(frozen=True)
class FileDescription:
    """What a client publishes about one shared file."""

    file_id: str
    name: str
    size: int
    kind: str = "unknown"
    tags: Tuple[str, ...] = ()
    availability: int = 1  # complete sources known to the publisher
    bitrate: int = 0  # kbit/s, MP3-style meta-data (0 = not applicable)

    def tokens(self) -> List[str]:
        """Lower-cased keyword tokens for indexing (name + tags + kind)."""
        raw = self.name.replace("_", " ").replace("-", " ").replace(".", " ")
        toks = [t.lower() for t in raw.split() if t]
        toks.extend(t.lower() for t in self.tags)
        toks.append(self.kind.lower())
        return toks


# ----------------------------------------------------------------------
# Query expression tree


class Query:
    """Base class of query expressions."""

    def matches(self, desc: FileDescription) -> bool:  # pragma: no cover
        raise NotImplementedError


@dataclass(frozen=True)
class Keyword(Query):
    """Keyword match, optionally restricted to a meta-data field.

    ``field=None`` searches all tokens; ``field="kind"`` matches the content
    class; ``field="tag"`` matches tags only.
    """

    term: str
    field: Optional[str] = None

    def matches(self, desc: FileDescription) -> bool:
        term = self.term.lower()
        if self.field is None:
            return term in desc.tokens()
        if self.field == "kind":
            return desc.kind.lower() == term
        if self.field == "tag":
            return term in (t.lower() for t in desc.tags)
        if self.field == "name":
            return term in (t.lower() for t in desc.name.replace("-", " ").split())
        raise ValueError(f"unknown query field {self.field!r}")


@dataclass(frozen=True)
class SizeRange(Query):
    """Range query on file size in bytes (inclusive bounds, None = open)."""

    min_size: Optional[int] = None
    max_size: Optional[int] = None

    def matches(self, desc: FileDescription) -> bool:
        if self.min_size is not None and desc.size < self.min_size:
            return False
        if self.max_size is not None and desc.size > self.max_size:
            return False
        return True


@dataclass(frozen=True)
class AvailabilityRange(Query):
    """Range query on availability (number of known complete sources)."""

    min_avail: Optional[int] = None
    max_avail: Optional[int] = None

    def matches(self, desc: FileDescription) -> bool:
        if self.min_avail is not None and desc.availability < self.min_avail:
            return False
        if self.max_avail is not None and desc.availability > self.max_avail:
            return False
        return True


@dataclass(frozen=True)
class BitrateRange(Query):
    """Range query on MP3 bit-rate (kbit/s)."""

    min_rate: Optional[int] = None
    max_rate: Optional[int] = None

    def matches(self, desc: FileDescription) -> bool:
        if self.min_rate is not None and desc.bitrate < self.min_rate:
            return False
        if self.max_rate is not None and desc.bitrate > self.max_rate:
            return False
        return True


@dataclass(frozen=True)
class And(Query):
    parts: Tuple[Query, ...]

    def matches(self, desc: FileDescription) -> bool:
        return all(p.matches(desc) for p in self.parts)


@dataclass(frozen=True)
class Or(Query):
    parts: Tuple[Query, ...]

    def matches(self, desc: FileDescription) -> bool:
        return any(p.matches(desc) for p in self.parts)


@dataclass(frozen=True)
class Not(Query):
    part: Query

    def matches(self, desc: FileDescription) -> bool:
        return not self.part.matches(desc)


def query_and(*parts: Query) -> And:
    return And(tuple(parts))


def query_or(*parts: Query) -> Or:
    return Or(tuple(parts))


# ----------------------------------------------------------------------
# Client <-> server messages


@dataclass
class ConnectRequest:
    client_id: int
    nickname: str
    firewalled: bool


@dataclass
class ConnectReply:
    accepted: bool
    server_list: List[int] = field(default_factory=list)
    reason: str = ""


@dataclass
class PublishFiles:
    client_id: int
    files: List[FileDescription]


@dataclass
class SearchRequest:
    client_id: int
    query: Query
    limit: int = 200


@dataclass
class UdpSearchRequest:
    """Query propagated over UDP to a server the client is *not*
    connected to (Section 2.1: no broadcast exists between servers, so
    clients spray their queries at other servers themselves)."""

    client_id: int
    query: Query
    limit: int = 50  # UDP replies are kept small


@dataclass
class CallbackRequest:
    """Ask a server to force one of its firewalled clients to connect
    back to the requester (how low-ID sources become reachable)."""

    requester_id: int
    target_id: int


@dataclass
class SearchReply:
    results: List[FileDescription]
    truncated: bool = False


@dataclass
class QuerySources:
    client_id: int
    file_id: str


@dataclass
class SourcesReply:
    file_id: str
    sources: List[int]  # client ids currently publishing the file


@dataclass
class QueryUsers:
    """Nickname search — the (legacy) feature the crawler exploits."""

    pattern: str  # substring to match against nicknames


@dataclass
class UsersReply:
    users: List[Tuple[int, str, bool]]  # (client_id, nickname, firewalled)
    supported: bool = True
    truncated: bool = False


@dataclass
class ServerListRequest:
    pass


@dataclass
class ServerListReply:
    servers: List[int]


# ----------------------------------------------------------------------
# Service-mode messages (the framed TCP transport answers every request,
# and client<->client exchanges become server-mediated; the in-memory
# simulation never sends these, so adding them cannot perturb seeded runs)


@dataclass
class Ack:
    """Generic acknowledgement for requests whose handler returns no
    payload (``PublishFiles``) or a bare boolean (``CallbackRequest``)."""

    ok: bool = True


@dataclass
class ErrorReply:
    """A protocol-level error from the live service (for example a
    publish before connect), reported to the peer instead of tearing the
    connection down."""

    reason: str = ""


@dataclass
class BrowseUser:
    """Server-mediated browse: list the files ``target_id`` publishes.

    In the simulation browsing is a direct client<->client TCP exchange;
    in service mode only the index server is reachable, so the server
    answers from the target's session."""

    requester_id: int
    target_id: int


# ----------------------------------------------------------------------
# Client <-> client messages


@dataclass
class BrowseRequest:
    requester_id: int


@dataclass
class BrowseReply:
    allowed: bool
    files: List[FileDescription] = field(default_factory=list)


@dataclass
class FileStatusRequest:
    file_id: str


@dataclass
class FileStatusReply:
    available: bool
    blocks: List[bool] = field(default_factory=list)  # per-block presence


@dataclass
class BlockRequest:
    file_id: str
    block_index: int


@dataclass
class BlockReply:
    ok: bool
    checksum: bytes = b""


@dataclass
class MessageStats:
    """Counters of protocol traffic, kept by the network router."""

    sent: Dict[str, int] = field(default_factory=dict)

    def count(self, message: object) -> None:
        name = type(message).__name__
        self.sent[name] = self.sent.get(name, 0) + 1

    def total(self) -> int:
        return sum(self.sent.values())
