"""Peer contribution and file-size analyses (Figures 6 and 7).

Figure 6 plots the cumulative distribution of file sizes for files above
several popularity thresholds; Figure 7 plots the per-client CDFs of the
number of files and the disk space shared, with and without free-riders.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.trace.model import StaticTrace
from repro.util.cdf import Series, empirical_cdf


def size_cdf_by_popularity(
    trace: StaticTrace,
    popularity_thresholds: Sequence[int] = (1, 5, 10),
    max_points: int = 200,
) -> List[Series]:
    """CDFs of file size for files with popularity >= each threshold.

    Popularity here is the static replica count (distinct clients ever
    sharing the file), the paper's source-count measure.  Sizes are in KB
    to match the figure's axis.
    """
    counts = trace.replica_counts()
    out: List[Series] = []
    for threshold in popularity_thresholds:
        sizes_kb = [
            trace.files[fid].size / 1024.0
            for fid in counts
            if counts[fid] >= threshold and fid in trace.files
        ]
        series = Series(name=f"popularity >= {threshold}")
        if sizes_kb:
            xs, ps = empirical_cdf(sizes_kb)
            for x, p in _downsample(xs, ps, max_points):
                series.append(x, p)
        out.append(series)
    return out


def contribution_cdfs(
    trace: StaticTrace, max_points: int = 200
) -> Dict[str, Series]:
    """Per-client shared-files and shared-space CDFs (Figure 7).

    Returns four series keyed ``files_full``, ``files_sharers``,
    ``space_full``, ``space_sharers`` — "full" includes free-riders,
    "sharers" excludes them.  Space is in GB as in the figure.
    """
    file_counts_full: List[float] = []
    file_counts_sharers: List[float] = []
    space_full: List[float] = []
    space_sharers: List[float] = []
    for client_id, cache in trace.caches.items():
        n = len(cache)
        gb = trace.shared_bytes(client_id) / (1024.0**3)
        file_counts_full.append(n)
        space_full.append(gb)
        if n > 0:
            file_counts_sharers.append(n)
            space_sharers.append(gb)

    def to_series(name: str, samples: List[float]) -> Series:
        series = Series(name=name)
        if samples:
            xs, ps = empirical_cdf(samples)
            for x, p in _downsample(xs, ps, max_points):
                series.append(x, p)
        return series

    return {
        "files_full": to_series("Files (full)", file_counts_full),
        "files_sharers": to_series("Files (free-riders excluded)", file_counts_sharers),
        "space_full": to_series("Space (full)", space_full),
        "space_sharers": to_series("Space (free-riders excluded)", space_sharers),
    }


def temporal_contribution_cdfs(trace, max_points: int = 200) -> Dict[str, Series]:
    """Figure 7 on a *temporal* trace: per-client contribution measured as
    the mean observed cache size (and mean shared bytes) over the client's
    observation days.

    The union-over-days view (``trace.to_static()``) overstates what a
    client shares at any point in time once churn accumulates (5 adds/day
    for 56 days triples a median cache); the paper's per-client counts are
    instantaneous, so this is the faithful input for the figure.
    """
    file_counts_full: List[float] = []
    file_counts_sharers: List[float] = []
    space_full: List[float] = []
    space_sharers: List[float] = []
    for client_id in trace.clients:
        days = trace.observation_days(client_id)
        if not days:
            continue
        sizes = []
        bytes_shared = []
        for day in days:
            cache = trace.cache(client_id, day)
            sizes.append(len(cache))
            total = 0
            for fid in cache:
                meta = trace.files.get(fid)
                if meta is not None:
                    total += meta.size
            bytes_shared.append(total)
        mean_files = sum(sizes) / len(sizes)
        mean_gb = (sum(bytes_shared) / len(bytes_shared)) / (1024.0**3)
        file_counts_full.append(mean_files)
        space_full.append(mean_gb)
        if mean_files > 0:
            file_counts_sharers.append(mean_files)
            space_sharers.append(mean_gb)

    def to_series(name: str, samples: List[float]) -> Series:
        series = Series(name=name)
        if samples:
            xs, ps = empirical_cdf(samples)
            for x, p in _downsample(xs, ps, max_points):
                series.append(x, p)
        return series

    return {
        "files_full": to_series("Files (full)", file_counts_full),
        "files_sharers": to_series("Files (free-riders excluded)", file_counts_sharers),
        "space_full": to_series("Space (full)", space_full),
        "space_sharers": to_series("Space (free-riders excluded)", space_sharers),
    }


def generosity_concentration(trace: StaticTrace, top_fraction: float = 0.15) -> float:
    """Fraction of all file replicas offered by the top ``top_fraction`` of
    sharers — the paper's "top 15% peers offer 75% of the files"."""
    generosity = sorted(
        (len(cache) for cache in trace.caches.values() if cache), reverse=True
    )
    if not generosity:
        raise ValueError("trace has no sharers")
    total = sum(generosity)
    k = max(1, int(round(top_fraction * len(generosity))))
    return sum(generosity[:k]) / total


def _downsample(xs: np.ndarray, ps: np.ndarray, max_points: int):
    """Evenly thin a CDF to ``max_points`` (keeps first and last points)."""
    n = len(xs)
    if n <= max_points:
        idxs = range(n)
    else:
        step = (n - 1) / (max_points - 1)
        idxs = sorted({int(round(i * step)) for i in range(max_points)})
    for i in idxs:
        yield float(xs[i]), float(ps[i])
