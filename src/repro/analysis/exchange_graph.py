"""Exchange-graph analysis (Section 6's server-log results).

The paper's related work reports, from eDonkey server logs, that "around
20% of the edges of the exchange graph are bidirectional, and that
cliques ... of size 100 and higher exist among the server clients".  Our
search simulator can record the exchange graph (who uploaded to whom), so
this module reproduces those graph-level observations on the synthetic
workload: reciprocity, degree skew, clustering, and dense communities.

Uses ``networkx`` for the graph algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import networkx as nx

from repro.trace.model import ClientId

ExchangeEdges = Dict[Tuple[ClientId, ClientId], int]


def build_exchange_graph(exchanges: ExchangeEdges) -> nx.DiGraph:
    """Directed multigraph (weights = upload counts) from recorded edges."""
    graph = nx.DiGraph()
    for (uploader, downloader), count in exchanges.items():
        graph.add_edge(uploader, downloader, weight=count)
    return graph


def reciprocity(graph: nx.DiGraph) -> float:
    """Fraction of directed edges whose reverse edge also exists."""
    if graph.number_of_edges() == 0:
        return 0.0
    reciprocal = sum(
        1 for u, v in graph.edges() if graph.has_edge(v, u)
    )
    return reciprocal / graph.number_of_edges()


def degree_skew(graph: nx.DiGraph) -> float:
    """Max out-degree over mean out-degree (generous-uploader skew)."""
    degrees = [d for _, d in graph.out_degree()]
    positive = [d for d in degrees if d > 0]
    if not positive:
        return 0.0
    return max(positive) / (sum(positive) / len(positive))


def undirected_clustering(graph: nx.DiGraph) -> float:
    """Average clustering coefficient of the undirected exchange graph."""
    undirected = graph.to_undirected()
    if undirected.number_of_nodes() == 0:
        return 0.0
    return nx.average_clustering(undirected)


def largest_dense_community(graph: nx.DiGraph, min_degree_ratio: float = 0.5) -> int:
    """Size of the largest k-core-style dense community.

    A cheap stand-in for the paper's clique observation: iteratively peel
    low-degree nodes (k-core decomposition) and report the largest core's
    size.  True max-clique is NP-hard and unnecessary for the shape claim.
    """
    undirected = graph.to_undirected()
    if undirected.number_of_nodes() == 0:
        return 0
    core_numbers = nx.core_number(undirected)
    if not core_numbers:
        return 0
    max_core = max(core_numbers.values())
    return sum(1 for k in core_numbers.values() if k == max_core)


@dataclass
class ExchangeGraphSummary:
    """Headline graph statistics."""

    nodes: int
    edges: int
    reciprocity: float
    degree_skew: float
    clustering: float
    largest_core: int
    components: int

    def rows(self) -> List[Tuple[str, object]]:
        return [
            ("nodes (peers that exchanged)", self.nodes),
            ("directed edges", self.edges),
            ("bidirectional edge fraction", f"{100 * self.reciprocity:.0f}%"),
            ("out-degree skew (max/mean)", f"{self.degree_skew:.1f}x"),
            ("avg clustering coefficient", f"{self.clustering:.2f}"),
            ("largest dense community (k-core)", self.largest_core),
            ("weakly connected components", self.components),
        ]


def summarize_exchanges(exchanges: ExchangeEdges) -> ExchangeGraphSummary:
    """Compute all headline statistics for a recorded exchange graph."""
    graph = build_exchange_graph(exchanges)
    components = (
        nx.number_weakly_connected_components(graph)
        if graph.number_of_nodes()
        else 0
    )
    return ExchangeGraphSummary(
        nodes=graph.number_of_nodes(),
        edges=graph.number_of_edges(),
        reciprocity=reciprocity(graph),
        degree_skew=degree_skew(graph),
        clustering=undirected_clustering(graph),
        largest_core=largest_dense_community(graph),
        components=components,
    )
