"""Out-of-core variants of the day-indexed analyses.

Each function here mirrors one in :mod:`repro.analysis.popularity` or
:mod:`repro.analysis.semantic`, but takes a
:class:`~repro.trace.store.TraceStore` instead of an in-memory
:class:`~repro.trace.model.Trace` and never holds more than a **day
window** in RAM: one mmapped segment plus the per-day derived state
(counts, tracked-client caches).  That is what makes 56-day / multi-month
traces a first-class analysis workload — the whole-trace Python object
graph never exists.

Equivalence contract: on any trace, converting to a store and running the
streaming variant produces results **equal** to the in-memory engine —
same Series names, xs and ys (pinned by
``tests/trace/test_streaming_equivalence.py`` on seeded SMALL traces).
Two properties make this exact rather than approximate:

- replica counts, spreads and ranks are integer arithmetic per day, so
  recomputing them day-at-a-time from the segment columns yields the very
  same numbers;
- the overlap-evolution means are ``sum(ints)/len``, and the pair groups /
  subsampling draw from sorted pair lists, so neither client iteration
  order nor the int-vs-string cache representation can perturb them
  (intersection *sizes* are representation-independent).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.semantic import pair_overlaps
from repro.trace.model import ClientId, FileId
from repro.trace.store import TraceStore
from repro.util.cdf import Series
from repro.util.rng import RngStream


def streaming_rank_replication(
    store: TraceStore, day: int, max_rank: Optional[int] = None
) -> Series:
    """Sources-per-file against file rank for one day (Figure 5);
    equals :func:`repro.analysis.popularity.rank_replication`."""
    counts = store.segment(day).replica_counts()
    ordered = sorted(counts.values(), reverse=True)
    if max_rank is not None:
        ordered = ordered[:max_rank]
    series = Series(name=f"day {day} ({len(counts)} files)")
    for rank, sources in enumerate(ordered, start=1):
        series.append(rank, sources)
    store.release_day(day)
    return series


def streaming_top_files_on(store: TraceStore, day: int, k: int) -> List[FileId]:
    """The ``k`` most replicated files of ``day`` (ties broken by id);
    equals :func:`repro.analysis.popularity.top_files_on`."""
    counts = store.day_replica_counts(day)
    store.release_day(day)
    return sorted(counts, key=lambda f: (-counts[f], f))[:k]


def streaming_file_spread(
    store: TraceStore,
    file_ids: Optional[Sequence[FileId]] = None,
    top_k: int = 6,
    reference_day: Optional[int] = None,
) -> List[Series]:
    """Per-day spread of the given files (Figure 8); equals
    :func:`repro.analysis.popularity.file_spread` for explicit
    ``file_ids`` or a ``reference_day``.

    The in-memory default (no files, no reference day) ranks by *static*
    replica counts — distinct clients per file over the whole trace —
    which inherently needs more than a day window; pass ``file_ids`` or
    ``reference_day`` here instead.
    """
    if file_ids is None:
        if reference_day is None:
            raise ValueError(
                "streaming_file_spread needs file_ids or reference_day: "
                "the static top-k default requires whole-trace state "
                "(use the in-memory engine for that selection)"
            )
        file_ids = streaming_top_files_on(store, reference_day, top_k)
    index = store.file_index
    tracked = [index[fid] for fid in file_ids]
    # One pass: per day, the observed-client count and each tracked file's
    # holder count (holders == the day's replica count of that file).
    points: List[List[Tuple[int, float]]] = [[] for _ in tracked]
    for day, seg in store.iter_days():
        if seg.n_clients == 0:
            continue
        counts = seg.replica_counts()
        for slot, idx in enumerate(tracked):
            points[slot].append(
                (day, 100.0 * counts.get(idx, 0) / seg.n_clients)
            )
    out: List[Series] = []
    for i, slot_points in enumerate(points, start=1):
        series = Series(name=f"#{i}")
        for day, value in slot_points:
            series.append(day, value)
        out.append(series)
    return out


def streaming_rank_evolution(
    store: TraceStore, reference_day: int, top_k: int = 5
) -> List[Series]:
    """Daily rank of ``reference_day``'s top files (Figures 9 and 10);
    equals :func:`repro.analysis.popularity.rank_evolution`."""
    tracked = streaming_top_files_on(store, reference_day, top_k)
    fids = store.file_ids
    index = store.file_index
    tracked_idx = [index[fid] for fid in tracked]
    points: List[List[Tuple[int, int]]] = [[] for _ in tracked]
    for day, seg in store.iter_days():
        counts = seg.replica_counts()
        if not counts:
            continue
        # Rank = 1 + files strictly more replicated + equally-replicated
        # files with a smaller id (the in-memory sort's tie-break).  Only
        # the tracked files' ranks are needed, so the day's rank map is
        # never materialized.
        for slot, idx in enumerate(tracked_idx):
            mine = counts.get(idx)
            if mine is None:
                continue
            my_id = fids[idx]
            rank = 1 + sum(
                1
                for other, n in counts.items()
                if n > mine or (n == mine and fids[other] < my_id)
            )
            points[slot].append((day, rank))
    out: List[Series] = []
    for i, slot_points in enumerate(points, start=1):
        series = Series(name=f"#{i}")
        for day, rank in slot_points:
            series.append(day, rank)
        out.append(series)
    return out


def streaming_max_spread_fraction(store: TraceStore) -> float:
    """The largest single-day spread of any file; equals
    :func:`repro.analysis.popularity.max_spread_fraction`."""
    best = 0.0
    for _day, seg in store.iter_days():
        if seg.n_clients == 0:
            continue
        counts = seg.replica_counts()
        if not counts:
            continue
        best = max(best, max(counts.values()) / seg.n_clients)
    return best


def streaming_overlap_evolution(
    store: TraceStore,
    first_day: Optional[int] = None,
    overlap_levels: Optional[Sequence[int]] = None,
    max_pairs_per_level: int = 500,
    seed: int = 0,
) -> List[Series]:
    """Mean overlap over time for pair groups fixed on the first day
    (Figures 15-17); equals
    :func:`repro.analysis.semantic.overlap_evolution`.

    All set arithmetic runs on the store's global int columns (the ids
    intern bijectively, so overlap counts are identical); only the first
    day's pair enumeration and, per follow day, the tracked clients'
    caches are held in memory.
    """
    days = store.days()
    if not days:
        raise ValueError("trace has no days")
    if first_day is None:
        first_day = days[0]
    if first_day not in days:
        raise ValueError(f"first_day {first_day} not in trace")

    base = store.day_int_caches(first_day)
    overlaps = pair_overlaps({c: f for c, f in base.items() if f})
    del base
    groups: Dict[int, List[Tuple[ClientId, ClientId]]] = defaultdict(list)
    for pair, n in overlaps.items():
        groups[n].append(pair)

    if overlap_levels is None:
        overlap_levels = sorted(groups)
    rng = RngStream(seed, "overlap-evolution")

    selected: List[Tuple[int, int, List[Tuple[ClientId, ClientId]]]] = []
    for level in overlap_levels:
        pairs = groups.get(level, [])
        if not pairs:
            continue
        full_size = len(pairs)
        if full_size > max_pairs_per_level:
            pairs = rng.sample_without_replacement(
                sorted(pairs), max_pairs_per_level
            )
        selected.append((level, full_size, pairs))

    tracked = {c for _, _, pairs in selected for pair in pairs for c in pair}
    # Day-outer accumulation (the in-memory engine loops level-outer over
    # prefetched day caches); per (level, day) the appended mean is the
    # same number, and days are visited in the same ascending order, so
    # the resulting Series are identical.
    per_level_points: List[List[Tuple[int, float]]] = [[] for _ in selected]
    client_ids = store.client_ids
    for day in days:
        if day < first_day:
            continue
        seg = store.segment(day)
        snaps = {
            cid: frozenset(seg.cache_column(j))
            for j, cid in (
                (j, client_ids[seg.rows[j]]) for j in range(seg.n_clients)
            )
            if cid in tracked
        }
        store.release_day(day)
        for slot, (_level, _full, pairs) in enumerate(selected):
            values: List[int] = []
            for a, b in pairs:
                cache_a = snaps.get(a)
                cache_b = snaps.get(b)
                if cache_a is None or cache_b is None:
                    continue
                values.append(len(cache_a & cache_b))
            if values:
                per_level_points[slot].append((day, sum(values) / len(values)))

    out: List[Series] = []
    for (level, full_size, _pairs), slot_points in zip(
        selected, per_level_points
    ):
        series = Series(name=f"{level} Common Files, {full_size} Pairs")
        for day, mean in slot_points:
            series.append(day, mean)
        out.append(series)
    return out
