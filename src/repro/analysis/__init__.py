"""Analyses reproducing the paper's figures and tables.

Each function takes a :class:`~repro.trace.model.Trace` or
:class:`~repro.trace.model.StaticTrace` and returns plain data —
:class:`~repro.util.cdf.Series` lists, tables of rows, or small dataclasses
— that the experiment layer renders and the benchmarks assert on.

Module map (see DESIGN.md for the full per-experiment index):

- :mod:`repro.analysis.contribution` — Figures 6, 7 (sizes, peer contribution);
- :mod:`repro.analysis.popularity` — Figures 5, 8, 9, 10 (replication and
  popularity dynamics);
- :mod:`repro.analysis.geographic` — Figure 4, Table 2, Figures 11, 12;
- :mod:`repro.analysis.semantic` — Figures 13, 14, 15, 16, 17 (clustering
  correlation and overlap dynamics);
- :mod:`repro.analysis.streaming` — out-of-core variants of the popularity
  and overlap analyses over a :class:`~repro.trace.store.TraceStore`,
  holding at most a day window in memory.
"""

from repro.analysis.contribution import (
    contribution_cdfs,
    size_cdf_by_popularity,
)
from repro.analysis.geographic import (
    country_histogram,
    home_locality_cdf,
    top_as_table,
)
from repro.analysis.popularity import (
    file_spread,
    rank_evolution,
    rank_replication,
)
from repro.analysis.semantic import (
    clustering_correlation,
    overlap_evolution,
    pair_overlaps,
)
from repro.analysis.streaming import (
    streaming_file_spread,
    streaming_max_spread_fraction,
    streaming_overlap_evolution,
    streaming_rank_evolution,
    streaming_rank_replication,
    streaming_top_files_on,
)

__all__ = [
    "clustering_correlation",
    "contribution_cdfs",
    "country_histogram",
    "file_spread",
    "home_locality_cdf",
    "overlap_evolution",
    "pair_overlaps",
    "rank_evolution",
    "rank_replication",
    "size_cdf_by_popularity",
    "streaming_file_spread",
    "streaming_max_spread_fraction",
    "streaming_overlap_evolution",
    "streaming_rank_evolution",
    "streaming_rank_replication",
    "streaming_top_files_on",
    "top_as_table",
]
