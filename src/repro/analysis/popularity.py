"""File-popularity analyses: replication vs rank and popularity dynamics
(Figures 5, 8, 9 and 10)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.trace.model import FileId, Trace
from repro.util.cdf import Series


def rank_replication(trace: Trace, day: int, max_rank: Optional[int] = None) -> Series:
    """Sources-per-file against file rank for one day (Figure 5).

    Rank 1 is the most replicated file of the day.  ``max_rank`` truncates
    the tail (the figure's x axis is logarithmic, so the tail adds little).
    """
    counts = trace.replica_counts(day)
    ordered = sorted(counts.values(), reverse=True)
    if max_rank is not None:
        ordered = ordered[:max_rank]
    series = Series(name=f"day {day} ({len(counts)} files)")
    for rank, sources in enumerate(ordered, start=1):
        series.append(rank, sources)
    return series


def top_files_on(trace: Trace, day: int, k: int) -> List[FileId]:
    """The ``k`` most replicated files of ``day`` (ties broken by id)."""
    counts = trace.replica_counts(day)
    return sorted(counts, key=lambda f: (-counts[f], f))[:k]


def file_spread(
    trace: Trace,
    file_ids: Optional[Sequence[FileId]] = None,
    top_k: int = 6,
    reference_day: Optional[int] = None,
) -> List[Series]:
    """Per-day spread — fraction of observed clients sharing the file —
    for the given files (Figure 8).

    When ``file_ids`` is omitted the overall top ``top_k`` files (by static
    replica count, or by replication on ``reference_day``) are tracked.
    """
    if file_ids is None:
        if reference_day is not None:
            file_ids = top_files_on(trace, reference_day, top_k)
        else:
            counts = trace.static_replica_counts()
            file_ids = sorted(counts, key=lambda f: (-counts[f], f))[:top_k]
    days = trace.days()
    out: List[Series] = []
    for i, fid in enumerate(file_ids, start=1):
        series = Series(name=f"#{i}")
        for day in days:
            snaps = trace.snapshots_on(day)
            if not snaps:
                continue
            holders = sum(1 for cache in snaps.values() if fid in cache)
            series.append(day, 100.0 * holders / len(snaps))
        out.append(series)
    return out


def rank_of_files(trace: Trace, day: int) -> Dict[FileId, int]:
    """Rank (1 = most replicated) of every file observed on ``day``."""
    counts = trace.replica_counts(day)
    ordered = sorted(counts, key=lambda f: (-counts[f], f))
    return {fid: rank for rank, fid in enumerate(ordered, start=1)}


def rank_evolution(
    trace: Trace, reference_day: int, top_k: int = 5
) -> List[Series]:
    """Daily rank of ``reference_day``'s top files (Figures 9 and 10).

    Days on which a file is not observed at all yield no point (the paper's
    curves have similar gaps).
    """
    tracked = top_files_on(trace, reference_day, top_k)
    out: List[Series] = []
    per_day_ranks = {day: rank_of_files(trace, day) for day in trace.days()}
    for i, fid in enumerate(tracked, start=1):
        series = Series(name=f"#{i}")
        for day in trace.days():
            rank = per_day_ranks[day].get(fid)
            if rank is not None:
                series.append(day, rank)
        out.append(series)
    return out


def max_spread_fraction(trace: Trace) -> float:
    """The largest single-day spread of any file (fraction of that day's
    observed clients) — the paper reports under 0.7%, motivating the ~143
    peers a flooding search must contact."""
    best = 0.0
    for day in trace.days():
        snaps = trace.snapshots_on(day)
        if not snaps:
            continue
        counts = trace.replica_counts(day)
        if not counts:
            continue
        top = max(counts.values())
        best = max(best, top / len(snaps))
    return best
