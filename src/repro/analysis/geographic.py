"""Geographical clustering analyses (Figure 4, Table 2, Figures 11-12).

A file's *home country* (or home AS) is the one hosting the most of its
sources; Figures 11/12 plot, for several average-popularity classes, the
CDF of the fraction of a file's sources that live in its home — lower
curves mean stronger geographic concentration.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.trace.model import ClientId, StaticTrace, Trace
from repro.util.cdf import Series, empirical_cdf


def country_histogram(trace: Trace) -> List[Tuple[str, int, float]]:
    """Clients per country, sorted by count (Figure 4).

    Returns ``(country, count, fraction)`` rows over all known clients.
    """
    counts: Counter = Counter(meta.country for meta in trace.clients.values())
    total = sum(counts.values())
    if total == 0:
        raise ValueError("trace has no clients")
    return [
        (country, count, count / total)
        for country, count in counts.most_common()
    ]


@dataclass(frozen=True)
class AsRow:
    """One row of Table 2."""

    asn: int
    global_share: float
    national_share: float
    country: str


def top_as_table(trace: Trace, k: int = 5) -> List[AsRow]:
    """The top ``k`` autonomous systems by hosted clients (Table 2)."""
    by_asn: Counter = Counter()
    by_country: Counter = Counter()
    asn_country: Dict[int, Counter] = defaultdict(Counter)
    for meta in trace.clients.values():
        by_asn[meta.asn] += 1
        by_country[meta.country] += 1
        asn_country[meta.asn][meta.country] += 1
    total = sum(by_asn.values())
    if total == 0:
        raise ValueError("trace has no clients")
    rows: List[AsRow] = []
    for asn, count in by_asn.most_common(k):
        country, in_country = asn_country[asn].most_common(1)[0]
        rows.append(
            AsRow(
                asn=asn,
                global_share=count / total,
                national_share=in_country / by_country[country],
                country=country,
            )
        )
    return rows


def top_as_concentration(trace: Trace, k: int = 5) -> float:
    """Fraction of clients hosted by the top ``k`` ASes (the paper: 54%)."""
    rows = top_as_table(trace, k)
    return sum(r.global_share for r in rows)


def _home_fraction(
    sources: Sequence[ClientId], locator: Callable[[ClientId], object]
) -> float:
    """Fraction of sources in the modal location."""
    locations = Counter(locator(c) for c in sources)
    return locations.most_common(1)[0][1] / len(sources)


def home_locality_cdf(
    trace: Trace,
    level: str = "country",
    popularity_thresholds: Sequence[float] = (1, 5, 10, 20, 50, 100),
    max_points: int = 120,
) -> List[Series]:
    """CDFs of the home-country (or home-AS) source fraction (Fig 11/12).

    For each threshold ``t``, the CDF is over files whose *average
    popularity* (distinct sources / days seen, Section 4.1) is >= ``t``.
    ``level`` is ``"country"`` or ``"as"``.  The x axis is the percentage
    of sources in the main location.
    """
    if level == "country":
        locator = lambda c: trace.clients[c].country  # noqa: E731
    elif level == "as":
        locator = lambda c: trace.clients[c].asn  # noqa: E731
    else:
        raise ValueError(f"level must be 'country' or 'as', got {level!r}")

    avg_pop = trace.average_popularity()
    # Distinct sources per file over the whole trace.
    sources_of: Dict[str, set] = defaultdict(set)
    for day in trace.days():
        for client_id, cache in trace.snapshots_on(day).items():
            for fid in cache:
                sources_of[fid].add(client_id)

    out: List[Series] = []
    for threshold in popularity_thresholds:
        fractions = [
            100.0 * _home_fraction(sorted(sources), locator)
            for fid, sources in sources_of.items()
            if avg_pop.get(fid, 0.0) >= threshold and len(sources) > 0
        ]
        series = Series(name=f"avg popularity >= {threshold:g}")
        if fractions:
            xs, ps = empirical_cdf(fractions)
            step = max(1, len(xs) // max_points)
            for i in range(0, len(xs), step):
                series.append(float(xs[i]), float(ps[i]))
            series.append(float(xs[-1]), float(ps[-1]))
        out.append(series)
    return out


def static_home_locality_cdf(
    trace: StaticTrace,
    level: str = "country",
    min_sources: int = 2,
    max_points: int = 120,
) -> Series:
    """Home-locality CDF on a static trace (no day dimension).

    Average popularity is unavailable without days, so files are filtered
    by a minimum source count instead.  Used by quick-look examples.
    """
    if level == "country":
        locator = lambda c: trace.clients[c].country  # noqa: E731
    elif level == "as":
        locator = lambda c: trace.clients[c].asn  # noqa: E731
    else:
        raise ValueError(f"level must be 'country' or 'as', got {level!r}")
    sources_of: Dict[str, List[ClientId]] = defaultdict(list)
    for client_id, cache in trace.caches.items():
        for fid in cache:
            sources_of[fid].append(client_id)
    fractions = [
        100.0 * _home_fraction(sources, locator)
        for sources in sources_of.values()
        if len(sources) >= min_sources
    ]
    series = Series(name=f"sources >= {min_sources}")
    if fractions:
        xs, ps = empirical_cdf(fractions)
        step = max(1, len(xs) // max_points)
        for i in range(0, len(xs), step):
            series.append(float(xs[i]), float(ps[i]))
        series.append(float(xs[-1]), float(ps[-1]))
    return series
