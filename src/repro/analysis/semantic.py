"""Semantic clustering analyses (Figures 13-17).

The *clustering correlation* (Figure 13) is the probability that two clients
with at least ``n`` files in common share at least one more — exactly the
probability that a peer who answered ``n`` of my queries will answer the
next one, which is what makes semantic neighbour lists work.

The *overlap evolution* analyses (Figures 15-17) group client pairs by their
cache overlap on the first analysis day and track the mean overlap of each
group over time.

The pair-counting entry points accept either a plain cache map or a
:class:`~repro.trace.compiled.CompiledTrace`; the compiled form routes
through its sparse overlap kernel, and cache-map inputs default to
C-level ``Counter`` accumulation over ``combinations``.  All paths
produce the exact dict the original nested pair loop computes (kept
reachable with ``use_compiled=False`` as the reference).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from itertools import combinations
from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.trace.compiled import CompiledTrace, FileInterner
from repro.trace.model import ClientId, FileId, Trace, pair_key
from repro.util.cdf import Series
from repro.util.rng import RngStream

FileFilter = Callable[[FileId], bool]
CacheMap = Mapping[ClientId, FrozenSet[FileId]]
Caches = Union[CacheMap, CompiledTrace]


def pair_overlaps(
    caches: Caches,
    file_filter: Optional[FileFilter] = None,
    max_sources_per_file: Optional[int] = None,
    rng: Optional[RngStream] = None,
    use_compiled: bool = True,
) -> Dict[Tuple[ClientId, ClientId], int]:
    """Number of common (qualifying) files for every overlapping pair.

    Built from the file-to-sharers inverted index, so only pairs with at
    least one common file appear.  ``max_sources_per_file`` caps the
    per-file pair fan-out by subsampling sharers of very popular files
    (needed on large traces where a 10k-source file alone would contribute
    50M pairs); ``rng`` is required when the cap is set.

    ``caches`` may be a :class:`~repro.trace.compiled.CompiledTrace`
    (fastest — sparse matrix product / C-level counting) or a plain cache
    map.  Subsampling consumes the RNG in the cache map's own iteration
    order, so the cap requires a cache map, not a compiled trace.
    """
    if isinstance(caches, CompiledTrace):
        if max_sources_per_file is not None:
            raise ValueError(
                "max_sources_per_file draws in cache-map iteration order; "
                "pass the cache map itself, not a CompiledTrace"
            )
        mask = None
        if file_filter is not None:
            mask = [file_filter(fid) for fid in caches.file_ids]
        return caches.pair_overlaps(mask)

    sharers_of: Dict[FileId, List[ClientId]] = defaultdict(list)
    for client_id, cache in caches.items():
        for fid in cache:
            if file_filter is None or file_filter(fid):
                sharers_of[fid].append(client_id)

    overlaps: Counter = Counter()
    if max_sources_per_file is None and use_compiled:
        # Hot path: push the O(s^2) pair enumeration into C.
        for sharers in sharers_of.values():
            if len(sharers) > 1:
                overlaps.update(combinations(sorted(sharers), 2))
        return dict(overlaps)

    for fid, sharers in sharers_of.items():
        if max_sources_per_file is not None and len(sharers) > max_sources_per_file:
            if rng is None:
                raise ValueError("subsampling requires an rng")
            sharers = rng.sample_without_replacement(sharers, max_sources_per_file)
        sharers = sorted(sharers)
        for i in range(len(sharers)):
            for j in range(i + 1, len(sharers)):
                overlaps[pair_key(sharers[i], sharers[j])] += 1
    return dict(overlaps)


def clustering_correlation(
    caches: Caches,
    file_filter: Optional[FileFilter] = None,
    max_common: int = 200,
    min_pairs: int = 5,
    name: str = "clustering",
    max_sources_per_file: Optional[int] = None,
    rng: Optional[RngStream] = None,
    use_compiled: bool = True,
) -> Series:
    """P(>= n+1 common files | >= n common files), per n (Figure 13).

    The y value at x = n is the percentage of pairs with at least ``n``
    common files that have at least ``n + 1``.  Points supported by fewer
    than ``min_pairs`` pairs are dropped (they are pure noise).
    ``caches`` may be a cache map or a compiled trace (see
    :func:`pair_overlaps`).
    """
    overlaps = pair_overlaps(
        caches,
        file_filter=file_filter,
        max_sources_per_file=max_sources_per_file,
        rng=rng,
        use_compiled=use_compiled,
    )
    histogram: Counter = Counter(overlaps.values())
    if not histogram:
        return Series(name=name)
    top = min(max(histogram), max_common)
    # pairs_ge[n] = number of pairs with overlap >= n.
    pairs_ge: Dict[int, int] = {}
    running = 0
    for n in range(max(histogram), 0, -1):
        running += histogram.get(n, 0)
        pairs_ge[n] = running
    series = Series(name=name)
    for n in range(1, top + 1):
        ge_n = pairs_ge.get(n, 0)
        ge_n1 = pairs_ge.get(n + 1, 0)
        if ge_n < min_pairs:
            break
        series.append(n, 100.0 * ge_n1 / ge_n)
    return series


def popularity_band_filter(
    caches: Caches,
    lo: int,
    hi: int,
    kind_of: Optional[Mapping[FileId, str]] = None,
    kind: Optional[str] = None,
) -> FileFilter:
    """Build a filter keeping files whose replica count is in ``[lo, hi]``,
    optionally restricted to one content kind (e.g. ``audio``).

    Accepts a cache map or a compiled trace (whose precomputed replica
    counts are used directly)."""
    if isinstance(caches, CompiledTrace):
        counts = caches.replica_counts()
    else:
        counts = Counter()
        for cache in caches.values():
            counts.update(cache)

    def accept(fid: FileId) -> bool:
        if not lo <= counts[fid] <= hi:
            return False
        if kind is not None:
            if kind_of is None:
                raise ValueError("kind filter requires kind_of mapping")
            if kind_of.get(fid) != kind:
                return False
        return True

    return accept


def overlap_evolution(
    trace: Trace,
    first_day: Optional[int] = None,
    overlap_levels: Optional[Sequence[int]] = None,
    max_pairs_per_level: int = 500,
    seed: int = 0,
    use_compiled: bool = True,
) -> List[Series]:
    """Mean overlap over time for pair groups fixed on the first day
    (Figures 15-17).

    Pairs are grouped by their exact overlap on ``first_day``; each group's
    series reports, per day, the mean overlap of the group's pairs that were
    both observed that day.  Groups larger than ``max_pairs_per_level``
    are subsampled for tractability.  Series are named
    ``"<k> Common Files, <n> Pairs"`` with ``n`` the *full* group size, as
    in the paper's legends.
    """
    days = trace.days()
    if not days:
        raise ValueError("trace has no days")
    if first_day is None:
        first_day = days[0]
    if first_day not in days:
        raise ValueError(f"first_day {first_day} not in trace")

    base = trace.snapshots_on(first_day)
    overlaps = pair_overlaps({c: f for c, f in base.items() if f})
    groups: Dict[int, List[Tuple[ClientId, ClientId]]] = defaultdict(list)
    for pair, n in overlaps.items():
        groups[n].append(pair)

    if overlap_levels is None:
        overlap_levels = sorted(groups)
    rng = RngStream(seed, "overlap-evolution")

    selected: List[Tuple[int, int, List[Tuple[ClientId, ClientId]]]] = []
    for level in overlap_levels:
        pairs = groups.get(level, [])
        if not pairs:
            continue
        full_size = len(pairs)
        if full_size > max_pairs_per_level:
            pairs = rng.sample_without_replacement(sorted(pairs), max_pairs_per_level)
        selected.append((level, full_size, pairs))

    follow_days = [d for d in days if d >= first_day]
    # Per-day caches of the tracked clients only, interned to int sets
    # (one intern table for the whole call) so the per-pair intersections
    # hash ints; intersection *sizes* are representation-independent.
    tracked = {c for _, _, pairs in selected for pair in pairs for c in pair}
    interner = FileInterner() if use_compiled else None
    day_caches: Dict[int, Dict[ClientId, FrozenSet]] = {}
    for day in follow_days:
        snaps = trace.snapshots_on(day)
        if interner is not None:
            day_caches[day] = {
                c: interner.intern_set(snaps[c]) for c in tracked if c in snaps
            }
        else:
            day_caches[day] = {c: snaps[c] for c in tracked if c in snaps}

    out: List[Series] = []
    for level, full_size, pairs in selected:
        series = Series(name=f"{level} Common Files, {full_size} Pairs")
        for day in follow_days:
            snaps = day_caches[day]
            values: List[int] = []
            for a, b in pairs:
                cache_a = snaps.get(a)
                cache_b = snaps.get(b)
                if cache_a is None or cache_b is None:
                    continue
                values.append(len(cache_a & cache_b))
            if values:
                series.append(day, sum(values) / len(values))
        out.append(series)
    return out


def mean_overlap_decay(series: Series) -> float:
    """Final mean overlap as a fraction of the initial one (decay metric).

    1.0 means perfectly sustained overlap, 0.0 means fully dissipated.
    """
    if len(series) < 2:
        raise ValueError("need at least two points")
    first, last = series.ys[0], series.ys[-1]
    if first == 0:
        return 0.0
    return last / first
