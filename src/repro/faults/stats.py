"""Fault and degradation accounting.

:class:`FaultStats` is owned by the injector and incremented on every
fault decision; consumers (the crawler's retry loop, the network's
crash handler) add their side of the story.  Being a plain dataclass it
compares by value, which is what the determinism guarantee is asserted
against: same seed + same config ⇒ equal ``FaultStats``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class FaultStats:
    """Counters of injected faults and the resilience machinery's work."""

    messages_total: int = 0  # messages seen by the injector
    messages_dropped: int = 0
    timeouts: int = 0  # replies slower than the deadline
    malformed_replies: int = 0
    peer_unreachable: int = 0  # sends to transiently-down peers
    server_down_messages: int = 0  # sends to crashed servers
    server_crashes: int = 0
    server_recoveries: int = 0
    clients_reassigned: int = 0  # re-connected to a surviving server
    retries: int = 0  # retry attempts by any consumer
    backoff_seconds: float = 0.0  # simulated time spent backing off

    @property
    def faults_injected(self) -> int:
        return self.messages_dropped + self.timeouts + self.malformed_replies

    @property
    def delivery_rate(self) -> float:
        """Fraction of injector-seen messages that were delivered intact."""
        if self.messages_total == 0:
            return 1.0
        return 1.0 - self.faults_injected / self.messages_total

    def as_dict(self) -> Dict[str, float]:
        """Flat mapping for reports and experiment metrics."""
        return {
            "messages_total": float(self.messages_total),
            "messages_dropped": float(self.messages_dropped),
            "timeouts": float(self.timeouts),
            "malformed_replies": float(self.malformed_replies),
            "peer_unreachable": float(self.peer_unreachable),
            "server_down_messages": float(self.server_down_messages),
            "server_crashes": float(self.server_crashes),
            "server_recoveries": float(self.server_recoveries),
            "clients_reassigned": float(self.clients_reassigned),
            "retries": float(self.retries),
            "backoff_seconds": self.backoff_seconds,
            "delivery_rate": self.delivery_rate,
        }
