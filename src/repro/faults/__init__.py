"""Deterministic fault injection for the simulated eDonkey network.

The paper's crawl survived 56 days of a hostile real network: dropped
connections, dead peers, servers that silently ignore requests, and
partial answers.  This package lets the simulated substrate reproduce
those conditions — every message hop consults a :class:`FaultInjector`
that can drop the message, time a reply out past its deadline, garble a
reply into an empty one, mark peers transiently unreachable, or crash
whole servers on a schedule.

All randomness comes from seeded :class:`~repro.util.rng.RngStream`
children, so a fault run is exactly as reproducible as a clean one: the
same seed and the same :class:`FaultConfig` give the same faults, the
same :class:`FaultStats` and the same trace.  With every knob at zero
the injector is disabled and the network behaves byte-identically to a
fault-free build.
"""

from repro.faults.config import FaultConfig
from repro.faults.injector import (
    FATE_DROP,
    FATE_MALFORMED,
    FATE_OK,
    FATE_TIMEOUT,
    FaultInjector,
)
from repro.faults.retry import RetryPolicy
from repro.faults.schedule import FaultSchedule, FaultWindow, ramping_loss
from repro.faults.stats import FaultStats

__all__ = [
    "FATE_DROP",
    "FATE_MALFORMED",
    "FATE_OK",
    "FATE_TIMEOUT",
    "FaultConfig",
    "FaultInjector",
    "FaultSchedule",
    "FaultStats",
    "FaultWindow",
    "RetryPolicy",
    "ramping_loss",
]
