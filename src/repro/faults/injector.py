"""The fault injector the network consults on every message hop.

Each fault class draws from its own :class:`~repro.util.rng.RngStream`
child, so enabling one fault (say, message loss) never perturbs the
draws of another (peer downtime), and a run is reproducible from
``(seed, FaultConfig)`` alone.  Day-level state (which peers are
transiently down) is redrawn from a per-day child stream, so two
networks built from the same seed agree on every day's fault set even
if they routed different message counts in between.
"""

from __future__ import annotations

import copy
from typing import Iterable, List, Optional, Set, Tuple

from repro.faults.config import FaultConfig
from repro.faults.schedule import FaultSchedule
from repro.faults.stats import FaultStats
from repro.util.rng import RngStream

# A message's fate, decided once per hop.
FATE_OK = "ok"
FATE_DROP = "drop"  # request lost in flight: target never sees it
FATE_TIMEOUT = "timeout"  # request processed, reply misses the deadline
FATE_MALFORMED = "malformed"  # reply delivered with list payloads emptied

# Reply attributes emptied by a malformed delivery, in check order.
_PAYLOAD_ATTRS = ("files", "results", "sources", "users", "servers")


class FaultInjector:
    """Decides message fates and the daily fault schedule.

    With a :class:`~repro.faults.schedule.FaultSchedule`, the injector's
    effective config (``self.config``) is recomputed at each
    ``advance_day`` as the base config plus the overrides of every
    window covering that day; message paths keep consulting
    ``self.config``, so a day outside every window costs exactly what a
    schedule-free run costs (the per-knob short-circuits see zeros and
    draw nothing).
    """

    def __init__(
        self,
        config: FaultConfig,
        rng: RngStream,
        schedule: Optional[FaultSchedule] = None,
    ) -> None:
        self.base_config = config
        self.schedule = schedule
        # Effective config for the current day; day 0's value is set by
        # the first advance_day call (build time uses the base config).
        self.config = config
        self.stats = FaultStats()
        self._loss_rng = rng.child("loss")
        self._slow_rng = rng.child("slow")
        self._malformed_rng = rng.child("malformed")
        self._downtime_rng = rng.child("downtime")
        self.flaky_offline: Set[int] = set()

    @property
    def enabled(self) -> bool:
        """Any knob nonzero *today* (the current effective config)."""
        return self.config.enabled

    @property
    def active(self) -> bool:
        """Can this injector ever do anything over the whole run?

        True when the base config enables a fault or the schedule
        carries at least one override.  The network consults this (not
        ``enabled``) to decide whether to run the per-day fault plumbing
        at all: an injector that is inactive is a strict no-op, while an
        *active* one may still be quiet on individual days.
        """
        return self.base_config.enabled or (
            self.schedule is not None and not self.schedule.empty
        )

    # ------------------------------------------------------------------
    # Per-message decisions

    def message_fate(self, _message: object) -> str:
        """Draw the fate of one message (loss, then slowness, then
        garbling — a message only reaches the later draws if it survived
        the earlier ones)."""
        config = self.config
        self.stats.messages_total += 1
        if config.loss_rate and self._loss_rng.py.random() < config.loss_rate:
            self.stats.messages_dropped += 1
            return FATE_DROP
        if config.slow_rate and self._slow_rng.py.random() < config.slow_rate:
            self.stats.timeouts += 1
            return FATE_TIMEOUT
        if (
            config.malformed_rate
            and self._malformed_rng.py.random() < config.malformed_rate
        ):
            self.stats.malformed_replies += 1
            return FATE_MALFORMED
        return FATE_OK

    def filtered_dispatch(self, message: object, dispatch):
        """Run ``dispatch(message)`` under this injector's fate model.

        This is the one transport-seam hook both message planes share:
        the simulated :class:`~repro.edonkey.network.Network` wraps its
        protocol-handler dispatch in it, and the live asyncio service
        (:mod:`repro.service.server`) wraps its TCP request handling in
        the same call — so loss, timeouts and malformed replies behave
        identically in batch and in service mode.

        The fate is drawn *before* dispatching (matching the pre-seam
        network code byte for byte): a dropped request never reaches the
        handler, a timed-out one is handled but its reply suppressed,
        and a malformed one returns a degraded reply.  When the injector
        is disabled this is a plain ``dispatch(message)`` with no RNG
        draw and no stats.
        """
        if not self.enabled:
            return dispatch(message)
        fate = self.message_fate(message)
        if fate == FATE_DROP:
            return None
        reply = dispatch(message)
        if fate == FATE_TIMEOUT:
            return None
        if fate == FATE_MALFORMED:
            return self.degrade_reply(reply)
        return reply

    def peer_unreachable(self, client_id: int) -> bool:
        """True when ``client_id`` is transiently down today."""
        if client_id in self.flaky_offline:
            self.stats.peer_unreachable += 1
            return True
        return False

    def degrade_reply(self, reply):
        """The malformed variant of ``reply``: list payloads emptied.

        Replies with no list payload (e.g. a connect acknowledgement)
        cannot be meaningfully truncated, so garbling them loses the
        whole reply (``None``)."""
        if reply is None:
            return None
        for attr in _PAYLOAD_ATTRS:
            if hasattr(reply, attr):
                degraded = copy.copy(reply)
                setattr(degraded, attr, [])
                return degraded
        return None

    # ------------------------------------------------------------------
    # Day schedule

    def advance_day(self, day_index: int, client_ids: Iterable[int]) -> None:
        """Enter ``day_index``: apply the schedule, redraw the day's
        transiently-unreachable peer set.

        The downtime draw comes from a per-day child stream keyed by
        ``day_index`` over the *sorted* client ids, so it is independent
        of message traffic and iteration order."""
        if self.schedule is not None:
            self.config = self.schedule.config_on(day_index, self.base_config)
        if not self.config.peer_downtime:
            self.flaky_offline = set()
            return
        rng = self._downtime_rng.child(f"day[{day_index}]")
        self.flaky_offline = {
            client_id
            for client_id in sorted(client_ids)
            if rng.py.random() < self.config.peer_downtime
        }

    def server_events(self, day_index: int) -> Tuple[List[int], List[int]]:
        """``(crashes, recoveries)`` scheduled for ``day_index``.

        Checked against the *effective* config, so repeated
        crash/recovery cycles are expressed as schedule windows that set
        ``server_crash_day``/``server_downtime_days`` — each window must
        cover both its crash day and its recovery day for the pair of
        events to fire.
        """
        config = self.config
        crashes: List[int] = []
        recoveries: List[int] = []
        if config.server_crash_day is not None:
            if day_index == config.server_crash_day:
                crashes.append(config.server_crash_id)
            elif config.server_downtime_days and day_index == (
                config.server_crash_day + config.server_downtime_days
            ):
                recoveries.append(config.server_crash_id)
        return crashes, recoveries
