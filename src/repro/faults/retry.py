"""Retry policy with capped exponential backoff.

Backoff delays are *simulated* seconds: consumers account them (e.g.
against a crawl's time budget and in :class:`~repro.faults.stats.FaultStats`)
but never sleep, so fault runs stay fast and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.util.validation import check_non_negative, check_positive


@dataclass
class RetryPolicy:
    """Bounded exponential backoff: ``base * multiplier**(attempt-1)``,
    capped at ``max_delay``, for at most ``max_retries`` retries."""

    max_retries: int = 3
    base_delay: float = 1.0
    multiplier: float = 2.0
    max_delay: float = 60.0

    def __post_init__(self) -> None:
        check_non_negative("max_retries", self.max_retries)
        check_positive("base_delay", self.base_delay)
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1 (backoff never shrinks), "
                f"got {self.multiplier!r}"
            )
        check_positive("max_delay", self.max_delay)

    def delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based)."""
        check_positive("attempt", attempt)
        return min(
            self.base_delay * self.multiplier ** (attempt - 1), self.max_delay
        )

    def delays(self) -> List[float]:
        """The full backoff schedule, one entry per permitted retry."""
        return [self.delay(i) for i in range(1, self.max_retries + 1)]
