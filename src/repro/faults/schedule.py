"""Time-varying fault schedules.

A static :class:`~repro.faults.config.FaultConfig` holds one set of
knobs for a whole run; real networks misbehave in *episodes* — loss that
ramps up over a weekend, a flash-churn burst when a popular file drops,
a server that crashes and recovers repeatedly.  A
:class:`FaultSchedule` expresses those episodes as day windows carrying
config overrides: on each simulated day the injector's effective config
is the base config with every window covering that day applied, in
listed order.

Schedules are plain data — JSON-loadable (``repro.faults.schedule/1``)
so a whole hostile-network scenario can live in a file next to the run
manifest::

    {
      "schema": "repro.faults.schedule/1",
      "windows": [
        {"days": [0, 4], "loss_rate": 0.05},
        {"days": [4, 8], "loss_rate": 0.20},
        {"days": [10, null], "peer_downtime": 0.3}
      ]
    }

``days`` is ``[start, end)`` with ``null`` meaning "until the end of the
run"; the remaining keys are :class:`FaultConfig` field overrides.
Overrides are validated eagerly: each is applied to a default config at
construction time, so a typo'd field name or an out-of-range rate fails
at load, not on day 37 of a long run.

Determinism contract: a schedule whose windows carry no overrides is
behaviourally *and byte-wise* identical to no schedule at all — the
injector's per-day effective config equals the base config, every
message-fate draw short-circuits on the same zero knobs, and no extra
randomness is consumed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Optional, Tuple

from repro.faults.config import FaultConfig

SCHEDULE_SCHEMA = "repro.faults.schedule/1"

_CONFIG_FIELDS = frozenset(f.name for f in fields(FaultConfig))


@dataclass(frozen=True)
class FaultWindow:
    """One episode: days ``[start, end)`` with config overrides.

    ``end=None`` means the window stays active from ``start`` onwards.
    An empty ``overrides`` dict is legal (a no-op window).
    """

    start: int
    end: Optional[int] = None
    overrides: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"window start must be >= 0, got {self.start}")
        if self.end is not None and self.end <= self.start:
            raise ValueError(
                f"window end must be > start, got [{self.start}, {self.end})"
            )
        unknown = set(self.overrides) - _CONFIG_FIELDS
        if unknown:
            raise ValueError(
                f"unknown FaultConfig fields in window overrides: "
                f"{sorted(unknown)}"
            )
        # Fail on out-of-range values now, not mid-run: applying the
        # overrides to a default config runs FaultConfig's own checks.
        replace(FaultConfig(), **self.overrides)

    def covers(self, day: int) -> bool:
        if day < self.start:
            return False
        return self.end is None or day < self.end

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"days": [self.start, self.end]}
        payload.update(self.overrides)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultWindow":
        if not isinstance(payload, dict):
            raise ValueError(
                f"window must be an object, got {type(payload).__name__}"
            )
        days = payload.get("days")
        if (
            not isinstance(days, (list, tuple))
            or len(days) != 2
            or not isinstance(days[0], int)
            or not (days[1] is None or isinstance(days[1], int))
        ):
            raise ValueError(
                f"window 'days' must be [start, end-or-null], got {days!r}"
            )
        overrides = {k: v for k, v in payload.items() if k != "days"}
        return cls(start=days[0], end=days[1], overrides=overrides)


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered list of :class:`FaultWindow` episodes."""

    windows: Tuple[FaultWindow, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "windows", tuple(self.windows))

    @property
    def empty(self) -> bool:
        """True when no window carries any override (a strict no-op)."""
        return all(not w.overrides for w in self.windows)

    def horizon(self) -> Optional[int]:
        """First day after which no window is active (None if open-ended)."""
        last = 0
        for window in self.windows:
            if window.end is None:
                return None
            last = max(last, window.end)
        return last

    def config_on(self, day: int, base: FaultConfig) -> FaultConfig:
        """The effective config for ``day``: base + covering overrides.

        Windows apply in listed order (later windows win on conflicting
        fields).  ``dataclasses.replace`` re-runs ``__post_init__``, so a
        combination of overrides that is individually valid but jointly
        invalid still fails loudly.
        """
        merged: Dict[str, object] = {}
        for window in self.windows:
            if window.covers(day):
                merged.update(window.overrides)
        if not merged:
            return base
        return replace(base, **merged)

    # ------------------------------------------------------------------
    # JSON round-trip

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SCHEDULE_SCHEMA,
            "windows": [w.to_dict() for w in self.windows],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_dict(cls, payload: object) -> "FaultSchedule":
        if not isinstance(payload, dict):
            raise ValueError(
                f"schedule must be an object, got {type(payload).__name__}"
            )
        schema = payload.get("schema")
        if schema != SCHEDULE_SCHEMA:
            raise ValueError(
                f"schedule schema must be {SCHEDULE_SCHEMA!r}, got {schema!r}"
            )
        windows = payload.get("windows")
        if not isinstance(windows, list):
            raise ValueError("schedule missing array 'windows'")
        return cls(
            windows=tuple(FaultWindow.from_dict(w) for w in windows)
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path) -> "FaultSchedule":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    def save(self, path) -> None:
        from repro.util.atomic import atomic_write_text

        atomic_write_text(path, self.to_json() + "\n")


def ramping_loss(
    steps: List[float], days_per_step: int = 2
) -> FaultSchedule:
    """A convenience scenario: loss rate stepping through ``steps``."""
    windows = [
        FaultWindow(
            start=i * days_per_step,
            end=(i + 1) * days_per_step,
            overrides={"loss_rate": rate},
        )
        for i, rate in enumerate(steps)
    ]
    return FaultSchedule(windows=tuple(windows))
