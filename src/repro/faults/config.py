"""Configuration of the fault model.

One dataclass gathers every knob so that a whole hostile-network
scenario is a single value that can be threaded through
:class:`~repro.edonkey.network.NetworkConfig`, logged, and compared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.util.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
)


@dataclass
class FaultConfig:
    """Fault-model knobs.  Everything defaults to *off*.

    Message-level faults (independent per message):

    - ``loss_rate`` — probability a message is dropped in flight (the
      request never reaches its target);
    - ``slow_rate`` — probability a reply is slower than ``deadline``
      simulated seconds; the request *is* processed but the sender gives
      up waiting, so the reply is lost (a timeout);
    - ``malformed_rate`` — probability a reply arrives garbled: list
      payloads (files, sources, users, …) are emptied, which models the
      partial/empty answers real crawls are full of.

    Peer-level faults:

    - ``peer_downtime`` — per-day probability that a client is
      transiently unreachable for that whole day (mid-session
      disconnects, on top of the availability-profile session churn).

    Server-level faults:

    - ``server_crash_day`` — day index (0 = the build day) on which
      ``server_crash_id`` crashes, losing all sessions and indexes;
      connected clients re-connect to surviving servers;
    - ``server_downtime_days`` — days until the crashed server restarts
      (empty); 0 means it never comes back.
    """

    loss_rate: float = 0.0
    slow_rate: float = 0.0
    deadline: float = 5.0  # simulated seconds a sender waits for a reply
    malformed_rate: float = 0.0
    peer_downtime: float = 0.0
    server_crash_day: Optional[int] = None
    server_crash_id: int = 0
    server_downtime_days: int = 2

    def __post_init__(self) -> None:
        check_fraction("loss_rate", self.loss_rate)
        check_fraction("slow_rate", self.slow_rate)
        check_positive("deadline", self.deadline)
        check_fraction("malformed_rate", self.malformed_rate)
        check_fraction("peer_downtime", self.peer_downtime)
        if self.server_crash_day is not None:
            check_non_negative("server_crash_day", self.server_crash_day)
        check_non_negative("server_crash_id", self.server_crash_id)
        check_non_negative("server_downtime_days", self.server_downtime_days)

    @property
    def enabled(self) -> bool:
        """True when any fault knob is nonzero.

        The network skips the injector entirely when this is False, so a
        default config is a strict no-op (byte-identical behaviour)."""
        return (
            self.loss_rate > 0
            or self.slow_rate > 0
            or self.malformed_rate > 0
            or self.peer_downtime > 0
            or self.server_crash_day is not None
        )
