"""The chaos-resilience harness: kill, resume, prove equivalence.

A checkpoint layer that has only ever been exercised by polite tests is
not a crash-safety story.  :class:`ChaosRunner` runs a seeded crawl in
a subprocess, SIGKILLs it at randomized (seeded) day boundaries, resumes
it — possibly killing it again — and then holds the final artefacts to
the resume-equivalence contract:

- the saved trace file must be **byte-identical** to an uninterrupted
  reference run's;
- the run metrics (``repro.metrics/2``) must carry equal counters,
  gauges and histograms (span *timings* are wall-clock and excluded);
- the restored network must pass
  :meth:`~repro.edonkey.network.Network.check_invariants` — sessions,
  indexes and caches must agree after the round-trip.

The reference run checkpoints too (without being killed), so
checkpoint-related counters match between the two runs.  Everything is
driven through the real CLI (``python -m repro crawl``) in
subprocesses: the harness proves the user-facing resume path, not a
private shortcut.
"""

from __future__ import annotations

import os
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.checkpoint.store import Checkpointer
from repro.obs import NULL_OBSERVER, Observer, RunMetrics
from repro.util.rng import RngStream
from repro.util.validation import check_fraction, check_positive


@dataclass
class ChaosSpec:
    """Shape of one chaos campaign."""

    clients: int = 60
    days: int = 6
    seed: int = 0
    #: SIGKILLs per trial (each at a distinct, seeded day boundary).
    kills: int = 1
    #: optional message loss during the crawl — chaos under faults.
    loss_rate: float = 0.0
    retries: int = 0

    def __post_init__(self) -> None:
        check_positive("clients", self.clients)
        check_positive("days", self.days)
        check_positive("kills", self.kills)
        check_fraction("loss_rate", self.loss_rate)
        if self.days < 2:
            raise ValueError("chaos needs days >= 2 (a day to kill at)")


@dataclass
class ChaosTrial:
    """Outcome of one kill/resume cycle."""

    kill_days: List[int]
    killed_ok: bool  # every kill actually terminated the subprocess
    trace_identical: bool
    metrics_equal: bool
    metrics_differences: List[str] = field(default_factory=list)
    invariant_problems: List[str] = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        return (
            self.killed_ok
            and self.trace_identical
            and self.metrics_equal
            and not self.invariant_problems
        )


@dataclass
class ChaosReport:
    """A whole campaign: reference + trials."""

    spec: ChaosSpec
    trials: List[ChaosTrial] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return bool(self.trials) and all(t.equivalent for t in self.trials)

    def as_lineage(self) -> Dict[str, object]:
        """Manifest ``lineage`` payload: what was killed where."""
        return {
            "harness": "chaos",
            "trials": len(self.trials),
            "kill_days": [t.kill_days for t in self.trials],
            "passed": self.passed,
        }

    def render(self) -> str:
        lines = [
            f"chaos: {len(self.trials)} trial(s), "
            f"{self.spec.kills} kill(s) each, "
            f"{self.spec.clients} clients x {self.spec.days} days"
        ]
        for i, trial in enumerate(self.trials):
            status = "equivalent" if trial.equivalent else "DIVERGED"
            detail = []
            if not trial.killed_ok:
                detail.append("kill did not terminate the run")
            if not trial.trace_identical:
                detail.append("trace bytes differ")
            if not trial.metrics_equal:
                detail.append(
                    "metrics differ: " + "; ".join(trial.metrics_differences[:3])
                )
            if trial.invariant_problems:
                detail.append(
                    "invariants: " + "; ".join(trial.invariant_problems[:3])
                )
            suffix = f" ({', '.join(detail)})" if detail else ""
            lines.append(
                f"  trial {i}: killed at days {trial.kill_days} -> "
                f"{status}{suffix}"
            )
        return "\n".join(lines)


#: metrics sections compared for equality (spans are wall-clock noise,
#: ``run`` is identity metadata).
_COMPARED_SECTIONS = ("counters", "gauges", "histograms")


def compare_metrics(
    reference: RunMetrics, candidate: RunMetrics
) -> List[str]:
    """Differences in the deterministic metric sections (empty = equal)."""
    differences: List[str] = []
    for section in _COMPARED_SECTIONS:
        ref = getattr(reference, section)
        cand = getattr(candidate, section)
        for name in sorted(set(ref) | set(cand)):
            if name not in ref:
                differences.append(f"{section}[{name!r}] only in candidate")
            elif name not in cand:
                differences.append(f"{section}[{name!r}] only in reference")
            elif ref[name] != cand[name]:
                differences.append(
                    f"{section}[{name!r}]: {ref[name]!r} != {cand[name]!r}"
                )
    return differences


class ChaosRunner:
    """Runs kill/resume campaigns against the CLI crawl path."""

    def __init__(
        self,
        spec: ChaosSpec,
        workdir,
        obs: Optional[Observer] = None,
    ) -> None:
        self.spec = spec
        self.workdir = Path(workdir)
        self.obs = obs if obs is not None else NULL_OBSERVER
        self.rng = RngStream(spec.seed, "chaos")

    # ------------------------------------------------------------------
    # Subprocess plumbing

    def _crawl_command(
        self, trace_path: Path, metrics_path: Path, checkpoint_dir: Path
    ) -> List[str]:
        spec = self.spec
        cmd = [
            sys.executable,
            "-m",
            "repro",
            "crawl",
            "--seed",
            str(spec.seed),
            "--clients",
            str(spec.clients),
            "--days",
            str(spec.days),
            "--output",
            str(trace_path),
            "--metrics-out",
            str(metrics_path),
            "--checkpoint-dir",
            str(checkpoint_dir),
        ]
        if spec.loss_rate > 0:
            cmd += ["--loss-rate", str(spec.loss_rate)]
        if spec.retries > 0:
            cmd += ["--retries", str(spec.retries)]
        return cmd

    def _run(self, cmd: List[str]) -> subprocess.CompletedProcess:
        import repro

        env = dict(os.environ)
        src_dir = str(Path(repro.__file__).resolve().parents[1])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_dir if not existing else src_dir + os.pathsep + existing
        )
        return subprocess.run(
            cmd, capture_output=True, text=True, env=env, check=False
        )

    # ------------------------------------------------------------------
    # Campaign

    def draw_kill_days(self) -> List[int]:
        """Distinct ascending day offsets to kill at (never the last day,
        so every trial exercises at least one genuinely resumed day)."""
        candidates = list(range(self.spec.days - 1))
        count = min(self.spec.kills, len(candidates))
        return sorted(self.rng.sample_without_replacement(candidates, count))

    def reference(self) -> Dict[str, Path]:
        """One uninterrupted (but checkpointing) run; returns artefacts."""
        ref_dir = self.workdir / "reference"
        ref_dir.mkdir(parents=True, exist_ok=True)
        paths = {
            "trace": ref_dir / "trace.jsonl",
            "metrics": ref_dir / "metrics.json",
            "checkpoints": ref_dir / "checkpoints",
        }
        with self.obs.span("chaos/reference"):
            proc = self._run(
                self._crawl_command(
                    paths["trace"], paths["metrics"], paths["checkpoints"]
                )
            )
        if proc.returncode != 0:
            raise RuntimeError(
                f"reference crawl failed (rc={proc.returncode}):\n"
                f"{proc.stdout}\n{proc.stderr}"
            )
        return paths

    def trial(self, index: int, reference_paths: Dict[str, Path]) -> ChaosTrial:
        """One kill/resume cycle against the reference artefacts."""
        kill_days = self.draw_kill_days()
        trial_dir = self.workdir / f"trial-{index}"
        trial_dir.mkdir(parents=True, exist_ok=True)
        trace_path = trial_dir / "trace.jsonl"
        metrics_path = trial_dir / "metrics.json"
        checkpoint_dir = trial_dir / "checkpoints"
        base = self._crawl_command(trace_path, metrics_path, checkpoint_dir)

        killed_ok = True
        with self.obs.span("chaos/trial"):
            for n, day in enumerate(kill_days):
                cmd = list(base) + ["--kill-after-day", str(day)]
                if n > 0:
                    cmd.append("--resume")
                proc = self._run(cmd)
                self.obs.count("chaos/kills")
                if proc.returncode == 0:
                    # The process finished instead of dying: the kill day
                    # never fired (a harness bug, not a checkpoint bug).
                    killed_ok = False
            final = self._run(list(base) + ["--resume"])
            self.obs.count("chaos/resumes", len(kill_days))
        if final.returncode != 0:
            raise RuntimeError(
                f"resumed crawl failed (rc={final.returncode}):\n"
                f"{final.stdout}\n{final.stderr}"
            )

        trace_identical = _same_bytes(reference_paths["trace"], trace_path)
        differences = compare_metrics(
            RunMetrics.read(str(reference_paths["metrics"])),
            RunMetrics.read(str(metrics_path)),
        )
        invariant_problems = self._check_invariants(checkpoint_dir)
        trial = ChaosTrial(
            kill_days=kill_days,
            killed_ok=killed_ok,
            trace_identical=trace_identical,
            metrics_equal=not differences,
            metrics_differences=differences,
            invariant_problems=invariant_problems,
        )
        self.obs.count("chaos/trials")
        if trial.equivalent:
            self.obs.count("chaos/equivalent")
        return trial

    @staticmethod
    def _check_invariants(checkpoint_dir: Path) -> List[str]:
        """Post-run structural check on the final checkpoint's network."""
        from repro.edonkey.crawler import Crawler

        crawler = Crawler.resume_from(Checkpointer(checkpoint_dir))
        return crawler.network.check_invariants()

    def run(self, trials: int = 1) -> ChaosReport:
        """A full campaign: one reference, ``trials`` kill/resume cycles."""
        check_positive("trials", trials)
        reference_paths = self.reference()
        report = ChaosReport(spec=self.spec)
        for index in range(trials):
            report.trials.append(self.trial(index, reference_paths))
        self.obs.gauge("chaos/passed", 1.0 if report.passed else 0.0)
        return report


def _same_bytes(a: Path, b: Path) -> bool:
    try:
        return a.read_bytes() == b.read_bytes()
    except OSError:
        return False
