"""Crash-safe checkpoint/resume and the chaos-resilience harness.

The paper's 56-day crawl is the kind of run nobody wants to restart
from day 0 because a machine rebooted on day 41.  This package gives
every long simulation in the repo a crash-safety story:

- :class:`Checkpointer` — versioned, checksummed snapshot files written
  atomically (``repro.checkpoint/1``: a JSON header line + pickle
  blob), with header-only inspection and corrupt-file fallback;
- :class:`~repro.edonkey.crawler.Crawler` and
  :class:`~repro.core.search.SearchSimulator` snapshot themselves
  through it and resume mid-run with **byte-identical** final artefacts
  (trace files and metrics counters), which is the contract the
  resume-equivalence suite pins;
- :class:`ChaosRunner` — proves that contract the hard way: it
  SIGKILLs seeded crawls at randomized days in subprocesses, resumes
  them, and diffs the final artefacts against an uninterrupted
  reference, checking network invariants along the way.
"""

from repro.checkpoint.chaos import ChaosReport, ChaosRunner, ChaosSpec, ChaosTrial
from repro.checkpoint.store import (
    CHECKPOINT_SCHEMA,
    CheckpointError,
    CheckpointInfo,
    Checkpointer,
)

__all__ = [
    "CHECKPOINT_SCHEMA",
    "ChaosReport",
    "ChaosRunner",
    "ChaosSpec",
    "ChaosTrial",
    "CheckpointError",
    "CheckpointInfo",
    "Checkpointer",
]
