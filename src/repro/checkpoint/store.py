"""Versioned, checksummed checkpoint files with atomic writes.

A checkpoint file (``repro.checkpoint/1``) is one JSON header line
followed by a pickle blob::

    {"schema": "repro.checkpoint/1", "kind": "crawl", "step": 12,
     "seed": 20060418, "payload_bytes": 123456,
     "payload_sha256": "...", "meta": {...}}\n
    <pickle bytes>

The header is self-describing and cheap to read (one line) — ``repro``
can list and inspect checkpoints without unpickling anything — and the
checksum makes truncation or corruption detectable before a single byte
is unpickled.  Writes go through
:func:`~repro.util.atomic.atomic_replace`, so a crash mid-save leaves
either the previous complete file or no file, never a torn one.

The payload is a pickle of live simulation objects (the crawler or the
search simulator, with their networks, traces and RNG streams).  That
couples checkpoints to the code version that wrote them — which is
exactly right for crash/resume within one run, and why the header
carries a schema version to refuse anything else loudly.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.util.atomic import atomic_replace

CHECKPOINT_SCHEMA = "repro.checkpoint/1"

#: Pickle protocol pinned for reproducibility across interpreter minors.
_PICKLE_PROTOCOL = 4

_SUFFIX = ".ckpt"


class CheckpointError(Exception):
    """A checkpoint file is missing, corrupt, or from another world."""


@dataclass(frozen=True)
class CheckpointInfo:
    """The parsed header of one checkpoint file."""

    path: Path
    kind: str
    step: int
    seed: int
    payload_bytes: int
    payload_sha256: str
    meta: Dict[str, object] = field(default_factory=dict)


def _checkpoint_name(kind: str, step: int) -> str:
    return f"{kind}-{step:08d}{_SUFFIX}"


class Checkpointer:
    """Saves and restores simulation snapshots in one directory.

    One directory holds one run's checkpoints; files are named
    ``{kind}-{step:08d}.ckpt`` so lexicographic order is step order and
    ``latest()`` needs no header reads.
    """

    def __init__(self, directory) -> None:
        self.directory = Path(directory)

    # ------------------------------------------------------------------
    # Writing

    def save(
        self,
        kind: str,
        step: int,
        payload: object,
        seed: int,
        meta: Optional[Dict[str, object]] = None,
    ) -> Path:
        """Write one checkpoint; returns its path.

        The write is atomic; re-saving the same ``(kind, step)``
        replaces the previous file (the retry-after-crash case).
        """
        if not kind or "/" in kind or "-" in kind:
            raise ValueError(
                f"kind must be a simple name without '-' or '/', got {kind!r}"
            )
        if step < 0:
            raise ValueError(f"step must be >= 0, got {step}")
        self.directory.mkdir(parents=True, exist_ok=True)
        blob = pickle.dumps(payload, protocol=_PICKLE_PROTOCOL)
        header = {
            "schema": CHECKPOINT_SCHEMA,
            "kind": kind,
            "step": step,
            "seed": seed,
            "payload_bytes": len(blob),
            "payload_sha256": hashlib.sha256(blob).hexdigest(),
            "meta": dict(meta or {}),
        }
        path = self.directory / _checkpoint_name(kind, step)
        with atomic_replace(path) as tmp:
            with open(tmp, "wb") as fh:
                fh.write(json.dumps(header, sort_keys=True).encode("utf-8"))
                fh.write(b"\n")
                fh.write(blob)
        return path

    # ------------------------------------------------------------------
    # Reading

    def inspect(self, path) -> CheckpointInfo:
        """Parse and validate a checkpoint's header (no unpickling)."""
        path = Path(path)
        try:
            with open(path, "rb") as fh:
                header_line = fh.readline()
        except OSError as exc:
            raise CheckpointError(f"cannot read {path}: {exc}") from exc
        try:
            header = json.loads(header_line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"{path}: malformed checkpoint header"
            ) from exc
        if not isinstance(header, dict) or header.get("schema") != CHECKPOINT_SCHEMA:
            raise CheckpointError(
                f"{path}: schema must be {CHECKPOINT_SCHEMA!r}, "
                f"got {header.get('schema') if isinstance(header, dict) else header!r}"
            )
        try:
            return CheckpointInfo(
                path=path,
                kind=str(header["kind"]),
                step=int(header["step"]),
                seed=int(header["seed"]),
                payload_bytes=int(header["payload_bytes"]),
                payload_sha256=str(header["payload_sha256"]),
                meta=dict(header.get("meta", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"{path}: incomplete checkpoint header ({exc})"
            ) from exc

    def load(self, path) -> Tuple[object, CheckpointInfo]:
        """Verify and unpickle one checkpoint file."""
        info = self.inspect(path)
        with open(info.path, "rb") as fh:
            fh.readline()  # skip the header
            blob = fh.read()
        if len(blob) != info.payload_bytes:
            raise CheckpointError(
                f"{info.path}: payload is {len(blob)} bytes, header "
                f"promises {info.payload_bytes} (truncated?)"
            )
        digest = hashlib.sha256(blob).hexdigest()
        if digest != info.payload_sha256:
            raise CheckpointError(
                f"{info.path}: payload checksum mismatch (corrupt file)"
            )
        try:
            payload = pickle.loads(blob)
        except Exception as exc:  # noqa: BLE001 — anything here is corruption
            raise CheckpointError(
                f"{info.path}: cannot unpickle payload ({exc})"
            ) from exc
        return payload, info

    def list(self, kind: Optional[str] = None) -> List[Path]:
        """All checkpoint files, step order (optionally one kind)."""
        if not self.directory.is_dir():
            return []
        pattern = f"{kind}-*{_SUFFIX}" if kind else f"*{_SUFFIX}"
        return sorted(self.directory.glob(pattern))

    def latest(self, kind: str) -> Optional[Path]:
        """The highest-step *readable* checkpoint of ``kind``, or None.

        Corrupt or truncated files (e.g. a snapshot half-written by a
        dying machine without atomic-rename semantics) are skipped, so a
        resume always starts from the newest intact state.
        """
        for path in reversed(self.list(kind)):
            try:
                self.inspect(path)
            except CheckpointError:
                continue
            return path
        return None

    def load_latest(self, kind: str) -> Tuple[object, CheckpointInfo]:
        """Load the newest fully-intact checkpoint of ``kind`` (or raise).

        Falls back through older checkpoints when newer ones fail their
        checksum — the resume story survives a corrupted latest file as
        long as any earlier snapshot is whole.
        """
        for path in reversed(self.list(kind)):
            try:
                return self.load(path)
            except CheckpointError:
                continue
        raise CheckpointError(
            f"no intact {kind!r} checkpoint found in {self.directory}"
        )
