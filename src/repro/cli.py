"""Command-line interface.

``python -m repro <command>`` exposes the library's main workflows:

- ``generate``   — generate a synthetic trace and save it to a file;
- ``stats``      — print Table-1 style characteristics of a saved trace;
- ``analyze``    — run a clustering analysis on a saved or fresh trace;
- ``search``     — run the semantic-search simulation;
- ``experiment`` — reproduce a specific paper table/figure by registry
  name (``--list`` prints the registry);
- ``run-all``    — run every registered experiment, writing one run
  manifest each (skipped on a later run if the manifest still matches);
- ``crawl``      — run the protocol-level network + crawler simulation
  (``--store DIR`` additionally appends each day to an on-disk trace
  store as it completes);
- ``trace``      — convert between JSONL traces and columnar trace
  stores (``convert``), summarize either (``info``), and run a full
  store integrity check (``verify``).

Every command takes ``--seed`` and prints deterministic output, so CLI
runs are reproducible and scriptable.  ``experiment`` and ``run-all``
dispatch through :mod:`repro.runtime`'s experiment registry.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
from typing import List, Optional

from repro.runtime import DEFAULT_SEED, Scale, workload_config


_SCALES = {
    "tiny": Scale.TINY,
    "small": Scale.SMALL,
    "default": Scale.DEFAULT,
    "large": Scale.LARGE,
    "huge": Scale.HUGE,
}
_SCALE_CHOICES = ["tiny", "small", "default", "large", "huge"]


def _scale(name: str) -> Scale:
    try:
        return _SCALES[name]
    except KeyError:
        raise argparse.ArgumentTypeError(
            f"unknown scale {name!r}; choose from {', '.join(sorted(_SCALES))}"
        ) from None


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--scale",
        choices=_SCALE_CHOICES,
        default="small",
        help="workload scale preset",
    )


# ----------------------------------------------------------------------
# observability plumbing


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print a timing-span / histogram / counter profile after the run",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write the run's metrics JSON (repro.metrics/2) to PATH",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help="write a Chrome trace_event JSON of the run to PATH "
        "(load it in chrome://tracing or Perfetto)",
    )
    _add_telemetry_flags(parser)


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--telemetry-out",
        metavar="PATH",
        help="append live repro.telemetry/1 JSONL snapshots to PATH while "
        "the run executes (crash-persistent; watch with `repro tail`)",
    )
    parser.add_argument(
        "--telemetry-interval",
        type=float,
        default=1.0,
        metavar="SECS",
        help="seconds between telemetry snapshots (default: 1.0)",
    )


def _observer(args: argparse.Namespace):
    """An enabled Observer when any obs flag is set, else the shared no-op.

    Instrumentation is RNG-neutral, so either way the simulated outputs
    are identical; the disabled path just skips all recording.
    ``--trace-out`` additionally attaches an event tracer.
    """
    from repro.obs import NULL_OBSERVER, Observer, TraceRecorder

    trace_out = getattr(args, "trace_out", None)
    telemetry_out = getattr(args, "telemetry_out", None)
    if args.profile or args.metrics_out or trace_out or telemetry_out:
        return Observer(tracer=TraceRecorder() if trace_out else None)
    return NULL_OBSERVER


def _check_out_parents(args: argparse.Namespace) -> Optional[str]:
    """An error message when an output flag's parent directory is missing.

    Checked up front so a long run cannot fail at write time, hours in,
    over a typo'd path.  (``run-all``'s ``--metrics-out`` is a boolean
    and is skipped by the ``isinstance`` guard.)
    """
    for attr, flag in (
        ("metrics_out", "--metrics-out"),
        ("trace_out", "--trace-out"),
        ("telemetry_out", "--telemetry-out"),
    ):
        path = getattr(args, attr, None)
        if not isinstance(path, str) or not path:
            continue
        parent = os.path.dirname(os.path.abspath(path))
        if not os.path.isdir(parent):
            return (
                f"error: parent directory of {flag} does not exist: {parent}"
            )
    return None


def _telemetry_spec(args: argparse.Namespace):
    """A TelemetrySpec when ``--telemetry-out`` is set, else None."""
    path = getattr(args, "telemetry_out", None)
    if not path:
        return None
    from repro.obs.telemetry import TelemetrySpec

    return TelemetrySpec(
        path=path, interval_s=getattr(args, "telemetry_interval", 1.0)
    )


def _start_telemetry(args: argparse.Namespace, obs, run_info: dict):
    """Start the coordinator's flight recorder (source ``main``), or None."""
    spec = _telemetry_spec(args)
    if spec is None:
        return None
    from repro.obs.telemetry import FlightRecorder

    return FlightRecorder(
        spec.path,
        obs,
        interval_s=spec.interval_s,
        source="main",
        run=run_info,
    ).start()


def _emit_observability(args: argparse.Namespace, obs, run_info: dict) -> None:
    if not obs.enabled:
        return
    from repro.obs import render_profile

    metrics = obs.report(run=run_info)
    if args.profile:
        print()
        print(render_profile(metrics))
    if args.metrics_out:
        metrics.write(args.metrics_out)
        print(f"Wrote metrics to {args.metrics_out}")
    if getattr(args, "trace_out", None) and obs.tracer is not None:
        obs.tracer.write_chrome(args.trace_out)
        dropped = (
            f" ({obs.tracer.dropped} oldest events dropped)"
            if obs.tracer.dropped
            else ""
        )
        print(
            f"Wrote Chrome trace ({len(obs.tracer)} events) to "
            f"{args.trace_out}{dropped}"
        )
    if getattr(args, "telemetry_out", None):
        print(f"Wrote telemetry to {args.telemetry_out}")


# ----------------------------------------------------------------------
# generate


def cmd_generate(args: argparse.Namespace) -> int:
    from repro.trace.io import save_trace
    from repro.workload.generator import SyntheticWorkloadGenerator

    from repro.obs.log import get_log

    config = workload_config(_scale(args.scale))
    generator = SyntheticWorkloadGenerator(config=config, seed=args.seed)
    get_log().info(
        f"Generating {args.scale} trace "
        f"({config.num_clients} clients, {config.num_files} files, "
        f"{config.days} days)..."
    )
    trace = generator.generate()
    if args.anonymize:
        from repro.trace.io import anonymize

        trace = anonymize(trace)
    save_trace(trace, args.output)
    print(f"Wrote {trace.num_snapshots} snapshots to {args.output}")
    return 0


# ----------------------------------------------------------------------
# stats


def cmd_stats(args: argparse.Namespace) -> int:
    from repro.trace.extrapolation import extrapolate
    from repro.trace.filtering import filter_duplicates
    from repro.trace.io import load_trace
    from repro.trace.stats import general_characteristics
    from repro.util.tables import format_table, percent

    trace = load_trace(args.trace)
    filtered = filter_duplicates(trace)
    extrapolated = extrapolate(filtered)
    rows = []
    for label, variant in (
        ("full", trace),
        ("filtered", filtered),
        ("extrapolated", extrapolated),
    ):
        chars = general_characteristics(variant)
        rows.append(
            (
                label,
                chars.duration_days,
                chars.num_clients,
                percent(chars.free_rider_fraction),
                chars.num_distinct_files,
                chars.num_snapshots,
            )
        )
    print(
        format_table(
            ("trace", "days", "clients", "free-riders", "files", "snapshots"),
            rows,
            title=f"Characteristics of {args.trace}",
        )
    )
    return 0


# ----------------------------------------------------------------------
# analyze


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.geographic import top_as_table
    from repro.analysis.semantic import clustering_correlation
    from repro.trace.filtering import filter_duplicates
    from repro.trace.io import load_trace
    from repro.util.tables import format_table, percent, render_series
    from repro.workload.generator import SyntheticWorkloadGenerator

    if args.trace:
        trace = load_trace(args.trace)
    else:
        config = workload_config(_scale(args.scale))
        trace = SyntheticWorkloadGenerator(config=config, seed=args.seed).generate()
    filtered = filter_duplicates(trace)

    rows = [
        (r.asn, percent(r.global_share), percent(r.national_share), r.country)
        for r in top_as_table(filtered, 5)
    ]
    print(format_table(("AS", "global", "national", "country"), rows,
                       title="Top autonomous systems"))

    static = filtered.to_static()
    series = clustering_correlation(static.compiled(), name="clustering")
    print()
    print(render_series([series], title="P(another common file | n common), %:",
                        max_points=10))
    return 0


# ----------------------------------------------------------------------
# search


def cmd_search(args: argparse.Namespace) -> int:
    from repro.core.search import SearchConfig, simulate_search
    from repro.trace.filtering import filter_duplicates
    from repro.trace.io import load_trace
    from repro.util.tables import format_table, percent
    from repro.workload.generator import SyntheticWorkloadGenerator

    problem = _check_out_parents(args)
    if problem:
        print(problem, file=sys.stderr)
        return 2
    if args.trace:
        static = filter_duplicates(load_trace(args.trace)).to_static()
    else:
        config = workload_config(_scale(args.scale))
        generator = SyntheticWorkloadGenerator(config=config, seed=args.seed)
        static = generator.generate_static()
        aliases = [
            p.meta.client_id for p in generator.profiles if p.alias_of is not None
        ]
        static = static.without_clients(aliases)

    obs = _observer(args)
    rows = []
    faulty = args.loss_rate > 0 or args.availability < 1 or args.evict_dead
    configs = [
        SearchConfig(
            list_size=list_size,
            strategy=args.strategy,
            two_hop=args.two_hop,
            track_load=False,
            availability=args.availability,
            probe_loss_rate=args.loss_rate,
            evict_dead=args.evict_dead,
            seed=args.seed,
        )
        for list_size in args.list_sizes
    ]
    recorder = _start_telemetry(
        args,
        obs,
        {"command": "search", "seed": args.seed, "scale": args.scale},
    )
    outcome = "completed"
    try:
        if args.workers > 1:
            from repro.runtime.sharded import sharded_search

            results = sharded_search(
                static,
                configs,
                workers=args.workers,
                obs=obs,
                span_names=[f"search@{size}" for size in args.list_sizes],
                telemetry=_telemetry_spec(args),
            )
        else:
            results = []
            for list_size, config in zip(args.list_sizes, configs):
                with obs.span(f"search@{list_size}"):
                    results.append(simulate_search(static, config, obs=obs))
    except BaseException:
        outcome = "failed"
        raise
    finally:
        if recorder is not None:
            recorder.close(outcome)
    for list_size, result in zip(args.list_sizes, results):
        row = (list_size, result.rates.requests, percent(result.hit_rate))
        if faulty:
            row += (result.probes_lost, result.evictions)
        rows.append(row)
    hop = "two-hop" if args.two_hop else "one-hop"
    headers = ("neighbours", "requests", "hit rate")
    if faulty:
        headers += ("probes lost", "evictions")
    print(
        format_table(
            headers,
            rows,
            title=f"{args.strategy.upper()} semantic search ({hop})",
        )
    )
    _emit_observability(
        args,
        obs,
        {
            "command": "search",
            "seed": args.seed,
            "scale": args.scale,
            "strategy": args.strategy,
            "two_hop": args.two_hop,
        },
    )
    return 0


# ----------------------------------------------------------------------
# experiment


def _experiment_ids() -> dict:
    """Registry-derived ``{cli name: runner function name}`` mapping.

    Kept as a function (and mirrored in the module-level
    ``EXPERIMENT_IDS`` below) for the historical import surface; the
    registry itself is the source of truth.
    """
    from repro.runtime.registry import load_all

    ids = {}
    for spec in load_all():
        for name in (spec.name, *spec.aliases):
            ids[name] = spec.runner_name
    return ids


def __getattr__(name: str):
    # ``EXPERIMENT_IDS`` materializes the whole experiment registry (and
    # transitively numpy); computing it on first access keeps a bare
    # ``import repro.cli`` — the help and store-tool paths — lean.
    if name == "EXPERIMENT_IDS":
        value = _experiment_ids()
        globals()["EXPERIMENT_IDS"] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _render_experiment_list() -> str:
    from repro.runtime.registry import load_all
    from repro.util.tables import format_table

    rows = []
    for spec in load_all():
        name = spec.name
        if spec.aliases:
            name += " (" + ", ".join(spec.aliases) + ")"
        rows.append((name, spec.artefact, spec.scale_name, spec.description))
    return format_table(
        ("name", "artefact", "scale", "description"),
        rows,
        title=f"Registered experiments ({len(rows)})",
    )


def cmd_experiment(args: argparse.Namespace) -> int:
    from repro.runtime import RunContext, UnknownExperimentError
    from repro.runtime.registry import get as get_spec, load_all

    load_all()
    if args.list or args.id is None:
        print(_render_experiment_list())
        return 0
    try:
        spec = get_spec(args.id)
    except UnknownExperimentError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.workers > 1 and spec.sequential_only:
        print(
            f"error: experiment {spec.name!r} is sequential-only (its "
            "engine refuses compiled/vectorized input or manages its own "
            "subprocesses) and cannot run with --workers",
            file=sys.stderr,
        )
        return 2
    problem = _check_out_parents(args)
    if problem:
        print(problem, file=sys.stderr)
        return 2
    obs = _observer(args)
    ctx = RunContext(seed=args.seed, scale=_scale(args.scale), obs=obs)
    recorder = _start_telemetry(
        args,
        obs,
        {"command": "experiment", "id": args.id, "scale": args.scale},
    )
    outcome = "completed"
    try:
        with obs.span(f"experiment/{args.id}"):
            result = spec.run(ctx=ctx)
    except BaseException:
        outcome = "failed"
        raise
    finally:
        if recorder is not None:
            recorder.close(outcome)
    print(result.render())
    _emit_observability(
        args,
        obs,
        {"command": "experiment", "id": args.id, "scale": args.scale},
    )
    return 0


# ----------------------------------------------------------------------
# run-all


def cmd_run_all(args: argparse.Namespace) -> int:
    from repro.obs.log import get_log
    from repro.runtime import RunContext, Runner, UnknownExperimentError

    problem = _check_out_parents(args)
    if problem:
        print(problem, file=sys.stderr)
        return 2
    ctx = RunContext(seed=args.seed, scale=_scale(args.scale))
    runner = Runner(
        ctx=ctx,
        results_dir=args.results_dir,
        force=args.force,
        write_metrics=args.metrics_out,
        telemetry=_telemetry_spec(args),
    )

    if args.workers > 1:
        return _run_all_parallel(args, runner)

    report = _run_all_reporter(args)

    get_log().info(
        f"Running experiments at scale={args.scale} seed={args.seed} "
        f"-> {args.results_dir}"
    )
    try:
        outcomes = runner.run_all(args.only or None, on_outcome=report)
    except UnknownExperimentError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return _run_all_summary(outcomes)


def _run_all_reporter(args: argparse.Namespace):
    def report(outcome) -> None:
        if outcome.skipped:
            status = "skip (manifest up to date)"
        elif outcome.ok:
            status = f"ok   ({outcome.manifest.wall_time_s:.2f}s)"
        else:
            status = f"FAIL ({outcome.error})"
        print(f"  {outcome.name:<20} {status}")
        if args.profile and outcome.ok and not outcome.skipped:
            from repro.obs import RunMetrics, render_profile

            print()
            print(
                render_profile(
                    RunMetrics.from_dict(outcome.manifest.run_metrics)
                )
            )
            print()

    return report


def _run_all_summary(outcomes) -> int:
    executed = sum(1 for o in outcomes if o.ok and not o.skipped)
    skipped = sum(1 for o in outcomes if o.skipped)
    failed = [o for o in outcomes if not o.ok]
    print(
        f"{executed} run, {skipped} skipped, {len(failed)} failed "
        f"({len(outcomes)} total)"
    )
    if failed:
        for outcome in failed:
            print(f"failed: {outcome.name}: {outcome.error}", file=sys.stderr)
        return 1
    return 0


def _run_all_parallel(args: argparse.Namespace, runner) -> int:
    """``run-all --workers N``: one experiment per worker process.

    An explicit ``--only`` selection naming a sequential-only experiment
    is rejected (rc=2) — failing fast beats failing deep inside a
    worker.  The default full sweep instead fans out the parallelizable
    experiments and runs the sequential-only remainder in-process.
    """
    from repro.runtime import UnknownExperimentError
    from repro.runtime.registry import get as get_spec, load_all
    from repro.runtime.sharded import run_experiments_parallel

    specs = load_all()
    if args.only:
        try:
            selected = [get_spec(name) for name in args.only]
        except UnknownExperimentError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        blocked = [spec.name for spec in selected if spec.sequential_only]
        if blocked:
            print(
                "error: sequential-only experiment(s) cannot run with "
                f"--workers: {', '.join(blocked)} (their engines refuse "
                "compiled/vectorized input or manage their own "
                "subprocesses); drop them from --only or drop --workers",
                file=sys.stderr,
            )
            return 2
        parallel_names = [spec.name for spec in selected]
        sequential_names = []
    else:
        parallel_names = [s.name for s in specs if not s.sequential_only]
        sequential_names = [s.name for s in specs if s.sequential_only]

    report = _run_all_reporter(args)
    from repro.obs.log import get_log

    get_log().info(
        f"Running experiments at scale={args.scale} seed={args.seed} "
        f"-> {args.results_dir} ({args.workers} workers)"
    )
    outcomes = run_experiments_parallel(
        parallel_names,
        seed=args.seed,
        scale=_scale(args.scale),
        results_dir=args.results_dir,
        workers=args.workers,
        force=args.force,
        write_metrics=args.metrics_out,
        on_outcome=report,
        telemetry=_telemetry_spec(args),
    )
    if sequential_names:
        print(
            f"  ({len(sequential_names)} sequential-only experiment(s) "
            "run in-process)"
        )
        outcomes += runner.run_all(sequential_names, on_outcome=report)
    return _run_all_summary(outcomes)


# ----------------------------------------------------------------------
# metrics


def cmd_metrics_diff(args: argparse.Namespace) -> int:
    from repro.obs import RunMetrics, diff_metrics, parse_tolerance_spec

    try:
        rules = parse_tolerance_spec(args.fail_on)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    loaded = []
    for label, path in (("baseline", args.baseline), ("current", args.current)):
        try:
            loaded.append(RunMetrics.read(path))
        except (OSError, ValueError) as exc:
            print(f"cannot load {label} {path}: {exc}", file=sys.stderr)
            return 2
    baseline, current = loaded
    diff = diff_metrics(baseline, current, rules)
    print(diff.render())
    return 0 if diff.ok else 1


# ----------------------------------------------------------------------
# tail (live telemetry viewer)


def _render_tail(records, now: float) -> str:
    """One table row per telemetry source: progress, RSS, heartbeat age."""
    from repro.util.tables import format_table

    by_source: dict = {}
    for record in records:
        if record.get("kind") in ("snapshot", "end"):
            by_source[record["source"]] = record
    rows = []
    for source in sorted(by_source):
        record = by_source[source]
        progress = record.get("progress", {})
        if "days_done" in progress and "days_total" in progress:
            shown = (
                f"day {progress['days_done']:.0f}/{progress['days_total']:.0f}"
            )
        elif "requests_done" in progress:
            shown = f"{progress['requests_done']:.0f} requests"
        elif progress:
            key = sorted(progress)[0]
            shown = f"{key}={progress[key]:g}"
        else:
            shown = "-"
        resource = record.get("resource", {})
        rss_mb = resource.get("rss_bytes", 0.0) / (1024 * 1024)
        cpu_s = resource.get("cpu_user_s", 0.0) + resource.get(
            "cpu_system_s", 0.0
        )
        age_s = max(0.0, now - record.get("ts", now))
        state = (
            record.get("outcome", "ended")
            if record["kind"] == "end"
            else "live"
        )
        rows.append(
            (
                source,
                record.get("pid", "-"),
                shown,
                f"{rss_mb:.1f}",
                f"{cpu_s:.1f}",
                f"{record.get('heartbeat_s', 0.0):.1f}",
                f"{age_s:.1f}",
                state,
            )
        )
    return format_table(
        (
            "source",
            "pid",
            "progress",
            "rss MB",
            "cpu s",
            "uptime s",
            "age s",
            "state",
        ),
        rows,
        title=f"Telemetry ({len(records)} records)",
    )


def cmd_tail(args: argparse.Namespace) -> int:
    import time as _time

    from repro.obs.telemetry import read_telemetry

    def render_once() -> object:
        try:
            records, truncated = read_telemetry(args.file)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read {args.file}: {exc}", file=sys.stderr)
            return None
        if not records:
            print(f"{args.file}: no complete telemetry records yet")
            return records
        print(_render_tail(records, now=_time.time()))
        if truncated:
            print("  (torn final line ignored — writer crashed mid-append?)")
        return records

    records = render_once()
    if records is None:
        return 2
    if not args.follow:
        return 0
    try:
        while True:
            sources = {
                r["source"] for r in records if r.get("kind") == "start"
            }
            ended = {r["source"] for r in records if r.get("kind") == "end"}
            if records and sources and sources <= ended:
                return 0
            _time.sleep(args.interval)
            print()
            records = render_once()
            if records is None:
                return 2
    except KeyboardInterrupt:
        return 0


# ----------------------------------------------------------------------
# report (standalone HTML run report)


def cmd_report(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs.htmlreport import write_report

    if not (args.metrics or args.telemetry or args.trace):
        print(
            "error: nothing to report — pass at least one of --metrics, "
            "--telemetry, --trace",
            file=sys.stderr,
        )
        return 2
    metrics = telemetry = trace = None
    try:
        if args.metrics:
            from repro.obs import RunMetrics

            metrics = RunMetrics.read(args.metrics)
        if args.telemetry:
            from repro.obs.telemetry import read_telemetry

            telemetry, _truncated = read_telemetry(args.telemetry)
        if args.trace:
            with open(args.trace, "r", encoding="utf-8") as fh:
                trace = _json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"error: cannot load report input: {exc}", file=sys.stderr)
        return 2
    try:
        write_report(
            args.output,
            metrics=metrics,
            telemetry=telemetry,
            trace=trace,
            title=args.title,
        )
    except OSError as exc:
        print(f"error: cannot write {args.output}: {exc}", file=sys.stderr)
        return 2
    print(f"Wrote report to {args.output}")
    return 0


# ----------------------------------------------------------------------
# bench-summary


def cmd_bench_summary(args: argparse.Namespace) -> int:
    from repro.obs.benchsummary import (
        collate_results,
        render_summary,
        summary_to_json,
    )

    try:
        entries = collate_results(args.results_dir)
    except OSError as exc:
        print(f"error: cannot read {args.results_dir}: {exc}", file=sys.stderr)
        return 2
    if not entries:
        print(
            f"error: no benchmark result JSONs in {args.results_dir}",
            file=sys.stderr,
        )
        return 2
    text = render_summary(entries)
    print(text)
    if args.json:
        from repro.util.atomic import atomic_write_text

        atomic_write_text(args.json, summary_to_json(entries) + "\n")
        print(f"Wrote summary JSON to {args.json}")
    if args.txt:
        from repro.util.atomic import atomic_write_text

        atomic_write_text(args.txt, text + "\n")
        print(f"Wrote summary table to {args.txt}")
    return 0


# ----------------------------------------------------------------------
# calibrate


def cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.trace.io import load_trace
    from repro.workload.calibration import (
        all_passed,
        calibration_report,
        render_report,
    )
    from repro.workload.generator import SyntheticWorkloadGenerator

    if args.trace:
        trace = load_trace(args.trace)
    else:
        config = workload_config(_scale(args.scale))
        trace = SyntheticWorkloadGenerator(config=config, seed=args.seed).generate()
    checks = calibration_report(trace)
    print(render_report(checks))
    return 0 if all_passed(checks) else 1


# ----------------------------------------------------------------------
# trace (store tooling)


def _is_store(path: str) -> bool:
    return os.path.isdir(path)


def cmd_trace_convert(args: argparse.Namespace) -> int:
    from repro.trace.io import convert_trace_file_to_store, store_to_trace_file
    from repro.trace.store import TraceStoreError

    try:
        if _is_store(args.src):
            store_to_trace_file(args.src, args.dst)
            print(f"Wrote trace file {args.dst} from store {args.src}")
        else:
            store = convert_trace_file_to_store(args.src, args.dst)
            with store:
                print(
                    f"Wrote store {args.dst}: {len(store.days())} days, "
                    f"{store.num_clients} clients, {store.num_files} files, "
                    f"{store.num_snapshots} snapshots"
                )
    except (OSError, ValueError) as exc:  # TraceStoreError is a ValueError
        kind = "store" if isinstance(exc, TraceStoreError) else "trace"
        print(f"error: cannot convert {kind}: {exc}", file=sys.stderr)
        return 2
    return 0


def cmd_trace_info(args: argparse.Namespace) -> int:
    from repro.util.tables import format_table

    try:
        if _is_store(args.path):
            from repro.trace.store import open_store

            with open_store(args.path) as store:
                manifest = store.manifest
                print(f"Trace store {args.path} ({manifest['format']})")
                print(
                    f"  clients={store.num_clients} files={store.num_files} "
                    f"snapshots={store.num_snapshots} "
                    f"sorted_intern={manifest['sorted_intern']}"
                )
                rows = [
                    (s["day"], s["clients"], s["replicas"], s["sha256"][:12])
                    for s in manifest["segments"]
                ]
                print(
                    format_table(
                        ("day", "clients", "replicas", "sha256[:12]"),
                        rows,
                        title=f"Segments ({len(rows)})",
                    )
                )
        else:
            from repro.trace.io import load_trace

            trace = load_trace(args.path)
            days = trace.days()
            span = f"{days[0]}..{days[-1]}" if days else "none"
            print(f"Trace file {args.path}")
            print(
                f"  clients={len(trace.clients)} files={len(trace.files)} "
                f"snapshots={trace.num_snapshots} days={len(days)} ({span})"
            )
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    return 0


def cmd_trace_verify(args: argparse.Namespace) -> int:
    from repro.trace.store import verify_store

    problems = verify_store(args.path)
    if problems:
        print(f"{args.path}: {len(problems)} problem(s)", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print(f"{args.path}: OK")
    return 0


# ----------------------------------------------------------------------
# crawl


def cmd_crawl(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.checkpoint import CheckpointError, Checkpointer
    from repro.edonkey.crawler import (
        CRAWL_CHECKPOINT_KIND,
        Crawler,
        CrawlerConfig,
    )
    from repro.edonkey.network import NetworkConfig, build_network
    from repro.faults import FaultConfig, FaultSchedule, RetryPolicy
    from repro.trace.io import save_trace
    from repro.trace.stats import general_characteristics
    from repro.util.tables import percent

    problem = _check_out_parents(args)
    if problem:
        print(problem, file=sys.stderr)
        return 2
    checkpointer = (
        Checkpointer(args.checkpoint_dir) if args.checkpoint_dir else None
    )
    if checkpointer is None:
        for flag, value in (
            ("--resume", args.resume),
            ("--kill-after-day", args.kill_after_day is not None),
        ):
            if value:
                print(f"error: {flag} requires --checkpoint-dir", file=sys.stderr)
                return 2

    if args.stream:
        if not args.store:
            print(
                "error: --stream requires --store (streamed days exist "
                "only in the on-disk sink)",
                file=sys.stderr,
            )
            return 2
        if args.output:
            print(
                "error: --stream cannot be combined with --output "
                "(streamed days are dropped from memory; run "
                "`repro trace convert` on the store instead)",
                file=sys.stderr,
            )
            return 2

    if args.workers > 1:
        # The shard split reproduces the sequential budget window only
        # when every browse costs exactly one budget unit and only one
        # process owns durable side state — reject anything that breaks
        # either premise instead of failing deep inside a worker.
        for flag, active in (
            ("--checkpoint-dir", bool(args.checkpoint_dir)),
            ("--retries", args.retries > 0),
            ("--fault-schedule", bool(args.fault_schedule)),
            ("--loss-rate", args.loss_rate > 0),
            ("--slow-rate", args.slow_rate > 0),
            ("--malformed-rate", args.malformed_rate > 0),
            ("--peer-downtime", args.peer_downtime > 0),
            ("--server-crash-day", args.server_crash_day is not None),
        ):
            if active:
                print(
                    f"error: {flag} cannot be combined with --workers "
                    "(sharded crawling requires a fault-free, retry-free "
                    "budget window and a single checkpointing process)",
                    file=sys.stderr,
                )
                return 2

    if args.resume:
        if args.fault_schedule:
            # The schedule rides inside the checkpoint; re-specifying it
            # on resume invites a silent mismatch.
            print(
                "error: --fault-schedule cannot be combined with --resume "
                "(the schedule is restored from the checkpoint)",
                file=sys.stderr,
            )
            return 2
        try:
            crawler = Crawler.resume_from(checkpointer)
            latest = checkpointer.latest(CRAWL_CHECKPOINT_KIND)
            info = checkpointer.inspect(latest)
        except CheckpointError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        mismatches = []
        if info.seed != args.seed:
            mismatches.append(f"seed: checkpoint={info.seed}, flag={args.seed}")
        restored_clients = crawler.network.generator.config.num_clients
        if restored_clients != args.clients:
            mismatches.append(
                f"clients: checkpoint={restored_clients}, flag={args.clients}"
            )
        if crawler.config.days != args.days:
            mismatches.append(
                f"days: checkpoint={crawler.config.days}, flag={args.days}"
            )
        # The store directory rides inside the checkpoint (resume keeps
        # appending to the same store); re-specifying a *different* one
        # would silently split the trace across two stores.
        restored_store = getattr(crawler, "store_dir", None)
        if args.store is not None and restored_store != os.fspath(args.store):
            mismatches.append(
                f"store: checkpoint={restored_store}, flag={args.store}"
            )
        if mismatches:
            print(
                "error: checkpoint does not match the requested run "
                f"({'; '.join(mismatches)})",
                file=sys.stderr,
            )
            return 2
        problems = crawler.network.check_invariants()
        if problems:
            print(
                "error: restored network fails invariant checks:",
                file=sys.stderr,
            )
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 3
        # Resume with the observer that was snapshotted alongside the
        # simulation, so counters keep accumulating across the crash.
        obs = crawler.obs
        wants_obs = args.profile or args.metrics_out or args.trace_out
        if wants_obs and not obs.enabled:
            print(
                "warning: the interrupted run was not observed, so "
                "--profile/--metrics-out/--trace-out have nothing to "
                "report; pass them on the initial run",
                file=sys.stderr,
            )
        network = crawler.network
        from repro.obs.log import get_log

        get_log().info(
            f"Resuming crawl at day {crawler.next_day_offset}/{args.days} "
            f"from {info.path.name}..."
        )
    else:
        workload = dataclasses.replace(
            workload_config(Scale.SMALL),
            num_clients=args.clients,
            num_files=max(args.clients * 15, 500),
            days=args.days,
            mainstream_pool_size=min(args.clients, max(args.clients * 15, 500)),
        )
        faults = FaultConfig(
            loss_rate=args.loss_rate,
            slow_rate=args.slow_rate,
            deadline=args.timeout,
            malformed_rate=args.malformed_rate,
            peer_downtime=args.peer_downtime,
            server_crash_day=args.server_crash_day,
            server_crash_id=args.server_crash_id,
            server_downtime_days=args.server_downtime,
        )
        schedule = None
        if args.fault_schedule:
            try:
                schedule = FaultSchedule.load(args.fault_schedule)
            except (OSError, ValueError) as exc:
                print(
                    f"error: cannot load fault schedule: {exc}", file=sys.stderr
                )
                return 2
        obs = _observer(args)
        if args.workers > 1:
            from repro.obs.log import get_log
            from repro.runtime.sharded import ShardedRunner

            get_log().info(
                f"Crawling {args.clients} clients for {args.days} days "
                f"({args.workers} workers)..."
            )
            recorder = _start_telemetry(
                args,
                obs,
                {
                    "command": "crawl",
                    "seed": args.seed,
                    "clients": args.clients,
                    "days": args.days,
                    "workers": args.workers,
                },
            )
            outcome = "completed"
            try:
                sharded = ShardedRunner(
                    args.workers, obs=obs, telemetry=_telemetry_spec(args)
                ).crawl(
                    NetworkConfig(
                        workload=workload, faults=faults, fault_schedule=None
                    ),
                    CrawlerConfig(days=args.days),
                    seed=args.seed,
                    days=args.days,
                    store_dir=args.store,
                    stream=args.stream,
                )
            except BaseException:
                outcome = "failed"
                raise
            finally:
                if recorder is not None:
                    recorder.close(outcome)
            return _crawl_summary(
                args,
                obs,
                sharded.trace,
                crawler=None,
                faults_active=False,
                store_dir=args.store,
            )
        network = build_network(
            NetworkConfig(
                workload=workload, faults=faults, fault_schedule=schedule
            ),
            seed=args.seed,
            obs=obs,
        )
        retry = RetryPolicy(max_retries=args.retries) if args.retries > 0 else None
        crawler = Crawler(
            network,
            CrawlerConfig(days=args.days, retry=retry),
            seed=args.seed,
            store_dir=args.store,
            stream=args.stream,
        )
        from repro.obs.log import get_log

        get_log().info(
            f"Crawling {args.clients} clients for {args.days} days..."
        )

    on_day_end = None
    if args.kill_after_day is not None:
        kill_day = args.kill_after_day

        def on_day_end(day_offset: int) -> None:
            if day_offset == kill_day:
                # A real crash: no cleanup, no atexit, no flushing.  The
                # checkpoint written just before this hook is all that
                # survives — exactly what resume must cope with.
                os.kill(os.getpid(), signal.SIGKILL)

    recorder = _start_telemetry(
        args,
        obs,
        {
            "command": "crawl",
            "seed": args.seed,
            "clients": args.clients,
            "days": args.days,
        },
    )
    outcome = "completed"
    try:
        trace = crawler.crawl(checkpointer=checkpointer, on_day_end=on_day_end)
    except BaseException:
        outcome = "failed"
        raise
    finally:
        if recorder is not None:
            recorder.close(outcome)
    return _crawl_summary(
        args,
        obs,
        trace,
        crawler=crawler,
        faults_active=network.faults.active,
        store_dir=getattr(crawler, "store_dir", None),
    )


def _crawl_summary(
    args: argparse.Namespace,
    obs,
    trace,
    crawler,
    faults_active: bool,
    store_dir,
) -> int:
    from repro.trace.io import save_trace
    from repro.trace.stats import general_characteristics
    from repro.util.tables import percent

    if args.stream:
        # Streamed days live only in the store; the resident trace keeps
        # metadata and counts, so summarize those instead of the (empty)
        # in-memory snapshot view.
        print(
            f"Streamed {trace.num_snapshots} snapshots of "
            f"{len(trace.clients)} clients ({len(trace.files)} files) "
            f"into {store_dir}"
        )
    else:
        chars = general_characteristics(trace)
        print(
            f"Collected {chars.num_snapshots} snapshots of {chars.num_clients} "
            f"clients ({percent(chars.free_rider_fraction)} free-riders), "
            f"{chars.num_distinct_files} files."
        )
    if faults_active and crawler is not None:
        print(crawler.degradation_report(trace).render())
    if args.output:
        save_trace(trace, args.output)
        print(f"Wrote trace to {args.output}")
    if store_dir and not args.stream:
        print(f"Appended {len(trace.days())} day segments to {store_dir}")
    _emit_observability(
        args,
        obs,
        {
            "command": "crawl",
            "seed": args.seed,
            "clients": args.clients,
            "days": args.days,
        },
    )
    return 0


# ----------------------------------------------------------------------
# serve / loadgen (service mode)


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.faults import FaultConfig
    from repro.service import ServiceConfig, run_service

    problem = _check_out_parents(args)
    if problem:
        print(problem, file=sys.stderr)
        return 2
    if args.port_file:
        parent = os.path.dirname(os.path.abspath(args.port_file))
        if not os.path.isdir(parent):
            print(
                f"error: parent directory of --port-file does not exist: "
                f"{parent}",
                file=sys.stderr,
            )
            return 2

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        seed=args.seed,
        max_users=args.max_users,
        reply_limit=args.reply_limit,
        grace_s=args.grace,
        faults=FaultConfig(
            loss_rate=args.loss_rate,
            slow_rate=args.slow_rate,
            malformed_rate=args.malformed_rate,
        ),
    )
    obs = _observer(args)
    run_info = {"command": "serve", "seed": args.seed, "host": args.host}
    recorder = _start_telemetry(args, obs, run_info)
    outcome = "completed"
    try:
        service = asyncio.run(
            run_service(config, obs=obs, port_file=args.port_file)
        )
    except BaseException:
        outcome = "failed"
        raise
    finally:
        if recorder is not None:
            recorder.close(outcome)
    print(f"Drained after {service.requests_total} requests.")
    _emit_observability(args, obs, run_info)
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio

    from repro.edonkey.transport import TransportError
    from repro.edonkey.wire import WireError
    from repro.service import LoadGenConfig, run_loadgen

    problem = _check_out_parents(args)
    if problem:
        print(problem, file=sys.stderr)
        return 2
    port = args.port
    if args.port_file:
        try:
            with open(args.port_file, "r", encoding="utf-8") as handle:
                port = int(handle.read().strip())
        except (OSError, ValueError) as exc:
            print(f"error: cannot read --port-file: {exc}", file=sys.stderr)
            return 2
    if not port:
        print(
            "error: no target port (pass --port or --port-file)",
            file=sys.stderr,
        )
        return 2

    try:
        config = LoadGenConfig(
            host=args.host,
            port=port,
            requests=args.requests,
            rate=args.rate,
            sessions=args.sessions,
            seed=args.seed,
            scale=args.scale,
            timeout_s=args.timeout,
            connect_retries=args.connect_retries,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    obs = _observer(args)
    try:
        result = asyncio.run(run_loadgen(config, obs=obs))
    except (WireError, TransportError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(result.summary())
    mix = ", ".join(f"{kind}={n}" for kind, n in sorted(result.mix.items()))
    print(f"Request mix: {mix}")
    _emit_observability(
        args,
        obs,
        {
            "command": "loadgen",
            "seed": args.seed,
            "scale": args.scale,
            "requests": args.requests,
            "rate": args.rate,
            "sessions": args.sessions,
        },
    )
    return 0


# ----------------------------------------------------------------------
# parser


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Peer Sharing Behaviour in the "
        "eDonkey Network' (EuroSys 2006)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    p = subparsers.add_parser("generate", help="generate a synthetic trace")
    _add_common(p)
    p.add_argument("--output", "-o", required=True, help="output path (.jsonl[.gz])")
    p.add_argument("--anonymize", action="store_true",
                   help="hash IPs/UIDs/nicknames before saving")
    p.set_defaults(func=cmd_generate)

    p = subparsers.add_parser("stats", help="summarize a saved trace")
    p.add_argument("trace", help="path to a saved trace")
    p.set_defaults(func=cmd_stats)

    p = subparsers.add_parser("analyze", help="clustering analysis")
    _add_common(p)
    p.add_argument("--trace", help="path to a saved trace (else synthesize)")
    p.set_defaults(func=cmd_analyze)

    p = subparsers.add_parser("search", help="semantic-search simulation")
    _add_common(p)
    p.add_argument("--trace", help="path to a saved trace (else synthesize)")
    p.add_argument("--strategy", choices=["lru", "history", "random", "popularity"],
                   default="lru")
    p.add_argument("--two-hop", action="store_true")
    p.add_argument("--list-sizes", type=int, nargs="+", default=[5, 10, 20])
    p.add_argument("--availability", type=float, default=1.0,
                   help="probability a probed neighbour is online")
    p.add_argument("--loss-rate", type=float, default=0.0,
                   help="probability a neighbour probe is lost (one-hop only)")
    p.add_argument("--evict-dead", action="store_true",
                   help="evict neighbours whose probes keep failing")
    p.add_argument("--workers", type=int, default=1, metavar="N",
                   help="simulate list sizes in N worker processes over "
                   "shared-memory trace columns (results are identical "
                   "for any N)")
    _add_obs_flags(p)
    p.set_defaults(func=cmd_search)

    p = subparsers.add_parser("experiment", help="reproduce a paper artefact")
    _add_common(p)
    p.add_argument(
        "id",
        nargs="?",
        help="registry name, e.g. fig18, table3, flooding (omit with --list)",
    )
    p.add_argument(
        "--list",
        action="store_true",
        help="print the experiment registry and exit",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="validate shard-compatibility: sequential-only experiments "
        "are rejected (the experiment itself runs in-process)",
    )
    _add_obs_flags(p)
    # Experiments default to the paper seed, not the generic CLI seed 0
    # (the registry runners' historical default).
    p.set_defaults(func=cmd_experiment, seed=DEFAULT_SEED)

    p = subparsers.add_parser(
        "run-all", help="run every registered experiment, with manifests"
    )
    _add_common(p)
    p.add_argument(
        "--results-dir",
        default="results",
        help="directory for manifests and CSVs (default: results/)",
    )
    p.add_argument(
        "--force",
        action="store_true",
        help="re-run even when a manifest with a matching hash exists",
    )
    p.add_argument(
        "--only",
        nargs="+",
        metavar="NAME",
        help="run only these registry names",
    )
    p.add_argument(
        "--profile",
        action="store_true",
        help="print each executed experiment's profile after its run",
    )
    p.add_argument(
        "--metrics-out",
        action="store_true",
        help="write <name>.metrics.json next to each manifest "
        "(recorded in the manifest's metrics_file field)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="run experiments in N worker processes; an explicit --only "
        "selection naming a sequential-only experiment is rejected",
    )
    _add_telemetry_flags(p)
    p.set_defaults(func=cmd_run_all, seed=DEFAULT_SEED)

    p = subparsers.add_parser(
        "tail", help="render a live repro.telemetry JSONL stream"
    )
    p.add_argument("file", help="telemetry JSONL written by --telemetry-out")
    p.add_argument(
        "--follow",
        "-f",
        action="store_true",
        help="keep re-rendering until every source has ended (Ctrl-C stops)",
    )
    p.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SECS",
        help="refresh interval with --follow (default: 1.0)",
    )
    p.set_defaults(func=cmd_tail)

    p = subparsers.add_parser(
        "report",
        help="render metrics + telemetry + trace into one standalone "
        "HTML run report (no network assets)",
    )
    p.add_argument("--metrics", metavar="PATH", help="repro.metrics JSON")
    p.add_argument(
        "--telemetry", metavar="PATH", help="repro.telemetry JSONL"
    )
    p.add_argument(
        "--trace", metavar="PATH", help="Chrome trace_event JSON"
    )
    p.add_argument(
        "--output", "-o", required=True, metavar="PATH", help="output HTML"
    )
    p.add_argument(
        "--title", default="repro run report", help="report heading"
    )
    p.set_defaults(func=cmd_report)

    p = subparsers.add_parser(
        "bench-summary",
        help="collate benchmarks/results/*.json into one trajectory table",
    )
    p.add_argument(
        "--results-dir",
        default="benchmarks/results",
        help="directory of benchmark result JSONs "
        "(default: benchmarks/results)",
    )
    p.add_argument(
        "--json", metavar="PATH", help="also write the summary as JSON"
    )
    p.add_argument(
        "--txt", metavar="PATH", help="also write the rendered table"
    )
    p.set_defaults(func=cmd_bench_summary)

    p = subparsers.add_parser(
        "metrics", help="inspect and compare metrics files"
    )
    metrics_sub = p.add_subparsers(dest="metrics_command", required=True)
    p = metrics_sub.add_parser(
        "diff",
        help="compare two repro.metrics files; non-zero exit on regression",
    )
    p.add_argument("baseline", help="baseline metrics JSON")
    p.add_argument("current", help="current metrics JSON")
    from repro.obs import DEFAULT_TOLERANCE_SPEC

    p.add_argument(
        "--fail-on",
        default=DEFAULT_TOLERANCE_SPEC,
        metavar="SPEC",
        help="tolerance spec: comma-separated section[:glob]=rel[:abs] "
        "clauses (rel 'ignore' skips); unmatched metrics compare exactly "
        f"(default: {DEFAULT_TOLERANCE_SPEC!r})",
    )
    p.set_defaults(func=cmd_metrics_diff)

    p = subparsers.add_parser(
        "calibrate", help="check a workload against every paper target"
    )
    _add_common(p)
    p.add_argument("--trace", help="path to a saved trace (else synthesize)")
    p.set_defaults(func=cmd_calibrate)

    p = subparsers.add_parser("crawl", help="protocol-level crawl simulation")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--clients", type=int, default=120)
    p.add_argument("--days", type=int, default=5)
    p.add_argument("--output", "-o", help="save the crawled trace here")
    p.add_argument("--loss-rate", type=float, default=0.0,
                   help="probability any message is silently dropped")
    p.add_argument("--slow-rate", type=float, default=0.0,
                   help="probability a reply is slower than the deadline")
    p.add_argument("--malformed-rate", type=float, default=0.0,
                   help="probability a reply comes back with an empty payload")
    p.add_argument("--peer-downtime", type=float, default=0.0,
                   help="fraction of peers transiently unreachable each day")
    p.add_argument("--server-crash-day", type=int, default=None,
                   help="crash a server at the start of this day (0-based)")
    p.add_argument("--server-crash-id", type=int, default=0,
                   help="which server crashes (default: server 0)")
    p.add_argument("--server-downtime", type=int, default=2,
                   help="days the crashed server stays down")
    p.add_argument("--retries", type=int, default=0,
                   help="crawler retries per failed request (0 disables)")
    p.add_argument("--timeout", type=float, default=5.0,
                   help="reply deadline in seconds (slow replies miss it)")
    p.add_argument("--fault-schedule", metavar="PATH",
                   help="JSON fault schedule (repro.faults.schedule/1) "
                   "applying per-day FaultConfig overrides")
    p.add_argument("--store", metavar="DIR",
                   help="append each completed day to an on-disk columnar "
                   "trace store at DIR (created if absent)")
    p.add_argument("--stream", action="store_true",
                   help="drop each day from memory once appended to "
                   "--store (bounded RSS; the paper-scale crawl path)")
    p.add_argument("--workers", type=int, default=1, metavar="N",
                   help="shard browsing across N worker processes by "
                   "client id (results are identical for any N; "
                   "incompatible with faults, retries and checkpoints)")
    p.add_argument("--checkpoint-dir", metavar="DIR",
                   help="write an end-of-day checkpoint here after every "
                   "simulated day")
    p.add_argument("--resume", action="store_true",
                   help="resume from the newest intact checkpoint in "
                   "--checkpoint-dir instead of starting fresh")
    p.add_argument("--kill-after-day", type=int, default=None, metavar="DAY",
                   help="SIGKILL this process right after DAY's checkpoint "
                   "is written (chaos testing; requires --checkpoint-dir)")
    _add_obs_flags(p)
    p.set_defaults(func=cmd_crawl)

    p = subparsers.add_parser(
        "serve",
        help="run the index server as a live asyncio TCP service "
        "(repro.wire/1 frames; SIGTERM drains gracefully)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port to bind (0 = pick a free one)")
    p.add_argument("--port-file", metavar="PATH",
                   help="atomically write the bound port here once "
                   "listening (how scripted runs discover --port 0)")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for the fault injector's RNG streams")
    p.add_argument("--grace", type=float, default=5.0, metavar="SECS",
                   help="drain grace period before live connections are "
                   "cancelled (default: 5.0)")
    p.add_argument("--max-users", type=int, default=200_000)
    p.add_argument("--reply-limit", type=int, default=200,
                   help="result cap per search/user-query reply")
    p.add_argument("--loss-rate", type=float, default=0.0,
                   help="probability any request is silently dropped")
    p.add_argument("--slow-rate", type=float, default=0.0,
                   help="probability a reply is suppressed (client times out)")
    p.add_argument("--malformed-rate", type=float, default=0.0,
                   help="probability a reply comes back with an empty payload")
    _add_obs_flags(p)
    p.set_defaults(func=cmd_serve)

    p = subparsers.add_parser(
        "loadgen",
        help="replay a seeded trace-derived request mix against a live "
        "`repro serve` and report latency percentiles",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="port of the running service")
    p.add_argument("--port-file", metavar="PATH",
                   help="read the target port from this file (written by "
                   "`repro serve --port-file`)")
    p.add_argument("--requests", type=int, default=1000,
                   help="total requests to send (default: 1000)")
    p.add_argument("--rate", type=float, default=500.0,
                   help="offered open-loop load in requests/second")
    p.add_argument("--sessions", type=int, default=8,
                   help="concurrent client connections (default: 8)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--scale", choices=_SCALE_CHOICES, default="tiny",
                   help="trace scale the request mix is derived from")
    p.add_argument("--timeout", type=float, default=30.0,
                   help="per-request reply deadline in seconds")
    p.add_argument("--connect-retries", type=int, default=25,
                   help="connection attempts before giving up (covers "
                   "the serve startup race)")
    _add_obs_flags(p)
    p.set_defaults(func=cmd_loadgen)

    p = subparsers.add_parser(
        "trace", help="trace file / trace store tooling"
    )
    trace_sub = p.add_subparsers(dest="trace_command", required=True)
    p = trace_sub.add_parser(
        "convert",
        help="JSONL trace file -> columnar store directory, or back "
        "(direction inferred: a directory source is a store)",
    )
    p.add_argument("src", help="source trace file or store directory")
    p.add_argument("dst", help="destination store directory or trace file")
    p.set_defaults(func=cmd_trace_convert)
    p = trace_sub.add_parser(
        "info", help="summarize a trace file or store directory"
    )
    p.add_argument("path", help="trace file or store directory")
    p.set_defaults(func=cmd_trace_info)
    p = trace_sub.add_parser(
        "verify",
        help="full integrity check of a store (hashes, structure); "
        "non-zero exit when problems are found",
    )
    p.add_argument("path", help="store directory")
    p.set_defaults(func=cmd_trace_verify)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
