"""repro — a reproduction of *"Peer Sharing Behaviour in the eDonkey
Network, and Implications for the Design of Server-less File Sharing
Systems"* (Handurukande, Kermarrec, Le Fessant, Massoulié, Patarin;
EuroSys 2006).

The library contains:

- :mod:`repro.trace` — the trace data model and the paper's processing
  pipeline (filtering, pessimistic extrapolation, statistics);
- :mod:`repro.workload` — a synthetic eDonkey workload generator matching
  the paper's measured distributions, with planted interest-based
  clustering;
- :mod:`repro.edonkey` — a protocol-level eDonkey network + crawler
  simulation (MD4, block hashing, servers, clients, nickname sweep);
- :mod:`repro.core` — the paper's contribution: semantic-neighbour search
  (LRU / History / Random / Popularity strategies, one- and two-hop) and
  the appendix's trace randomization;
- :mod:`repro.analysis` — the clustering / popularity / geography analyses
  behind every figure;
- :mod:`repro.baselines` — flooding, random-walk and central-server search;
- :mod:`repro.experiments` — one runnable entry point per table and figure.

Quickstart::

    from repro.experiments import Scale, run_figure18
    print(run_figure18(scale=Scale.SMALL).render())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
