"""Collate ``benchmarks/results/*.json`` into one perf-trajectory table.

Each committed benchmark baseline has its own JSON shape (a
``repro.metrics`` payload for the profile/chaos benches, bespoke
objects for compiled/scaling/store/telemetry).  ``repro bench-summary``
reads them all and renders one table — the performance history of the
repo in a single glance instead of eight files — plus a machine-readable
``repro.bench-summary/1`` JSON for dashboards.

Unknown files are still listed (headline ``-``) rather than skipped, so
a new benchmark shows up here the day its baseline lands even before a
summariser is taught its shape.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

__all__ = [
    "SUMMARY_SCHEMA",
    "collate_results",
    "render_summary",
    "summary_to_json",
]

SUMMARY_SCHEMA = "repro.bench-summary/1"


def _fmt(value: float) -> str:
    if value >= 100 or value == int(value):
        return f"{value:.0f}"
    if value >= 1:
        return f"{value:.2f}"
    return f"{value:.3f}"


def _headline_metrics(payload: Dict[str, object]) -> Dict[str, float]:
    """Headline for a ``repro.metrics`` payload: wall time + volume."""
    spans = payload.get("spans", {})
    headline: Dict[str, float] = {}
    if isinstance(spans, dict) and spans:
        headline["wall_s"] = max(
            float(stat.get("total_s", 0.0))
            for stat in spans.values()
            if isinstance(stat, dict)
        )
    for section in ("counters", "gauges", "histograms"):
        values = payload.get(section)
        if isinstance(values, dict):
            headline[section] = float(len(values))
    # Service-mode runs (bench-serve, `repro loadgen`) carry their
    # latency/throughput summary as gauges — surface those instead of
    # the bare section sizes.
    gauges = payload.get("gauges", {})
    if isinstance(gauges, dict) and "loadgen/p99_ms" in gauges:
        for section in ("counters", "gauges", "histograms"):
            headline.pop(section, None)
        for key, label in (
            ("loadgen/achieved_rps", "rps"),
            ("loadgen/p50_ms", "p50_ms"),
            ("loadgen/p99_ms", "p99_ms"),
        ):
            if key in gauges:
                headline[label] = float(gauges[key])
    return headline


def _headline_compiled(payload: Dict[str, object]) -> Dict[str, float]:
    timings = payload.get("timings", {})
    gated = payload.get("gated", [])
    speedups = [
        float(entry["speedup"])
        for name, entry in timings.items()
        if isinstance(entry, dict) and "speedup" in entry
        and (not gated or name in gated)
    ]
    headline: Dict[str, float] = {}
    if speedups:
        headline["min_speedup"] = min(speedups)
    if "min_speedup" in payload:
        headline["gate"] = float(payload["min_speedup"])
    return headline


def _headline_scaling(payload: Dict[str, object]) -> Dict[str, float]:
    headline: Dict[str, float] = {}
    baseline = payload.get("baseline", {})
    if isinstance(baseline, dict) and "rss_mb" in baseline:
        headline["baseline_rss_mb"] = float(baseline["rss_mb"])
    strong = payload.get("strong", {})
    runs = strong.get("runs", {}) if isinstance(strong, dict) else {}
    best = 0.0
    for entry in runs.values():
        if isinstance(entry, dict) and "speedup" in entry:
            best = max(best, float(entry["speedup"]))
    if best:
        headline["best_speedup"] = best
    return headline


def _headline_store(payload: Dict[str, object]) -> Dict[str, float]:
    headline: Dict[str, float] = {}
    for key, label in (
        ("rss_ratio", "rss_ratio"),
        ("min_rss_ratio", "gate"),
        ("convert_secs", "convert_s"),
    ):
        if key in payload:
            headline[label] = float(payload[key])
    return headline


def _headline_telemetry(payload: Dict[str, object]) -> Dict[str, float]:
    headline: Dict[str, float] = {}
    for key, label in (
        ("off_secs", "off_s"),
        ("on_secs", "on_s"),
        ("overhead_ratio", "overhead"),
        ("max_ratio", "gate"),
    ):
        if key in payload:
            headline[label] = float(payload[key])
    return headline


_SUMMARISERS = {
    "bench-compiled": _headline_compiled,
    "bench-scaling": _headline_scaling,
    "bench-store": _headline_store,
    "bench-telemetry": _headline_telemetry,
}


def summarise_payload(payload: Dict[str, object]) -> Dict[str, object]:
    """One summary entry (benchmark, kind, headline) for a parsed JSON."""
    schema = payload.get("schema")
    if isinstance(schema, str) and schema.startswith("repro.metrics"):
        run = payload.get("run", {})
        name = run.get("benchmark") or run.get("command") or "metrics"
        return {
            "benchmark": str(name),
            "kind": "metrics",
            "headline": _headline_metrics(payload),
        }
    name = payload.get("benchmark")
    if isinstance(name, str):
        summarise = _SUMMARISERS.get(name, lambda _payload: {})
        return {
            "benchmark": name,
            "kind": "benchmark",
            "headline": summarise(payload),
        }
    return {"benchmark": "unknown", "kind": "unknown", "headline": {}}


def collate_results(results_dir: str) -> List[Dict[str, object]]:
    """Summary entries for every ``*.json`` in ``results_dir``, sorted.

    Unreadable files become ``kind: "error"`` entries — the summary must
    render the history even when one baseline is corrupt.
    """
    entries: List[Dict[str, object]] = []
    for filename in sorted(os.listdir(results_dir)):
        if not filename.endswith(".json"):
            continue
        path = os.path.join(results_dir, filename)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError) as exc:
            entries.append(
                {
                    "file": filename,
                    "benchmark": "-",
                    "kind": "error",
                    "headline": {},
                    "error": str(exc),
                }
            )
            continue
        if not isinstance(payload, dict):
            entries.append(
                {
                    "file": filename,
                    "benchmark": "-",
                    "kind": "error",
                    "headline": {},
                    "error": "top-level JSON is not an object",
                }
            )
            continue
        entry = summarise_payload(payload)
        entry["file"] = filename
        entries.append(entry)
    return entries


def render_summary(entries: List[Dict[str, object]]) -> str:
    from repro.util.tables import format_table

    rows = []
    for entry in entries:
        headline = entry.get("headline", {})
        shown = (
            " ".join(
                f"{key}={_fmt(float(value))}"
                for key, value in sorted(headline.items())
            )
            if headline
            else entry.get("error", "-")
        )
        rows.append((entry["file"], entry["benchmark"], entry["kind"], shown))
    return format_table(
        ("file", "benchmark", "kind", "headline"),
        rows,
        title=f"Benchmark trajectory ({len(rows)} results)",
    )


def summary_to_json(entries: List[Dict[str, object]]) -> str:
    return json.dumps(
        {"schema": SUMMARY_SCHEMA, "results": entries},
        indent=2,
        sort_keys=True,
    )
