"""Hierarchical timing spans and named counters.

An :class:`Observer` is the single recording surface a component needs:

- ``with obs.span("sweep"): ...`` times a phase on the monotonic clock and
  aggregates it under a ``/``-joined hierarchical path (``crawl/day/sweep``
  when entered inside ``crawl`` and ``day`` spans);
- ``obs.record_span("one_hop", elapsed)`` feeds a pre-measured duration
  into the same aggregate, for hot loops where a context manager per
  iteration would be too chatty;
- ``obs.count("browse_attempts")`` / ``obs.gauge("delivery_rate", 0.98)``
  keep named scalars;
- ``obs.hist("search/hops_per_request", hops, bounds=COUNT_BOUNDS)``
  feeds a fixed-bucket :class:`~repro.obs.hist.Histogram`, for the
  distributional metrics scalar aggregates cannot express;
- ``obs.instant("day_start", args={"day": 3})`` marks a point on an
  attached event tracer (a no-op without one).

Spans are *aggregated*, not logged: each path keeps count/total/min/max,
so memory stays bounded over arbitrarily long runs — the always-on
counters a long-running capture needs.  Event-level capture is opt-in:
attach a :class:`~repro.obs.events.TraceRecorder` (``tracer=``) and
every closed span additionally emits one Chrome ``trace_event`` complete
event into its bounded ring.

Determinism contract: an Observer never draws randomness and never feeds
back into simulation state, so enabling it cannot perturb a seeded run.
When disabled, ``span`` returns a shared no-op context manager and every
other method returns immediately — negligible overhead on hot paths.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.obs.hist import Histogram


@dataclass
class SpanStat:
    """Aggregate timing of one span path."""

    count: int = 0
    total_s: float = 0.0
    min_s: float = math.inf
    max_s: float = 0.0

    def add(self, elapsed_s: float) -> None:
        self.count += 1
        self.total_s += elapsed_s
        if elapsed_s < self.min_s:
            self.min_s = elapsed_s
        if elapsed_s > self.max_s:
            self.max_s = elapsed_s

    @property
    def mean_s(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total_s / self.count

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "total_s": self.total_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
        }


class _NullSpan:
    """Shared do-nothing context manager returned when disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span: pushes its name on the observer's stack while open."""

    __slots__ = ("_observer", "_name", "_start")

    def __init__(self, observer: "Observer", name: str) -> None:
        self._observer = observer
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._observer._push(self._name)
        self._start = self._observer.clock()
        return self

    def __exit__(self, *exc) -> bool:
        elapsed = self._observer.clock() - self._start
        self._observer._pop(elapsed, self._start)
        return False


class Observer:
    """Span/counter recorder carried by the instrumented layers.

    ``clock`` is injectable for tests; it defaults to
    :func:`time.perf_counter` (monotonic, high resolution).  ``tracer``
    optionally attaches a :class:`~repro.obs.events.TraceRecorder`:
    every closed span then also emits an event into the tracer's ring,
    and :meth:`instant` becomes live.
    """

    __slots__ = (
        "enabled",
        "clock",
        "tracer",
        "span_stats",
        "counters",
        "gauges",
        "histograms",
        "_stack",
    )

    def __init__(
        self,
        enabled: bool = True,
        clock: Callable[[], float] = time.perf_counter,
        tracer=None,
    ) -> None:
        self.enabled = enabled
        self.clock = clock
        self.tracer = tracer
        self.span_stats: Dict[str, SpanStat] = {}
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        self._stack: List[str] = []

    # ------------------------------------------------------------------
    # Spans

    def span(self, name: str):
        """Context manager timing ``name`` under the current span path."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name)

    def record_span(
        self, name: str, elapsed_s: float, start_s: Optional[float] = None
    ) -> None:
        """Fold a pre-measured duration into ``name``'s aggregate.

        Hot loops that time with explicit clock reads pass the start
        instant too, so an attached tracer can place the event on the
        timeline; without ``start_s`` only the aggregate is fed.
        """
        if not self.enabled:
            return
        path = self._path(name)
        self._stat_for(path).add(elapsed_s)
        if self.tracer is not None and start_s is not None:
            self.tracer.complete(path, start_s, elapsed_s)

    def _path(self, name: str) -> str:
        if not self._stack:
            return name
        return "/".join(self._stack) + "/" + name

    def _stat_for(self, path: str) -> SpanStat:
        stat = self.span_stats.get(path)
        if stat is None:
            stat = self.span_stats[path] = SpanStat()
        return stat

    def _push(self, name: str) -> None:
        self._stack.append(name)

    def _pop(self, elapsed_s: float, start_s: float) -> None:
        path = "/".join(self._stack)
        self._stack.pop()
        self._stat_for(path).add(elapsed_s)
        if self.tracer is not None:
            self.tracer.complete(path, start_s, elapsed_s)

    def instant(
        self,
        name: str,
        args: Optional[Dict[str, object]] = None,
        cat: str = "instant",
    ) -> None:
        """Mark a point event on the attached tracer (no aggregation).

        The name is joined under the current span path, so a message hop
        recorded during a browse shows up as
        ``crawl/day/browse/BrowseRequest``."""
        if not self.enabled or self.tracer is None:
            return
        self.tracer.instant(self._path(name), cat=cat, args=args)

    # ------------------------------------------------------------------
    # Counters / gauges

    def count(self, name: str, n: float = 1) -> None:
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        self.gauges[name] = float(value)

    def hist(
        self,
        name: str,
        value: float,
        bounds: Optional[Sequence[float]] = None,
    ) -> None:
        """Record ``value`` into the named histogram.

        The histogram is created on first use with ``bounds`` (or the
        default latency ladder); later calls fold into the existing one
        and their ``bounds`` argument is ignored, so call sites can pass
        the constant unconditionally.
        """
        if not self.enabled:
            return
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = (
                Histogram(bounds) if bounds is not None else Histogram()
            )
        hist.record(value)

    def merge_counters(
        self, values: Mapping[str, float], prefix: str = ""
    ) -> None:
        """Add a flat mapping of numeric values into the counters.

        This is how per-subsystem accounting that already exists
        (``FaultStats.as_dict()``, ``MessageStats.sent``, ``CrawlStats``)
        is unified into one report without double bookkeeping.
        """
        if not self.enabled:
            return
        for name, value in values.items():
            key = prefix + name
            self.counters[key] = self.counters.get(key, 0) + float(value)

    # ------------------------------------------------------------------
    # Merging (sharded runs)

    def merge_from(
        self,
        other: "Observer",
        tracer_pid: Optional[int] = None,
        tracer_process_name: Optional[str] = None,
    ) -> None:
        """Fold another observer's aggregates into this one.

        The sharded runner gives each worker its own Observer and folds
        them back in a deterministic order; counters, span aggregates and
        histograms are commutative sums, while gauges are last-write —
        the caller's merge order decides which write wins, matching the
        sequential run when workers are folded in submission order.

        ``other`` must have no open spans: a half-open span has not been
        aggregated yet, so merging would silently drop it — that is a
        caller bug and raises ``ValueError``.  (Open spans on *self* are
        fine; its stack is untouched.)  If both observers carry tracers,
        ``other``'s events are folded onto this timeline too, labelled
        with ``tracer_pid``/``tracer_process_name``.
        """
        if not self.enabled:
            return
        if other._stack:
            raise ValueError(
                "cannot merge an observer with open spans: "
                + "/".join(other._stack)
            )
        for path, stat in other.span_stats.items():
            mine = self._stat_for(path)
            mine.count += stat.count
            mine.total_s += stat.total_s
            if stat.count:
                if stat.min_s < mine.min_s:
                    mine.min_s = stat.min_s
                if stat.max_s > mine.max_s:
                    mine.max_s = stat.max_s
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        self.gauges.update(other.gauges)
        for name, hist in other.histograms.items():
            mine_hist = self.histograms.get(name)
            if mine_hist is None:
                self.histograms[name] = Histogram.from_dict(hist.as_dict())
            else:
                mine_hist.merge(hist)
        if (
            self.tracer is not None
            and other.tracer is not None
            and other.tracer is not self.tracer
        ):
            self.tracer.merge_from(
                other.tracer,
                pid=tracer_pid,
                process_name=tracer_process_name,
            )

    # ------------------------------------------------------------------
    # Reporting

    def report(self, run: Optional[Dict[str, object]] = None):
        """Freeze the current state into a :class:`RunMetrics`."""
        from repro.obs.report import RunMetrics

        return RunMetrics(
            run=dict(run or {}),
            spans={
                path: stat.as_dict()
                for path, stat in sorted(self.span_stats.items())
            },
            counters=dict(sorted(self.counters.items())),
            gauges=dict(sorted(self.gauges.items())),
            histograms={
                name: hist.as_dict()
                for name, hist in sorted(self.histograms.items())
            },
        )


#: Shared disabled observer — the default for every instrumented layer.
#: It is safe to share because a disabled Observer mutates nothing.
NULL_OBSERVER = Observer(enabled=False)
