"""Hierarchical timing spans and named counters.

An :class:`Observer` is the single recording surface a component needs:

- ``with obs.span("sweep"): ...`` times a phase on the monotonic clock and
  aggregates it under a ``/``-joined hierarchical path (``crawl/day/sweep``
  when entered inside ``crawl`` and ``day`` spans);
- ``obs.record_span("one_hop", elapsed)`` feeds a pre-measured duration
  into the same aggregate, for hot loops where a context manager per
  iteration would be too chatty;
- ``obs.count("browse_attempts")`` / ``obs.gauge("delivery_rate", 0.98)``
  keep named scalars.

Spans are *aggregated*, not logged: each path keeps count/total/min/max,
so memory stays bounded over arbitrarily long runs — the always-on
counters a long-running capture needs.

Determinism contract: an Observer never draws randomness and never feeds
back into simulation state, so enabling it cannot perturb a seeded run.
When disabled, ``span`` returns a shared no-op context manager and every
other method returns immediately — negligible overhead on hot paths.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional


@dataclass
class SpanStat:
    """Aggregate timing of one span path."""

    count: int = 0
    total_s: float = 0.0
    min_s: float = math.inf
    max_s: float = 0.0

    def add(self, elapsed_s: float) -> None:
        self.count += 1
        self.total_s += elapsed_s
        if elapsed_s < self.min_s:
            self.min_s = elapsed_s
        if elapsed_s > self.max_s:
            self.max_s = elapsed_s

    @property
    def mean_s(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total_s / self.count

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "total_s": self.total_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
        }


class _NullSpan:
    """Shared do-nothing context manager returned when disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span: pushes its name on the observer's stack while open."""

    __slots__ = ("_observer", "_name", "_start")

    def __init__(self, observer: "Observer", name: str) -> None:
        self._observer = observer
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._observer._push(self._name)
        self._start = self._observer.clock()
        return self

    def __exit__(self, *exc) -> bool:
        elapsed = self._observer.clock() - self._start
        self._observer._pop(elapsed)
        return False


class Observer:
    """Span/counter recorder carried by the instrumented layers.

    ``clock`` is injectable for tests; it defaults to
    :func:`time.perf_counter` (monotonic, high resolution).
    """

    __slots__ = ("enabled", "clock", "span_stats", "counters", "gauges", "_stack")

    def __init__(
        self,
        enabled: bool = True,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.enabled = enabled
        self.clock = clock
        self.span_stats: Dict[str, SpanStat] = {}
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self._stack: List[str] = []

    # ------------------------------------------------------------------
    # Spans

    def span(self, name: str):
        """Context manager timing ``name`` under the current span path."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name)

    def record_span(self, name: str, elapsed_s: float) -> None:
        """Fold a pre-measured duration into ``name``'s aggregate."""
        if not self.enabled:
            return
        self._stat_for(self._path(name)).add(elapsed_s)

    def _path(self, name: str) -> str:
        if not self._stack:
            return name
        return "/".join(self._stack) + "/" + name

    def _stat_for(self, path: str) -> SpanStat:
        stat = self.span_stats.get(path)
        if stat is None:
            stat = self.span_stats[path] = SpanStat()
        return stat

    def _push(self, name: str) -> None:
        self._stack.append(name)

    def _pop(self, elapsed_s: float) -> None:
        path = "/".join(self._stack)
        self._stack.pop()
        self._stat_for(path).add(elapsed_s)

    # ------------------------------------------------------------------
    # Counters / gauges

    def count(self, name: str, n: float = 1) -> None:
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        self.gauges[name] = float(value)

    def merge_counters(
        self, values: Mapping[str, float], prefix: str = ""
    ) -> None:
        """Add a flat mapping of numeric values into the counters.

        This is how per-subsystem accounting that already exists
        (``FaultStats.as_dict()``, ``MessageStats.sent``, ``CrawlStats``)
        is unified into one report without double bookkeeping.
        """
        if not self.enabled:
            return
        for name, value in values.items():
            key = prefix + name
            self.counters[key] = self.counters.get(key, 0) + float(value)

    # ------------------------------------------------------------------
    # Reporting

    def report(self, run: Optional[Dict[str, object]] = None):
        """Freeze the current state into a :class:`RunMetrics`."""
        from repro.obs.report import RunMetrics

        return RunMetrics(
            run=dict(run or {}),
            spans={
                path: stat.as_dict()
                for path, stat in sorted(self.span_stats.items())
            },
            counters=dict(sorted(self.counters.items())),
            gauges=dict(sorted(self.gauges.items())),
        )


#: Shared disabled observer — the default for every instrumented layer.
#: It is safe to share because a disabled Observer mutates nothing.
NULL_OBSERVER = Observer(enabled=False)
