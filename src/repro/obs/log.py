"""A tiny leveled logger for progress lines (``REPRO_LOG=debug|info|quiet``).

The CLI and the sharded runtime used to announce progress with bare
``print`` calls; under ``--workers N`` those interleave mid-line and
cannot be silenced.  This module replaces them with one shared stderr
logger:

- the level comes from the ``REPRO_LOG`` environment variable
  (``debug`` < ``info`` < ``quiet``; default ``info``), read at call
  time so subprocesses inherit it for free;
- each message is written as **one** ``write`` call, so concurrent
  worker processes cannot interleave within a line;
- a per-process *context* tag (``[shard 2] ``) prefixes every line —
  workers set it once on startup and all their output becomes
  attributable.

Progress lines go to **stderr**: stdout stays reserved for results
(tables, reports), which keeps ``repro ... > results.txt`` clean and is
why tests asserting on command output never see progress chatter.

Results and error messages keep using ``print``; this logger is only
for the "Crawling 120 clients..." narration in between.
"""

from __future__ import annotations

import os
import sys
from typing import Optional, TextIO

__all__ = ["LEVELS", "Log", "get_log", "log_level", "set_context"]

#: Recognised ``REPRO_LOG`` values, most verbose first.
LEVELS = {"debug": 10, "info": 20, "quiet": 100}

_DEFAULT_LEVEL = "info"

#: Process-wide context tag (e.g. ``shard 2``), prefixed to every line.
_context: Optional[str] = None


def log_level() -> int:
    """The active threshold from ``REPRO_LOG`` (unknown values = info)."""
    name = os.environ.get("REPRO_LOG", _DEFAULT_LEVEL).strip().lower()
    return LEVELS.get(name, LEVELS[_DEFAULT_LEVEL])


def set_context(tag: Optional[str]) -> None:
    """Set (or clear) this process's line prefix, e.g. ``"shard 2"``.

    Worker processes call this once on startup so every progress line
    they emit is attributable; ``None`` clears it.
    """
    global _context
    _context = tag


class Log:
    """A named logger; cheap enough to construct at every call site."""

    __slots__ = ("stream",)

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream

    def _emit(self, threshold: int, message: str) -> None:
        if log_level() > threshold:
            return
        prefix = f"[{_context}] " if _context else ""
        stream = self.stream if self.stream is not None else sys.stderr
        # One write per line: concurrent workers never interleave
        # mid-line, whatever the stream's buffering.
        stream.write(prefix + message + "\n")
        try:
            stream.flush()
        except (OSError, ValueError):  # pragma: no cover - closed stream
            pass

    def debug(self, message: str) -> None:
        self._emit(LEVELS["debug"], message)

    def info(self, message: str) -> None:
        self._emit(LEVELS["info"], message)


#: The shared default logger (stderr, level from ``REPRO_LOG``).
LOG = Log()


def get_log() -> Log:
    """The shared stderr logger (kept as a function for monkeypatching)."""
    return LOG
