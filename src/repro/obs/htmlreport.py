"""Standalone HTML run reports: metrics + telemetry + trace in one file.

``repro report`` renders the three observability artefacts a run can
leave behind — a ``repro.metrics/2`` JSON, a ``repro.telemetry/1``
JSONL and a Chrome ``trace_event`` JSON — into one self-contained HTML
file: resource curves, a progress timeline, span totals, histogram
percentiles and a per-process trace timeline.  Everything is inline
(CSS and SVG generated here, system font stack, zero network assets),
so the file can be archived as a CI artifact and opened years later.

Charts follow the repo's chart conventions: a fixed categorical palette
assigned per *entity* (a telemetry source keeps its colour across every
chart), light and dark schemes via CSS custom properties, one axis per
chart, hairline grids, ``<title>`` hover tooltips on every mark, and a
table view under each chart so no reading depends on colour.
"""

from __future__ import annotations

import html
import json
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["render_report", "write_report"]

# Categorical palette (fixed slot order, light/dark pairs).  Slot order
# is load-bearing for colour-vision safety — never reorder or cycle.
_SERIES = [
    ("#2a78d6", "#3987e5"),  # 1 blue
    ("#eb6834", "#d95926"),  # 2 orange
    ("#1baf7a", "#199e70"),  # 3 aqua
    ("#eda100", "#c98500"),  # 4 yellow
    ("#e87ba4", "#d55181"),  # 5 magenta
    ("#008300", "#008300"),  # 6 green
    ("#4a3aa7", "#9085e9"),  # 7 violet
    ("#e34948", "#e66767"),  # 8 red
]

_CSS_LIGHT = """
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --text-muted: #898781;
  --gridline: #e1e0d9;
  --baseline: #c3c2b7;
  --border: rgba(11, 11, 11, 0.10);
""" + "".join(
    f"  --series-{i + 1}: {light};\n" for i, (light, _dark) in enumerate(_SERIES)
)

_CSS_DARK = """
  color-scheme: dark;
  --surface-1: #1a1a19;
  --page: #0d0d0d;
  --text-primary: #ffffff;
  --text-secondary: #c3c2b7;
  --text-muted: #898781;
  --gridline: #2c2c2a;
  --baseline: #383835;
  --border: rgba(255, 255, 255, 0.10);
""" + "".join(
    f"  --series-{i + 1}: {dark};\n" for i, (_light, dark) in enumerate(_SERIES)
)

#: Keep at most this many drawn events from a Chrome trace (the largest
#: stay; the caption reports what was dropped).
MAX_TRACE_EVENTS = 1500

_VIEW_W = 720
_VIEW_H = 240
_PAD_L = 64
_PAD_R = 12
_PAD_T = 12
_PAD_B = 28


def _esc(text: object) -> str:
    return html.escape(str(text), quote=True)


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 10:
        return f"{value:.1f}"
    if abs(value) >= 0.01:
        return f"{value:.3g}"
    return f"{value:.2e}"


def _series_var(index: int) -> str:
    return f"var(--series-{(index % len(_SERIES)) + 1})"


def _ticks(lo: float, hi: float, n: int = 4) -> List[float]:
    if hi <= lo:
        hi = lo + 1.0
    step = (hi - lo) / n
    return [lo + i * step for i in range(n + 1)]


class _Chart:
    """One SVG line/bar chart with grid, axis, tooltips and a table."""

    def __init__(self, title: str, y_label: str, x_label: str) -> None:
        self.title = title
        self.y_label = y_label
        self.x_label = x_label

    def frame(
        self, body: str, x_lo: float, x_hi: float, y_lo: float, y_hi: float
    ) -> str:
        """The chart SVG: hairline grid + one y axis + the mark body."""
        parts = [
            f'<svg viewBox="0 0 {_VIEW_W} {_VIEW_H}" role="img" '
            f'aria-label="{_esc(self.title)}">'
        ]
        for tick in _ticks(y_lo, y_hi):
            y = self.y_px(tick, y_lo, y_hi)
            parts.append(
                f'<line x1="{_PAD_L}" y1="{y:.1f}" x2="{_VIEW_W - _PAD_R}" '
                f'y2="{y:.1f}" stroke="var(--gridline)" stroke-width="1"/>'
            )
            parts.append(
                f'<text x="{_PAD_L - 6}" y="{y + 3:.1f}" text-anchor="end" '
                f'class="tick">{_esc(_fmt(tick))}</text>'
            )
        for tick in _ticks(x_lo, x_hi):
            x = self.x_px(tick, x_lo, x_hi)
            parts.append(
                f'<text x="{x:.1f}" y="{_VIEW_H - 8}" text-anchor="middle" '
                f'class="tick">{_esc(_fmt(tick))}</text>'
            )
        baseline_y = self.y_px(y_lo, y_lo, y_hi)
        parts.append(
            f'<line x1="{_PAD_L}" y1="{baseline_y:.1f}" '
            f'x2="{_VIEW_W - _PAD_R}" y2="{baseline_y:.1f}" '
            f'stroke="var(--baseline)" stroke-width="1"/>'
        )
        parts.append(body)
        parts.append("</svg>")
        return "".join(parts)

    @staticmethod
    def x_px(value: float, lo: float, hi: float) -> float:
        span = (hi - lo) or 1.0
        usable = _VIEW_W - _PAD_L - _PAD_R
        return _PAD_L + (value - lo) / span * usable

    @staticmethod
    def y_px(value: float, lo: float, hi: float) -> float:
        span = (hi - lo) or 1.0
        usable = _VIEW_H - _PAD_T - _PAD_B
        return _VIEW_H - _PAD_B - (value - lo) / span * usable


def _legend(names: Sequence[str]) -> str:
    if len(names) < 2:
        return ""
    items = "".join(
        f'<span class="key"><span class="swatch" '
        f'style="background:{_series_var(i)}"></span>{_esc(name)}</span>'
        for i, name in enumerate(names)
    )
    return f'<div class="legend">{items}</div>'


def _table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{_esc(cell)}</td>" for cell in row) + "</tr>"
        for row in rows
    )
    return (
        "<details><summary>Table view</summary>"
        f"<table><thead><tr>{head}</tr></thead>"
        f"<tbody>{body}</tbody></table></details>"
    )


def _section(
    title: str,
    chart_html: str,
    legend_html: str,
    table_html: str,
    caption: str = "",
) -> str:
    caption_html = f'<p class="caption">{_esc(caption)}</p>' if caption else ""
    return (
        f'<section class="viz-root"><h2>{_esc(title)}</h2>'
        f"{legend_html}{chart_html}{caption_html}{table_html}</section>"
    )


def _line_chart(
    title: str,
    y_label: str,
    series: Dict[str, List[Tuple[float, float]]],
    x_label: str = "elapsed s",
) -> str:
    """A multi-series line chart; one colour slot per source, in order."""
    names = sorted(series)
    shown = names[: len(_SERIES)]
    folded = len(names) - len(shown)
    points = [p for name in shown for p in series[name]]
    if not points:
        return ""
    x_lo = min(p[0] for p in points)
    x_hi = max(p[0] for p in points)
    y_lo = 0.0
    y_hi = max(p[1] for p in points) * 1.05 or 1.0
    chart = _Chart(title, y_label, x_label)
    body_parts = []
    for i, name in enumerate(shown):
        pts = series[name]
        coords = " ".join(
            f"{chart.x_px(x, x_lo, x_hi):.1f},{chart.y_px(y, y_lo, y_hi):.1f}"
            for x, y in pts
        )
        colour = _series_var(i)
        body_parts.append(
            f'<polyline points="{coords}" fill="none" stroke="{colour}" '
            f'stroke-width="2" stroke-linejoin="round">'
            f"<title>{_esc(name)}</title></polyline>"
        )
        # Last-point direct label (selective labelling, never every point).
        lx, ly = pts[-1]
        body_parts.append(
            f'<circle cx="{chart.x_px(lx, x_lo, x_hi):.1f}" '
            f'cy="{chart.y_px(ly, y_lo, y_hi):.1f}" r="3" fill="{colour}">'
            f"<title>{_esc(name)}: {_esc(_fmt(ly))} {_esc(y_label)} "
            f"at {_esc(_fmt(lx))} s</title></circle>"
        )
    rows = [
        (name, len(series[name]), _fmt(series[name][-1][1]))
        for name in names
    ]
    caption = (
        f"{folded} source(s) beyond the 8 colour slots appear only in the "
        "table." if folded else ""
    )
    return _section(
        title,
        chart.frame("".join(body_parts), x_lo, x_hi, y_lo, y_hi),
        _legend(shown),
        _table(("source", "samples", f"last {y_label}"), rows),
        caption,
    )


def _bar_chart(
    title: str,
    y_label: str,
    bars: List[Tuple[str, float]],
    colour_by_entity: Optional[Dict[str, int]] = None,
) -> str:
    """Horizontal bars (single hue unless entity colours are passed)."""
    if not bars:
        return ""
    x_hi = max(value for _name, value in bars) * 1.05 or 1.0
    row_h = 26
    height = len(bars) * row_h + 8
    parts = [
        f'<svg viewBox="0 0 {_VIEW_W} {height}" role="img" '
        f'aria-label="{_esc(title)}">'
    ]
    label_w = 240
    usable = _VIEW_W - label_w - _PAD_R
    for i, (name, value) in enumerate(bars):
        y = i * row_h + 4
        width = max(1.0, value / x_hi * usable)
        slot = colour_by_entity.get(name, 0) if colour_by_entity else 0
        colour = _series_var(slot)
        parts.append(
            f'<text x="{label_w - 8}" y="{y + 13}" text-anchor="end" '
            f'class="label">{_esc(name)}</text>'
        )
        parts.append(
            f'<rect x="{label_w}" y="{y}" width="{width:.1f}" height="16" '
            f'rx="4" fill="{colour}"><title>{_esc(name)}: '
            f"{_esc(_fmt(value))} {_esc(y_label)}</title></rect>"
        )
        parts.append(
            f'<text x="{label_w + width + 6:.1f}" y="{y + 13}" '
            f'class="value">{_esc(_fmt(value))}</text>'
        )
    parts.append("</svg>")
    rows = [(name, _fmt(value)) for name, value in bars]
    return _section(
        title,
        "".join(parts),
        "",
        _table(("name", y_label), rows),
    )


# ----------------------------------------------------------------------
# Telemetry sections


def _telemetry_series(
    records: List[Dict[str, object]], field: str, scale: float = 1.0
) -> Dict[str, List[Tuple[float, float]]]:
    snapshots = [
        r for r in records if r.get("kind") in ("snapshot", "end")
    ]
    if not snapshots:
        return {}
    t0 = min(float(r["mono_s"]) for r in snapshots)
    series: Dict[str, List[Tuple[float, float]]] = {}
    for record in snapshots:
        resource = record.get("resource", {})
        if field not in resource:
            continue
        series.setdefault(str(record["source"]), []).append(
            (float(record["mono_s"]) - t0, float(resource[field]) * scale)
        )
    return series


def _progress_series(
    records: List[Dict[str, object]],
) -> Tuple[str, Dict[str, List[Tuple[float, float]]]]:
    snapshots = [
        r for r in records if r.get("kind") in ("snapshot", "end")
    ]
    if not snapshots:
        return "progress", {}
    keys = [
        key
        for key in ("days_done", "requests_done")
        if any(key in r.get("progress", {}) for r in snapshots)
    ]
    if not keys:
        return "progress", {}
    key = keys[0]
    t0 = min(float(r["mono_s"]) for r in snapshots)
    series: Dict[str, List[Tuple[float, float]]] = {}
    for record in snapshots:
        progress = record.get("progress", {})
        if key not in progress:
            continue
        series.setdefault(str(record["source"]), []).append(
            (float(record["mono_s"]) - t0, float(progress[key]))
        )
    return key, series


def _telemetry_sections(records: List[Dict[str, object]]) -> str:
    sections = []
    rss = _telemetry_series(records, "rss_bytes", scale=1.0 / (1024 * 1024))
    if rss:
        sections.append(_line_chart("Resident set size", "MB", rss))
    cpu = _telemetry_series(records, "cpu_user_s")
    system = _telemetry_series(records, "cpu_system_s")
    total: Dict[str, List[Tuple[float, float]]] = {}
    for name, pts in cpu.items():
        sys_pts = dict(system.get(name, []))
        total[name] = [(t, v + sys_pts.get(t, 0.0)) for t, v in pts]
    if total:
        sections.append(_line_chart("Cumulative CPU time", "s", total))
    key, progress = _progress_series(records)
    if progress:
        sections.append(
            _line_chart(f"Progress ({key.replace('_', ' ')})", key, progress)
        )
    ends = [r for r in records if r.get("kind") == "end"]
    if ends:
        rows = [
            (
                r["source"],
                r.get("pid", "-"),
                _fmt(float(r.get("heartbeat_s", 0.0))),
                r.get("outcome", "-"),
            )
            for r in sorted(ends, key=lambda r: str(r["source"]))
        ]
        sections.append(
            '<section class="viz-root"><h2>Run outcome</h2>'
            + _table(("source", "pid", "uptime s", "outcome"), rows).replace(
                "<details><summary>Table view</summary>", "<div>"
            ).replace("</details>", "</div>")
            + "</section>"
        )
    return "".join(sections)


# ----------------------------------------------------------------------
# Metrics sections


def _metrics_sections(payload: Dict[str, object]) -> str:
    sections = []
    spans = payload.get("spans", {})
    if isinstance(spans, dict) and spans:
        totals = sorted(
            (
                (path, float(stat.get("total_s", 0.0)))
                for path, stat in spans.items()
                if isinstance(stat, dict)
            ),
            key=lambda item: -item[1],
        )[:10]
        sections.append(_bar_chart("Top spans by total time", "s", totals))
    histograms = payload.get("histograms", {})
    if isinstance(histograms, dict) and histograms:
        from repro.obs.hist import Histogram

        rows = []
        for name in sorted(histograms):
            try:
                hist = Histogram.from_dict(histograms[name])
            except (ValueError, KeyError, TypeError):
                continue
            if hist.count == 0:
                continue
            rows.append(
                (
                    name,
                    int(hist.count),
                    _fmt(hist.percentile(0.50)),
                    _fmt(hist.percentile(0.90)),
                    _fmt(hist.percentile(0.99)),
                    _fmt(hist.max),
                )
            )
        if rows:
            # Units differ per histogram (hops vs seconds), so a shared
            # bar axis would lie; an always-open table is the honest form.
            sections.append(
                '<section class="viz-root"><h2>Histogram percentiles</h2>'
                + _table(
                    ("histogram", "count", "p50", "p90", "p99", "max"), rows
                ).replace(
                    "<details><summary>Table view</summary>", "<div>"
                ).replace("</details>", "</div>")
                + "</section>"
            )
    return "".join(sections)


# ----------------------------------------------------------------------
# Chrome trace section


def _trace_section(payload: Dict[str, object]) -> str:
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ""
    process_names: Dict[int, str] = {}
    complete = []
    for event in events:
        if not isinstance(event, dict):
            continue
        if event.get("ph") == "M" and event.get("name") == "process_name":
            args = event.get("args", {})
            process_names[int(event.get("pid", 0))] = str(
                args.get("name", event.get("pid"))
            )
        elif event.get("ph") == "X":
            complete.append(event)
    if not complete:
        return ""
    shown = sorted(
        complete, key=lambda e: -float(e.get("dur", 0.0))
    )[:MAX_TRACE_EVENTS]
    dropped = len(complete) - len(shown)
    pids = sorted({int(e.get("pid", 0)) for e in shown})
    t_lo = min(float(e["ts"]) for e in shown)
    t_hi = max(float(e["ts"]) + float(e.get("dur", 0.0)) for e in shown)
    span_us = (t_hi - t_lo) or 1.0
    lane_h = 30
    label_w = 140
    height = len(pids) * lane_h + 24
    usable = _VIEW_W - label_w - _PAD_R
    parts = [
        f'<svg viewBox="0 0 {_VIEW_W} {height}" role="img" '
        'aria-label="Trace timeline">'
    ]
    lane_of = {pid: i for i, pid in enumerate(pids)}
    for pid, lane in lane_of.items():
        y = lane * lane_h + 4
        name = process_names.get(pid, f"pid {pid}")
        parts.append(
            f'<text x="{label_w - 8}" y="{y + 14}" text-anchor="end" '
            f'class="label">{_esc(name)}</text>'
        )
        parts.append(
            f'<line x1="{label_w}" y1="{y + 20}" x2="{_VIEW_W - _PAD_R}" '
            f'y2="{y + 20}" stroke="var(--gridline)" stroke-width="1"/>'
        )
    for event in shown:
        pid = int(event.get("pid", 0))
        lane = lane_of[pid]
        y = lane * lane_h + 4
        x = label_w + (float(event["ts"]) - t_lo) / span_us * usable
        width = max(1.0, float(event.get("dur", 0.0)) / span_us * usable)
        colour = _series_var(lane_of[pid])
        dur_ms = float(event.get("dur", 0.0)) / 1000.0
        parts.append(
            f'<rect x="{x:.1f}" y="{y}" width="{width:.1f}" height="14" '
            f'rx="2" fill="{colour}" fill-opacity="0.85">'
            f'<title>{_esc(event.get("name", "?"))} — '
            f"{_esc(_fmt(dur_ms))} ms "
            f"({_esc(process_names.get(pid, pid))})</title></rect>"
        )
    parts.append(
        f'<text x="{label_w}" y="{height - 6}" class="tick">0 ms</text>'
    )
    parts.append(
        f'<text x="{_VIEW_W - _PAD_R}" y="{height - 6}" text-anchor="end" '
        f'class="tick">{_esc(_fmt(span_us / 1000.0))} ms</text>'
    )
    parts.append("</svg>")
    caption = (
        f"{dropped} shorter event(s) not drawn (the {MAX_TRACE_EVENTS} "
        "longest are shown)." if dropped else ""
    )
    per_pid_rows = []
    for pid in pids:
        pid_events = [e for e in complete if int(e.get("pid", 0)) == pid]
        per_pid_rows.append(
            (
                process_names.get(pid, f"pid {pid}"),
                len(pid_events),
                _fmt(
                    sum(float(e.get("dur", 0.0)) for e in pid_events) / 1e6
                ),
            )
        )
    return _section(
        "Trace timeline",
        "".join(parts),
        _legend([process_names.get(pid, f"pid {pid}") for pid in pids]),
        _table(("process", "events", "total s"), per_pid_rows),
        caption,
    )


# ----------------------------------------------------------------------
# Assembly


def _header_meta(
    metrics: Optional[Dict[str, object]],
    telemetry: Optional[List[Dict[str, object]]],
) -> str:
    chips: List[Tuple[str, object]] = []
    if metrics:
        run = metrics.get("run", {})
        if isinstance(run, dict):
            chips.extend(sorted(run.items()))
    if telemetry:
        starts = [r for r in telemetry if r.get("kind") == "start"]
        sources = sorted({str(r["source"]) for r in starts})
        if sources:
            chips.append(("sources", ", ".join(sources)))
    if not chips:
        return ""
    items = "".join(
        f'<span class="chip"><span class="chip-key">{_esc(key)}</span> '
        f"{_esc(value)}</span>"
        for key, value in chips
    )
    return f'<div class="meta">{items}</div>'


def render_report(
    metrics=None,
    telemetry: Optional[List[Dict[str, object]]] = None,
    trace: Optional[Dict[str, object]] = None,
    title: str = "repro run report",
) -> str:
    """The complete standalone HTML document as a string.

    ``metrics`` may be a :class:`~repro.obs.report.RunMetrics` or its
    dict form; ``telemetry`` is a list of parsed ``repro.telemetry/1``
    records; ``trace`` a parsed Chrome trace object.  Any subset works.
    """
    metrics_dict = None
    if metrics is not None:
        metrics_dict = (
            metrics.to_dict() if hasattr(metrics, "to_dict") else dict(metrics)
        )
    body_sections = []
    if telemetry:
        body_sections.append(_telemetry_sections(telemetry))
    if metrics_dict:
        body_sections.append(_metrics_sections(metrics_dict))
    if trace:
        body_sections.append(_trace_section(trace))
    body = "".join(body_sections) or (
        '<section class="viz-root"><p class="caption">No renderable data '
        "in the supplied inputs.</p></section>"
    )
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{_esc(title)}</title>
<style>
:root {{{_CSS_LIGHT}}}
@media (prefers-color-scheme: dark) {{
  :root:where(:not([data-theme="light"])) {{{_CSS_DARK}}}
}}
:root[data-theme="dark"] {{{_CSS_DARK}}}
body {{
  margin: 0; padding: 24px; background: var(--page);
  color: var(--text-primary);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  font-size: 14px; line-height: 1.45;
}}
h1 {{ font-size: 20px; margin: 0 0 4px; }}
h2 {{ font-size: 15px; margin: 0 0 8px; color: var(--text-primary); }}
.meta {{ margin: 4px 0 16px; }}
.chip {{
  display: inline-block; margin: 2px 6px 2px 0; padding: 2px 8px;
  border: 1px solid var(--border); border-radius: 10px;
  color: var(--text-secondary); font-size: 12px;
}}
.chip-key {{ color: var(--text-muted); }}
section.viz-root {{
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px; margin: 0 0 16px;
  max-width: {_VIEW_W + 32}px;
}}
svg {{ width: 100%; height: auto; display: block; }}
svg text {{ fill: var(--text-secondary); font-size: 11px;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif; }}
svg text.tick {{ fill: var(--text-muted); font-variant-numeric: tabular-nums; }}
svg text.label {{ fill: var(--text-secondary); }}
svg text.value {{ fill: var(--text-secondary);
  font-variant-numeric: tabular-nums; }}
.legend {{ margin: 0 0 8px; }}
.key {{ margin-right: 12px; color: var(--text-secondary); font-size: 12px; }}
.swatch {{
  display: inline-block; width: 10px; height: 10px; border-radius: 2px;
  margin-right: 4px; vertical-align: -1px;
}}
.caption {{ color: var(--text-muted); font-size: 12px; margin: 6px 0 0; }}
details {{ margin-top: 8px; }}
summary {{ color: var(--text-muted); font-size: 12px; cursor: pointer; }}
table {{ border-collapse: collapse; margin-top: 6px; font-size: 12px; }}
th, td {{
  text-align: left; padding: 3px 10px 3px 0;
  border-bottom: 1px solid var(--gridline);
  color: var(--text-secondary);
}}
th {{ color: var(--text-muted); font-weight: 600; }}
td {{ font-variant-numeric: tabular-nums; }}
</style>
</head>
<body>
<h1>{_esc(title)}</h1>
{_header_meta(metrics_dict, telemetry)}
{body}
</body>
</html>
"""


def write_report(
    path: str,
    metrics=None,
    telemetry: Optional[List[Dict[str, object]]] = None,
    trace: Optional[Dict[str, object]] = None,
    title: str = "repro run report",
) -> None:
    from repro.util.atomic import atomic_write_text

    atomic_write_text(
        path,
        render_report(
            metrics=metrics, telemetry=telemetry, trace=trace, title=title
        ),
    )
