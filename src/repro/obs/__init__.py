"""Lightweight observability: timing spans, counters, run metrics.

The subsystem has two halves:

- :mod:`repro.obs.spans` — the :class:`Observer`, a hierarchical
  span/counter recorder that hot layers (crawler, network, search) carry.
  Disabled (the default) it is a near-free no-op and touches no RNG, so
  seeded runs are byte-identical with observability on or off.
- :mod:`repro.obs.report` — :class:`RunMetrics`, the JSON-serialisable
  report an :class:`Observer` produces, plus its schema validator and the
  human-readable profile renderer behind the CLI's ``--profile`` flag.
"""

from repro.obs.report import (
    SCHEMA_VERSION,
    RunMetrics,
    render_profile,
    validate_metrics,
)
from repro.obs.spans import NULL_OBSERVER, Observer, SpanStat

__all__ = [
    "NULL_OBSERVER",
    "Observer",
    "RunMetrics",
    "SCHEMA_VERSION",
    "SpanStat",
    "render_profile",
    "validate_metrics",
]
