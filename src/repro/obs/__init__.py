"""Observability: timing spans, histograms, event tracing, run metrics.

The subsystem has four parts:

- :mod:`repro.obs.spans` — the :class:`Observer`, a hierarchical
  span/counter/histogram recorder that hot layers (crawler, network,
  search) carry.  Disabled (the default) it is a near-free no-op and
  touches no RNG, so seeded runs are byte-identical with observability
  on or off.
- :mod:`repro.obs.hist` — :class:`Histogram`, fixed log-spaced buckets
  with p50/p90/p99 summaries, for the distributional metrics (hops per
  query, phase latencies) scalar aggregates cannot express.
- :mod:`repro.obs.events` — :class:`TraceRecorder`, an opt-in bounded
  ring of structured events exportable as Chrome ``trace_event`` JSON
  (``--trace-out``, loadable in ``chrome://tracing``/Perfetto).
- :mod:`repro.obs.report` — :class:`RunMetrics`, the JSON-serialisable
  report (schema ``repro.metrics/2``; ``/1`` still loads) an
  :class:`Observer` produces, plus its validator and the ``--profile``
  renderer — and :mod:`repro.obs.diff`, the metrics diff/regression
  gate behind ``repro metrics diff``.

The live-telemetry plane (PR 9) adds four more:

- :mod:`repro.obs.resource` — :class:`ResourceSampler`, a psutil-free
  ``/proc``-based RSS/CPU/IO/GC gauge series with a portable fallback;
- :mod:`repro.obs.telemetry` — :class:`FlightRecorder`, the
  crash-persistent ``repro.telemetry/1`` JSONL snapshot stream
  (``--telemetry-out``), plus its reader and validator;
- :mod:`repro.obs.log` — the tiny leveled stderr logger
  (``REPRO_LOG=debug|info|quiet``) progress narration goes through;
- :mod:`repro.obs.htmlreport` — the standalone HTML run report
  renderer behind ``repro report``.
"""

from repro.obs.diff import (
    DEFAULT_TOLERANCE_SPEC,
    MetricsDiff,
    ToleranceRule,
    diff_metrics,
    parse_tolerance_spec,
)
from repro.obs.events import TraceRecorder, validate_chrome_trace
from repro.obs.hist import COUNT_BOUNDS, LATENCY_BOUNDS_S, Histogram, log_bounds
from repro.obs.log import LOG, Log, get_log, log_level, set_context
from repro.obs.resource import ResourceSample, ResourceSampler
from repro.obs.telemetry import (
    TELEMETRY_SCHEMA,
    FlightRecorder,
    TelemetrySpec,
    read_telemetry,
    validate_telemetry,
)
from repro.obs.report import (
    ACCEPTED_SCHEMAS,
    SCHEMA_V1,
    SCHEMA_VERSION,
    RunMetrics,
    render_profile,
    validate_metrics,
)
from repro.obs.spans import NULL_OBSERVER, Observer, SpanStat

__all__ = [
    "ACCEPTED_SCHEMAS",
    "COUNT_BOUNDS",
    "DEFAULT_TOLERANCE_SPEC",
    "FlightRecorder",
    "Histogram",
    "LATENCY_BOUNDS_S",
    "LOG",
    "Log",
    "MetricsDiff",
    "NULL_OBSERVER",
    "Observer",
    "ResourceSample",
    "ResourceSampler",
    "RunMetrics",
    "SCHEMA_V1",
    "SCHEMA_VERSION",
    "SpanStat",
    "TELEMETRY_SCHEMA",
    "TelemetrySpec",
    "ToleranceRule",
    "TraceRecorder",
    "diff_metrics",
    "get_log",
    "log_bounds",
    "log_level",
    "parse_tolerance_spec",
    "read_telemetry",
    "render_profile",
    "set_context",
    "validate_chrome_trace",
    "validate_metrics",
    "validate_telemetry",
]
