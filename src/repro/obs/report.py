"""The machine-readable run report and its schema.

A :class:`RunMetrics` is what an :class:`~repro.obs.spans.Observer`
freezes into at the end of a run; the CLI's ``--metrics-out PATH`` writes
one per invocation and ``benchmarks/bench_profile.py`` commits one as the
perf-trajectory baseline.

Schema (``repro.metrics/1``) — a single JSON object:

- ``schema``   — the literal version string;
- ``run``      — free-form run identity (command, seed, scale, ...);
    values must be JSON scalars;
- ``spans``    — ``{path: {count, total_s, min_s, max_s}}`` — hierarchical
    span paths are ``/``-joined;
- ``counters`` — ``{name: number}``;
- ``gauges``   — ``{name: number}``.

:func:`validate_metrics` checks a parsed payload against this shape and
returns a list of problems (empty = valid); :meth:`RunMetrics.from_dict`
raises on the first problem, so a round-trip is also a validation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

SCHEMA_VERSION = "repro.metrics/1"

_SPAN_FIELDS = ("count", "total_s", "min_s", "max_s")


@dataclass
class RunMetrics:
    """One run's observability snapshot, serialisable to/from JSON."""

    run: Dict[str, object] = field(default_factory=dict)
    spans: Dict[str, Dict[str, float]] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    schema: str = SCHEMA_VERSION

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": self.schema,
            "run": dict(self.run),
            "spans": {path: dict(stat) for path, stat in self.spans.items()},
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RunMetrics":
        problems = validate_metrics(payload)
        if problems:
            raise ValueError(
                "invalid metrics payload: " + "; ".join(problems)
            )
        return cls(
            run=dict(payload["run"]),
            spans={
                path: {k: float(v) for k, v in stat.items()}
                for path, stat in payload["spans"].items()
            },
            counters={k: float(v) for k, v in payload["counters"].items()},
            gauges={k: float(v) for k, v in payload["gauges"].items()},
            schema=payload["schema"],
        )

    @classmethod
    def from_json(cls, text: str) -> "RunMetrics":
        return cls.from_dict(json.loads(text))

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")

    @classmethod
    def read(cls, path: str) -> "RunMetrics":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_metrics(payload: object) -> List[str]:
    """Check a parsed JSON payload against the ``repro.metrics/1`` schema.

    Returns a list of human-readable problems; an empty list means the
    payload is valid.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"payload must be an object, got {type(payload).__name__}"]
    if payload.get("schema") != SCHEMA_VERSION:
        problems.append(
            f"schema must be {SCHEMA_VERSION!r}, got {payload.get('schema')!r}"
        )
    for section in ("run", "spans", "counters", "gauges"):
        if not isinstance(payload.get(section), dict):
            problems.append(f"missing or non-object section {section!r}")
    if problems:
        return problems
    for key, value in payload["run"].items():
        if value is not None and not isinstance(value, (str, int, float, bool)):
            problems.append(f"run[{key!r}] must be a JSON scalar")
    for path, stat in payload["spans"].items():
        if not isinstance(stat, dict):
            problems.append(f"spans[{path!r}] must be an object")
            continue
        for field_name in _SPAN_FIELDS:
            if not _is_number(stat.get(field_name)):
                problems.append(
                    f"spans[{path!r}] missing numeric field {field_name!r}"
                )
        extras = set(stat) - set(_SPAN_FIELDS)
        if extras:
            problems.append(
                f"spans[{path!r}] has unknown fields {sorted(extras)}"
            )
    for section in ("counters", "gauges"):
        for name, value in payload[section].items():
            if not _is_number(value):
                problems.append(f"{section}[{name!r}] must be a number")
    return problems


def render_profile(metrics: RunMetrics, max_rows: int = 40) -> str:
    """Human-readable profile for the CLI's ``--profile`` flag."""
    from repro.util.tables import format_table

    lines: List[str] = []
    if metrics.run:
        run_bits = ", ".join(
            f"{k}={v}" for k, v in sorted(metrics.run.items())
        )
        lines.append(f"run: {run_bits}")
    if metrics.spans:
        rows = []
        # Widest first so the hot phases lead; hierarchy stays readable
        # because children carry their parents' path prefix.
        ordered = sorted(
            metrics.spans.items(), key=lambda kv: -kv[1]["total_s"]
        )
        for path, stat in ordered[:max_rows]:
            rows.append(
                (
                    path,
                    int(stat["count"]),
                    f"{stat['total_s'] * 1e3:.2f}",
                    f"{stat['total_s'] / max(stat['count'], 1) * 1e3:.3f}",
                    f"{stat['max_s'] * 1e3:.3f}",
                )
            )
        lines.append(
            format_table(
                ("span", "count", "total ms", "mean ms", "max ms"),
                rows,
                title="timing spans",
            )
        )
    if metrics.counters:
        rows = [
            (name, f"{value:g}")
            for name, value in sorted(metrics.counters.items())
        ]
        lines.append(format_table(("counter", "value"), rows, title="counters"))
    if metrics.gauges:
        rows = [
            (name, f"{value:g}")
            for name, value in sorted(metrics.gauges.items())
        ]
        lines.append(format_table(("gauge", "value"), rows, title="gauges"))
    if not lines:
        lines.append("(no observability data recorded)")
    return "\n".join(lines)
