"""The machine-readable run report and its schema.

A :class:`RunMetrics` is what an :class:`~repro.obs.spans.Observer`
freezes into at the end of a run; the CLI's ``--metrics-out PATH`` writes
one per invocation, ``benchmarks/bench_profile.py`` commits one as the
perf-trajectory baseline, and ``repro metrics diff`` compares two of
them (see :mod:`repro.obs.diff`).

Schema (``repro.metrics/2``) — a single JSON object:

- ``schema``     — the literal version string;
- ``run``        — free-form run identity (command, seed, scale, ...);
    values must be JSON scalars;
- ``spans``      — ``{path: {count, total_s, min_s, max_s}}`` —
    hierarchical span paths are ``/``-joined;
- ``counters``   — ``{name: number}``;
- ``gauges``     — ``{name: number}``;
- ``histograms`` — ``{name: {bounds, counts, count, sum, min, max}}``
    where ``bounds`` are the strictly increasing bucket upper bounds and
    ``counts`` has one entry per bound plus a final overflow bucket
    (see :class:`~repro.obs.hist.Histogram`).

Version ``/1`` is the same object without the ``histograms`` section;
the reader still accepts it (such files simply carry no histograms), so
every pre-histogram metrics file on disk keeps loading.  All numbers
must be finite: serialisation uses ``allow_nan=False`` (standard JSON
has no ``Infinity``/``NaN``) and :func:`validate_metrics` reports
non-finite values as problems.

:func:`validate_metrics` checks a parsed payload against this shape and
returns a list of problems (empty = valid); :meth:`RunMetrics.from_dict`
raises on the first problem, so a round-trip is also a validation.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.hist import Histogram

SCHEMA_VERSION = "repro.metrics/2"
SCHEMA_V1 = "repro.metrics/1"

#: Schemas :func:`validate_metrics` and the readers accept.
ACCEPTED_SCHEMAS = (SCHEMA_VERSION, SCHEMA_V1)

_SPAN_FIELDS = ("count", "total_s", "min_s", "max_s")
_HIST_SCALAR_FIELDS = ("count", "sum", "min", "max")


@dataclass
class RunMetrics:
    """One run's observability snapshot, serialisable to/from JSON."""

    run: Dict[str, object] = field(default_factory=dict)
    spans: Dict[str, Dict[str, float]] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Dict[str, object]] = field(default_factory=dict)
    schema: str = SCHEMA_VERSION

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "schema": self.schema,
            "run": dict(self.run),
            "spans": {path: dict(stat) for path, stat in self.spans.items()},
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
        }
        if self.schema != SCHEMA_V1:
            # A loaded /1 file round-trips byte-compatibly; /2 always
            # carries the section, even when empty.
            payload["histograms"] = {
                name: dict(hist) for name, hist in self.histograms.items()
            }
        return payload

    def to_json(self, indent: Optional[int] = 2) -> str:
        # allow_nan=False: standard JSON has no Infinity/NaN, and a
        # non-finite metric is a recording bug that must fail loudly
        # here, not in whatever later consumes the file.
        return json.dumps(
            self.to_dict(), indent=indent, sort_keys=True, allow_nan=False
        )

    def histogram(self, name: str) -> Histogram:
        """The named histogram, rehydrated (percentiles become available)."""
        return Histogram.from_dict(self.histograms[name])

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RunMetrics":
        problems = validate_metrics(payload)
        if problems:
            raise ValueError(
                "invalid metrics payload: " + "; ".join(problems)
            )
        return cls(
            run=dict(payload["run"]),
            spans={
                path: {k: float(v) for k, v in stat.items()}
                for path, stat in payload["spans"].items()
            },
            counters={k: float(v) for k, v in payload["counters"].items()},
            gauges={k: float(v) for k, v in payload["gauges"].items()},
            histograms={
                name: dict(hist)
                for name, hist in payload.get("histograms", {}).items()
            },
            schema=payload["schema"],
        )

    @classmethod
    def from_json(cls, text: str) -> "RunMetrics":
        return cls.from_dict(json.loads(text))

    def write(self, path: str) -> None:
        from repro.util.atomic import atomic_write_text

        atomic_write_text(path, self.to_json() + "\n")

    @classmethod
    def read(cls, path: str) -> "RunMetrics":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _is_finite_number(value: object) -> bool:
    return _is_number(value) and math.isfinite(value)


def _describe_number(value: object) -> str:
    if _is_number(value) and not math.isfinite(value):
        return f"must be finite, got {value!r}"
    return "must be a number"


def _validate_histogram(name: str, hist: object, problems: List[str]) -> None:
    if not isinstance(hist, dict):
        problems.append(f"histograms[{name!r}] must be an object")
        return
    bounds = hist.get("bounds")
    counts = hist.get("counts")
    if not isinstance(bounds, list) or not bounds:
        problems.append(
            f"histograms[{name!r}] missing non-empty array 'bounds'"
        )
        bounds = None
    elif not all(_is_finite_number(b) for b in bounds):
        problems.append(f"histograms[{name!r}] bounds must be finite numbers")
        bounds = None
    elif any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
        problems.append(
            f"histograms[{name!r}] bounds must be strictly increasing"
        )
    if not isinstance(counts, list):
        problems.append(f"histograms[{name!r}] missing array 'counts'")
        counts = None
    elif not all(_is_finite_number(c) and c >= 0 for c in counts):
        problems.append(
            f"histograms[{name!r}] counts must be non-negative numbers"
        )
        counts = None
    if bounds is not None and counts is not None:
        if len(counts) != len(bounds) + 1:
            problems.append(
                f"histograms[{name!r}] needs {len(bounds) + 1} buckets "
                f"(one per bound plus overflow), got {len(counts)}"
            )
    for field_name in _HIST_SCALAR_FIELDS:
        value = hist.get(field_name)
        if not _is_finite_number(value):
            problems.append(
                f"histograms[{name!r}].{field_name} "
                f"{_describe_number(value)}"
            )
    if (
        counts is not None
        and _is_finite_number(hist.get("count"))
        and sum(counts) != hist["count"]
    ):
        problems.append(
            f"histograms[{name!r}] count {hist['count']:g} disagrees with "
            f"bucket sum {sum(counts):g}"
        )
    extras = set(hist) - {"bounds", "counts", *_HIST_SCALAR_FIELDS}
    if extras:
        problems.append(
            f"histograms[{name!r}] has unknown fields {sorted(extras)}"
        )


def validate_metrics(payload: object) -> List[str]:
    """Check a parsed JSON payload against ``repro.metrics/2`` (or ``/1``).

    Returns a list of human-readable problems; an empty list means the
    payload is valid.  Non-finite numbers anywhere are problems — they
    cannot be represented in standard JSON and always indicate a
    recording bug upstream.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"payload must be an object, got {type(payload).__name__}"]
    schema = payload.get("schema")
    if schema not in ACCEPTED_SCHEMAS:
        problems.append(
            f"schema must be one of {list(ACCEPTED_SCHEMAS)}, got {schema!r}"
        )
    for section in ("run", "spans", "counters", "gauges"):
        if not isinstance(payload.get(section), dict):
            problems.append(f"missing or non-object section {section!r}")
    histograms = payload.get("histograms", {})
    if not isinstance(histograms, dict):
        problems.append("section 'histograms' must be an object")
    elif schema == SCHEMA_V1 and histograms:
        problems.append(
            f"histograms require schema {SCHEMA_VERSION!r}, "
            f"payload declares {SCHEMA_V1!r}"
        )
    if problems:
        return problems
    for key, value in payload["run"].items():
        if value is not None and not isinstance(value, (str, int, float, bool)):
            problems.append(f"run[{key!r}] must be a JSON scalar")
        elif _is_number(value) and not math.isfinite(value):
            problems.append(f"run[{key!r}] must be finite, got {value!r}")
    for path, stat in payload["spans"].items():
        if not isinstance(stat, dict):
            problems.append(f"spans[{path!r}] must be an object")
            continue
        for field_name in _SPAN_FIELDS:
            value = stat.get(field_name)
            if not _is_finite_number(value):
                problems.append(
                    f"spans[{path!r}].{field_name} {_describe_number(value)}"
                )
        extras = set(stat) - set(_SPAN_FIELDS)
        if extras:
            problems.append(
                f"spans[{path!r}] has unknown fields {sorted(extras)}"
            )
    for section in ("counters", "gauges"):
        for name, value in payload[section].items():
            if not _is_finite_number(value):
                problems.append(
                    f"{section}[{name!r}] {_describe_number(value)}"
                )
    for name, hist in histograms.items():
        _validate_histogram(name, hist, problems)
    return problems


def render_profile(metrics: RunMetrics, max_rows: int = 40) -> str:
    """Human-readable profile for the CLI's ``--profile`` flag."""
    from repro.util.tables import format_table

    lines: List[str] = []
    if metrics.run:
        run_bits = ", ".join(
            f"{k}={v}" for k, v in sorted(metrics.run.items())
        )
        lines.append(f"run: {run_bits}")
    if metrics.spans:
        rows = []
        # Widest first so the hot phases lead (path breaks ties, keeping
        # the order stable); hierarchy stays readable because children
        # carry their parents' path prefix.
        ordered = sorted(
            metrics.spans.items(), key=lambda kv: (-kv[1]["total_s"], kv[0])
        )
        for path, stat in ordered[:max_rows]:
            rows.append(
                (
                    path,
                    int(stat["count"]),
                    f"{stat['total_s'] * 1e3:.2f}",
                    f"{stat['total_s'] / max(stat['count'], 1) * 1e3:.3f}",
                    f"{stat['max_s'] * 1e3:.3f}",
                )
            )
        lines.append(
            format_table(
                ("span", "count", "total ms", "mean ms", "max ms"),
                rows,
                title="timing spans",
            )
        )
    if metrics.histograms:
        rows = []
        for name in sorted(metrics.histograms):
            summary = metrics.histogram(name).summary()
            rows.append(
                (
                    name,
                    int(summary["count"]),
                    f"{summary['p50']:g}",
                    f"{summary['p90']:g}",
                    f"{summary['p99']:g}",
                    f"{summary['max']:g}",
                )
            )
        lines.append(
            format_table(
                ("histogram", "count", "p50", "p90", "p99", "max"),
                rows,
                title="histograms",
            )
        )
    if metrics.counters:
        rows = [
            (name, f"{value:g}")
            for name, value in sorted(metrics.counters.items())
        ]
        lines.append(format_table(("counter", "value"), rows, title="counters"))
    if metrics.gauges:
        rows = [
            (name, f"{value:g}")
            for name, value in sorted(metrics.gauges.items())
        ]
        lines.append(format_table(("gauge", "value"), rows, title="gauges"))
    if not lines:
        lines.append("(no observability data recorded)")
    return "\n".join(lines)
