"""Crash-persistent flight recorder: ``repro.telemetry/1`` JSONL snapshots.

A multi-minute sharded crawl is a black box while it runs — metrics only
materialise if the run finishes cleanly.  A :class:`FlightRecorder`
fixes that: a daemon thread appends one JSON snapshot line to a shared
file every ``interval_s``, each line written via
:func:`repro.util.atomic.append_line` (single ``O_APPEND`` write +
fsync), so

- a SIGKILLed run still leaves a usable timeline up to its last
  heartbeat, with at most one torn final line (which the reader
  tolerates);
- every worker of a sharded run appends to the *same* file concurrently
  without interleaving, each line tagged with its ``source`` ("main",
  "shard 0", ...) and pid.

Schema (``repro.telemetry/1``) — one JSON object per line, every line
carries ``schema`` and ``kind``:

- ``kind: "start"`` — run metadata: ``source``, ``pid``, ``ts``,
  ``mono_s``, ``interval_s``, optional ``run`` dict (scale, seed, ...);
- ``kind: "snapshot"`` — ``seq`` (per-source counter), ``ts`` (wall
  clock), ``mono_s`` (shared monotonic clock), ``heartbeat_s`` (seconds
  since this source started), ``progress`` (explicit ``update()``
  values merged with the observer's ``progress/*`` gauges, prefix
  stripped), ``resource`` (one :class:`~repro.obs.resource
  .ResourceSample` as a flat dict), ``top_spans`` (top-k
  ``[path, count, total_s]`` by cumulative time);
- ``kind: "end"`` — final snapshot fields plus ``outcome``.

Determinism contract: the recorder only *reads* observer state and
process accounting; it never draws randomness and never feeds back into
the run, so a seeded run is byte-identical with telemetry on or off.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs.resource import ResourceSampler
from repro.obs.spans import NULL_OBSERVER, Observer
from repro.util.atomic import append_line

__all__ = [
    "FlightRecorder",
    "TELEMETRY_SCHEMA",
    "TelemetrySpec",
    "read_telemetry",
    "validate_telemetry",
    "validate_telemetry_record",
]

TELEMETRY_SCHEMA = "repro.telemetry/1"


@dataclass(frozen=True)
class TelemetrySpec:
    """Where and how often to record telemetry — picklable, so the
    sharded coordinator can hand it to worker processes, each of which
    starts its own :class:`FlightRecorder` against the shared file."""

    path: str
    interval_s: float = 1.0

#: How many span paths a snapshot carries (the biggest time sinks).
TOP_SPANS = 6

#: Gauges with this prefix surface in snapshots' ``progress`` dicts.
PROGRESS_PREFIX = "progress/"


def _dump(record: Dict[str, object]) -> str:
    return json.dumps(record, separators=(",", ":"), allow_nan=False)


class FlightRecorder:
    """Periodic telemetry snapshots of one process, appended to a JSONL.

    The recorder owns a :class:`ResourceSampler` (one fresh sample per
    snapshot) and reads the observer's gauges and span aggregates under
    the GIL — dict snapshots via ``list(d.items())`` are safe against a
    concurrently-mutating owner thread.  ``start()`` writes the start
    line and launches the thread; ``close()`` writes a final snapshot
    plus the end line and folds the sampler's peak gauges into the
    observer (prefix ``resource/`` for the main source,
    ``resource/{source}/`` otherwise) so the run's metrics JSON records
    them too.
    """

    def __init__(
        self,
        path: str,
        obs: Optional[Observer] = None,
        interval_s: float = 1.0,
        source: str = "main",
        run: Optional[Dict[str, object]] = None,
        fsync: bool = True,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self.path = os.fspath(path)
        self.obs = obs if obs is not None else NULL_OBSERVER
        self.interval_s = interval_s
        self.source = source
        self.run = dict(run or {})
        self.fsync = fsync
        self.sampler = ResourceSampler(interval_s=interval_s)
        self.seq = 0
        self._progress: Dict[str, float] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._start_mono = time.monotonic()
        self._closed = False

    # ------------------------------------------------------------------
    # Snapshot assembly

    def update(self, **progress: float) -> None:
        """Record explicit progress values (e.g. ``days_done=3``)."""
        with self._lock:
            for key, value in progress.items():
                self._progress[key] = float(value)

    def _progress_dict(self) -> Dict[str, float]:
        progress: Dict[str, float] = {}
        # Observer progress gauges first, explicit updates win ties.
        for name, value in list(self.obs.gauges.items()):
            if name.startswith(PROGRESS_PREFIX):
                progress[name[len(PROGRESS_PREFIX) :]] = value
        with self._lock:
            progress.update(self._progress)
        return dict(sorted(progress.items()))

    def _top_spans(self) -> List[List[object]]:
        totals: List[Tuple[str, int, float]] = [
            (path, stat.count, stat.total_s)
            for path, stat in list(self.obs.span_stats.items())
        ]
        totals.sort(key=lambda item: (-item[2], item[0]))
        return [
            [path, count, round(total_s, 6)]
            for path, count, total_s in totals[:TOP_SPANS]
        ]

    def _snapshot_record(self, kind: str = "snapshot") -> Dict[str, object]:
        sample = self.sampler.sample_now()
        now_mono = time.monotonic()
        record: Dict[str, object] = {
            "schema": TELEMETRY_SCHEMA,
            "kind": kind,
            "seq": self.seq,
            "ts": time.time(),
            "mono_s": now_mono,
            "source": self.source,
            "pid": os.getpid(),
            "heartbeat_s": round(now_mono - self._start_mono, 6),
            "progress": self._progress_dict(),
            "resource": sample.as_dict(),
            "top_spans": self._top_spans(),
        }
        self.seq += 1
        return record

    # ------------------------------------------------------------------
    # Writing

    def _write(self, record: Dict[str, object]) -> None:
        try:
            append_line(self.path, _dump(record), fsync=self.fsync)
        except OSError:
            # Telemetry must never take the run down; a full disk or a
            # removed directory degrades to a silent gap in the timeline.
            pass

    def snapshot_now(self) -> Dict[str, object]:
        """Write (and return) one snapshot immediately."""
        record = self._snapshot_record()
        self._write(record)
        return record

    # ------------------------------------------------------------------
    # Lifecycle

    def start(self) -> "FlightRecorder":
        if self._thread is not None:
            return self
        self._write(
            {
                "schema": TELEMETRY_SCHEMA,
                "kind": "start",
                "ts": time.time(),
                "mono_s": time.monotonic(),
                "source": self.source,
                "pid": os.getpid(),
                "interval_s": self.interval_s,
                "run": self.run,
            }
        )
        self.snapshot_now()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-flight-recorder", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.snapshot_now()

    def close(self, outcome: str = "completed") -> None:
        """Final snapshot + end line; folds resource gauges into ``obs``.

        Idempotent: the second and later calls do nothing, so ``close``
        can sit in both a ``finally:`` and an explicit success path.
        """
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None
        record = self._snapshot_record(kind="end")
        record["outcome"] = outcome
        self._write(record)
        self.sampler.stop()
        prefix = (
            "resource/"
            if self.source == "main"
            else f"resource/{self.source}/"
        )
        for name, value in self.sampler.summary_gauges(prefix).items():
            self.obs.gauge(name, value)


# ----------------------------------------------------------------------
# Reading

def read_telemetry(path: str) -> Tuple[List[Dict[str, object]], bool]:
    """Parse a telemetry JSONL; returns ``(records, truncated)``.

    A crash can tear at most the final line (one ``append_line`` call is
    one ``write``); a torn tail parses as invalid JSON and is reported
    via ``truncated=True`` rather than raised.  Any *non*-final
    unparseable line is a real corruption and raises ``ValueError``.
    """
    records: List[Dict[str, object]] = []
    truncated = False
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.read().split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    for index, line in enumerate(lines):
        try:
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ValueError("not an object")
        except ValueError:
            if index == len(lines) - 1:
                truncated = True
                break
            raise ValueError(
                f"{path}:{index + 1}: unparseable non-final telemetry line"
            )
        records.append(record)
    return records, truncated


def validate_telemetry_record(record: Dict[str, object]) -> List[str]:
    """Shape-check one parsed telemetry record; [] means valid."""
    problems: List[str] = []
    if record.get("schema") != TELEMETRY_SCHEMA:
        problems.append(
            f"schema must be {TELEMETRY_SCHEMA!r}, got {record.get('schema')!r}"
        )
    kind = record.get("kind")
    if kind not in ("start", "snapshot", "end"):
        problems.append(f"unknown kind {kind!r}")
        return problems
    for field in ("ts", "mono_s"):
        if not isinstance(record.get(field), (int, float)):
            problems.append(f"missing numeric {field!r}")
    if not isinstance(record.get("source"), str):
        problems.append("missing 'source'")
    if not isinstance(record.get("pid"), int):
        problems.append("missing integer 'pid'")
    if kind in ("snapshot", "end"):
        if not isinstance(record.get("seq"), int):
            problems.append("snapshot missing integer 'seq'")
        if not isinstance(record.get("heartbeat_s"), (int, float)):
            problems.append("snapshot missing numeric 'heartbeat_s'")
        for field in ("progress", "resource"):
            if not isinstance(record.get(field), dict):
                problems.append(f"snapshot missing {field!r} object")
        if not isinstance(record.get("top_spans"), list):
            problems.append("snapshot missing 'top_spans' array")
    return problems


def validate_telemetry(path: str) -> List[str]:
    """Validate a whole telemetry file; [] means every record is valid.

    A torn final line (crash artefact) is *not* a problem; an empty file
    or corruption mid-file is.
    """
    try:
        records, _truncated = read_telemetry(path)
    except (OSError, ValueError) as exc:
        return [str(exc)]
    if not records:
        return [f"{path}: no complete telemetry records"]
    problems: List[str] = []
    for index, record in enumerate(records):
        for problem in validate_telemetry_record(record):
            problems.append(f"{path}:{index + 1}: {problem}")
    return problems
