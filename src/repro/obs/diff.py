"""Comparing two run-metrics files: the perf-regression gate.

``repro metrics diff BASELINE CURRENT [--fail-on SPEC]`` loads two
:class:`~repro.obs.report.RunMetrics` files (either schema version) and
compares them metric by metric.  The committed
``benchmarks/results/bench-profile.json`` baseline only earns its keep
if something *fails* when a change regresses it — this module is that
gate: CI diffs a fresh bench-profile run against the baseline and exits
non-zero on regression.

What is compared
----------------

- ``counters``   — every counter, by name;
- ``gauges``     — every gauge, by name;
- ``spans``      — every span path's ``total_s`` (the timing signal;
  span *counts* mirror counters, which are already compared exactly);
- ``histograms`` — every histogram's ``count`` and estimated ``p99``,
  addressed as ``<name>:count`` / ``<name>:p99``.

A metric present in the baseline but missing from the current run is a
regression (the instrumentation lost coverage); a metric only in the
current run is reported as *new* but does not fail the gate.

Tolerance-spec grammar
----------------------

A spec is a comma-separated list of ``selector=tolerance`` rules::

    counters=0,gauges=0,spans=0.5:0.05,histograms:*:p99=0.5:0.005

- ``selector`` is a section name (``counters``, ``gauges``, ``spans``,
  ``histograms``), optionally followed by ``:<glob>`` matched
  (:mod:`fnmatch`) against the metric id within that section —
  the counter/gauge name, the span path, or ``<hist-name>:<field>``;
- ``tolerance`` is a relative fraction (``0`` = exact, ``0.5`` = ±50 %),
  optionally followed by ``:<abs>``, an absolute floor below which any
  drift passes (soaks up wall-clock noise on near-zero timings);
  ``ignore`` skips the matching metrics entirely.

Later rules override earlier ones for the metrics they match; metrics no
rule matches are compared exactly.  A metric passes when
``|current - baseline| <= max(rel * |baseline|, abs)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Dict, List, Tuple

from repro.obs.report import RunMetrics

SECTIONS = ("counters", "gauges", "spans", "histograms")

#: The default gate: deterministic metrics exact, timings ±50 % with a
#: small absolute floor for wall-clock noise.
DEFAULT_TOLERANCE_SPEC = (
    "counters=0,gauges=0,spans=0.5:0.05,"
    "histograms:*:count=0,histograms:*:p99=0.5:0.005"
)


@dataclass(frozen=True)
class ToleranceRule:
    """One parsed ``selector=tolerance`` clause."""

    section: str
    pattern: str = "*"
    rel: float = 0.0
    abs_floor: float = 0.0

    def matches(self, section: str, metric: str) -> bool:
        return section == self.section and fnmatchcase(metric, self.pattern)

    def allows(self, baseline: float, current: float) -> bool:
        if math.isinf(self.rel):
            return True
        return abs(current - baseline) <= max(
            self.rel * abs(baseline), self.abs_floor
        )

    def describe(self) -> str:
        if math.isinf(self.rel):
            return "ignore"
        text = f"±{self.rel:g}"
        if self.abs_floor:
            text += f" (abs ≥ {self.abs_floor:g})"
        return text


#: Applied when no spec rule matches a metric: exact comparison.
EXACT = ToleranceRule(section="*", pattern="*")


def parse_tolerance_spec(spec: str) -> List[ToleranceRule]:
    """Parse the ``--fail-on`` grammar into an ordered rule list."""
    rules: List[ToleranceRule] = []
    for clause in spec.split(","):
        clause = clause.strip()
        if not clause:
            continue
        if "=" not in clause:
            raise ValueError(
                f"bad tolerance clause {clause!r}: expected selector=tolerance"
            )
        selector, _, tolerance = clause.partition("=")
        section, _, pattern = selector.partition(":")
        if section not in SECTIONS:
            raise ValueError(
                f"bad tolerance clause {clause!r}: unknown section "
                f"{section!r} (choose from {', '.join(SECTIONS)})"
            )
        pattern = pattern or "*"
        if tolerance.strip() == "ignore":
            rel, abs_floor = math.inf, 0.0
        else:
            rel_text, _, abs_text = tolerance.partition(":")
            try:
                rel = float(rel_text)
                abs_floor = float(abs_text) if abs_text else 0.0
            except ValueError:
                raise ValueError(
                    f"bad tolerance clause {clause!r}: tolerance must be "
                    "rel[:abs] or 'ignore'"
                ) from None
            if rel < 0 or abs_floor < 0:
                raise ValueError(
                    f"bad tolerance clause {clause!r}: tolerances must be >= 0"
                )
        rules.append(
            ToleranceRule(
                section=section, pattern=pattern, rel=rel, abs_floor=abs_floor
            )
        )
    return rules


def _rule_for(
    rules: List[ToleranceRule], section: str, metric: str
) -> ToleranceRule:
    chosen = EXACT
    for rule in rules:  # later rules override earlier ones
        if rule.matches(section, metric):
            chosen = rule
    return chosen


def _comparable(metrics: RunMetrics) -> Dict[str, Dict[str, float]]:
    """Flatten a RunMetrics into ``{section: {metric_id: value}}``."""
    flat: Dict[str, Dict[str, float]] = {
        "counters": dict(metrics.counters),
        "gauges": dict(metrics.gauges),
        "spans": {
            path: stat["total_s"] for path, stat in metrics.spans.items()
        },
        "histograms": {},
    }
    for name in metrics.histograms:
        hist = metrics.histogram(name)
        flat["histograms"][f"{name}:count"] = float(hist.count)
        flat["histograms"][f"{name}:p99"] = hist.percentile(0.99)
    return flat


@dataclass
class DiffEntry:
    """One metric's comparison outcome."""

    section: str
    metric: str
    status: str  # ok | regression | missing | new | ignored
    baseline: float = 0.0
    current: float = 0.0
    tolerance: str = ""

    @property
    def qualified(self) -> str:
        return f"{self.section}/{self.metric}"

    def delta_text(self) -> str:
        if self.status == "missing":
            return "gone"
        if self.status == "new":
            return "new"
        delta = self.current - self.baseline
        if self.baseline:
            return f"{delta:+g} ({100 * delta / self.baseline:+.1f}%)"
        return f"{delta:+g}"


@dataclass
class MetricsDiff:
    """All per-metric outcomes of one baseline/current comparison."""

    entries: List[DiffEntry] = field(default_factory=list)

    @property
    def regressions(self) -> List[DiffEntry]:
        return [
            e for e in self.entries if e.status in ("regression", "missing")
        ]

    @property
    def new_metrics(self) -> List[DiffEntry]:
        return [e for e in self.entries if e.status == "new"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        """The human-readable per-metric report the CLI prints."""
        from repro.util.tables import format_table

        compared = sum(
            1 for e in self.entries if e.status not in ("new", "ignored")
        )
        lines = [
            f"metrics diff: {compared} compared, "
            f"{len(self.regressions)} regressed, "
            f"{len(self.new_metrics)} new"
        ]
        if self.regressions:
            rows = [
                (
                    e.qualified,
                    f"{e.baseline:g}" if e.status != "new" else "-",
                    f"{e.current:g}" if e.status != "missing" else "-",
                    e.delta_text(),
                    e.tolerance,
                )
                for e in self.regressions
            ]
            lines.append(
                format_table(
                    ("metric", "baseline", "current", "delta", "allowed"),
                    rows,
                    title="regressions",
                )
            )
        else:
            lines.append("all metrics within tolerance")
        if self.new_metrics:
            names = ", ".join(e.qualified for e in self.new_metrics[:10])
            more = len(self.new_metrics) - 10
            if more > 0:
                names += f", ... (+{more})"
            lines.append(f"new metrics (not gated): {names}")
        return "\n".join(lines)


def diff_metrics(
    baseline: RunMetrics,
    current: RunMetrics,
    rules: List[ToleranceRule],
) -> MetricsDiff:
    """Compare ``current`` against ``baseline`` under the rule list."""
    diff = MetricsDiff()
    base_flat = _comparable(baseline)
    cur_flat = _comparable(current)
    for section in SECTIONS:
        base_section = base_flat[section]
        cur_section = cur_flat[section]
        for metric in sorted(set(base_section) | set(cur_section)):
            rule = _rule_for(rules, section, metric)
            entry = DiffEntry(
                section=section,
                metric=metric,
                status="ok",
                baseline=base_section.get(metric, 0.0),
                current=cur_section.get(metric, 0.0),
                tolerance=rule.describe(),
            )
            if math.isinf(rule.rel):
                entry.status = "ignored"
            elif metric not in base_section:
                entry.status = "new"
            elif metric not in cur_section:
                entry.status = "missing"
            elif not rule.allows(entry.baseline, entry.current):
                entry.status = "regression"
            diff.entries.append(entry)
    return diff
