"""Event-level tracing: bounded structured events, Chrome trace export.

Where :mod:`repro.obs.spans` *aggregates* (memory-bounded counters for
always-on capture), a :class:`TraceRecorder` keeps the individual
events — the raw per-query stream the eDonkey measurement literature
analyses ("Ten weeks in the life of an eDonkey server" works from the
per-query log; the distributed-honeypot study reconstructs behaviour
from event streams).  The recorder is opt-in (``--trace-out``) and
bounded: a ring buffer of ``max_events`` keeps the most recent events
and counts what it dropped, so even a pathological run cannot exhaust
memory.

Events carry monotonic timestamps relative to the recorder's epoch and
export as Chrome ``trace_event`` JSON (the ``{"traceEvents": [...]}``
object format), loadable in ``chrome://tracing`` or Perfetto:

- ``complete`` events (``ph: "X"``) — one per closed span, with ``ts``
  and ``dur`` in microseconds; crawl days, search phases and message
  round-trips render as a flame view;
- ``instant`` events (``ph: "i"``) — point markers: message hops,
  per-query lifecycle records (with their structured payload in
  ``args``), day boundaries.

The determinism contract of the observability layer extends to tracing:
a recorder never draws randomness and never feeds back into simulation
state, so seeded runs are byte-identical with tracing on or off.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Callable, Dict, List, Optional

#: Default ring capacity — enough for a small run's full event stream,
#: bounded for a large one (the newest events win).
DEFAULT_MAX_EVENTS = 200_000


class TraceRecorder:
    """Bounded ring of structured events with monotonic timestamps.

    ``pid``/``process_name`` label this recorder's own events on the
    exported timeline; a sharded run gives each worker its shard number
    as ``pid`` and the coordinator folds the rings together with
    :meth:`merge_from`, so one Chrome trace shows every process as its
    own named track.
    """

    __slots__ = (
        "clock",
        "epoch",
        "pid",
        "_process_names",
        "_events",
        "dropped",
    )

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        max_events: int = DEFAULT_MAX_EVENTS,
        pid: int = 1,
        process_name: str = "repro",
    ) -> None:
        if max_events <= 0:
            raise ValueError(f"max_events must be > 0, got {max_events}")
        self.clock = clock
        self.epoch = clock()
        self.pid = pid
        self._process_names: Dict[int, str] = {pid: process_name}
        # Each entry: (ph, name, cat, ts_us, dur_us, args, pid)
        self._events: deque = deque(maxlen=max_events)
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)

    def _append(self, event) -> None:
        if len(self._events) == self._events.maxlen:
            self.dropped += 1
        self._events.append(event)

    def _ts_us(self, instant_s: float) -> float:
        return (instant_s - self.epoch) * 1e6

    # ------------------------------------------------------------------
    # Recording

    def complete(
        self,
        name: str,
        start_s: float,
        dur_s: float,
        cat: str = "span",
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        """One closed span: ``start_s`` on the recorder's clock, ``dur_s``
        long."""
        self._append(
            ("X", name, cat, self._ts_us(start_s), dur_s * 1e6, args, self.pid)
        )

    def instant(
        self,
        name: str,
        cat: str = "instant",
        args: Optional[Dict[str, object]] = None,
        ts_s: Optional[float] = None,
    ) -> None:
        """A point event, stamped now unless ``ts_s`` is given."""
        instant_s = self.clock() if ts_s is None else ts_s
        self._append(
            ("i", name, cat, self._ts_us(instant_s), None, args, self.pid)
        )

    # ------------------------------------------------------------------
    # Merging (sharded runs)

    def merge_from(
        self,
        other: "TraceRecorder",
        pid: Optional[int] = None,
        process_name: Optional[str] = None,
    ) -> None:
        """Fold another recorder's events onto this timeline.

        ``other``'s timestamps are re-based through the epoch delta —
        valid because ``time.perf_counter`` is the system-wide
        ``CLOCK_MONOTONIC`` on Linux, so two processes' epochs live on
        the same clock.  The merged events keep their own ``pid``
        (overridable), rendering as a separate named process track.
        """
        merge_pid = other.pid if pid is None else pid
        name = process_name
        if name is None:
            name = other._process_names.get(other.pid, f"pid {merge_pid}")
        self._process_names[merge_pid] = name
        delta_us = (other.epoch - self.epoch) * 1e6
        for ph, ev_name, cat, ts_us, dur_us, args, _pid in other._events:
            self._append(
                (ph, ev_name, cat, ts_us + delta_us, dur_us, args, merge_pid)
            )
        self.dropped += other.dropped

    # ------------------------------------------------------------------
    # Chrome trace_event export

    def to_chrome(self) -> Dict[str, object]:
        """The Chrome ``trace_event`` JSON object (object format)."""
        trace_events: List[Dict[str, object]] = [
            {
                "ph": "M",
                "name": "process_name",
                "pid": meta_pid,
                "tid": 1,
                "ts": 0,
                "args": {"name": meta_name},
            }
            for meta_pid, meta_name in sorted(self._process_names.items())
        ]
        for ph, name, cat, ts_us, dur_us, args, ev_pid in self._events:
            event: Dict[str, object] = {
                "ph": ph,
                "name": name,
                "cat": cat,
                "ts": ts_us,
                "pid": ev_pid,
                "tid": 1,
            }
            if ph == "X":
                event["dur"] = dur_us
            elif ph == "i":
                event["s"] = "t"  # thread-scoped instant
            if args:
                event["args"] = dict(args)
            trace_events.append(event)
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {"dropped_events": self.dropped},
        }

    def to_chrome_json(self) -> str:
        return json.dumps(self.to_chrome(), allow_nan=False)

    def write_chrome(self, path: str) -> None:
        from repro.util.atomic import atomic_write_text

        atomic_write_text(path, self.to_chrome_json() + "\n")


def validate_chrome_trace(payload: object) -> List[str]:
    """Shape-check a parsed Chrome trace (object format).

    Returns human-readable problems; empty means the payload is a trace
    ``chrome://tracing``/Perfetto will load.  Used by the tests and the
    CI artifact check rather than by the recorder itself (which emits
    valid traces by construction).
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"trace must be an object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-array 'traceEvents'"]
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"traceEvents[{index}] must be an object")
            continue
        ph = event.get("ph")
        if not isinstance(ph, str) or not ph:
            problems.append(f"traceEvents[{index}] missing 'ph'")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"traceEvents[{index}] missing 'name'")
        if not isinstance(event.get("ts"), (int, float)):
            problems.append(f"traceEvents[{index}] missing numeric 'ts'")
        if ph == "X" and not isinstance(event.get("dur"), (int, float)):
            problems.append(
                f"traceEvents[{index}] complete event missing numeric 'dur'"
            )
    return problems
