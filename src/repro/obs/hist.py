"""Fixed-bucket histograms for distributional run metrics.

The paper's core results are distributions (per-query hit rates, load
skew across peers), and scalar span aggregates cannot say whether a p99
moved while the mean stayed put.  A :class:`Histogram` keeps a fixed
ladder of log-spaced bucket upper bounds plus count/sum/min/max, so
memory is constant regardless of how many values are recorded and two
histograms from different runs are directly comparable bucket by
bucket.

Bucketing: value ``v`` lands in the first bucket whose upper bound is
``>= v`` (``bisect_left``); values above the last bound land in a final
overflow bucket.  Percentiles are estimated by linear interpolation
inside the owning bucket, clamped to the observed min/max — deterministic
for a given sequence of values, and exact at the bucket boundaries.

Two standard ladders cover the instrumented quantities:

- :data:`LATENCY_BOUNDS_S` — 1 µs .. 16 s, doubling (25 buckets), for
  wall-clock phase latencies;
- :data:`COUNT_BOUNDS` — 1 .. 4096, doubling (13 buckets), for per-query
  hop/probe counts and list positions.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Sequence, Tuple


def log_bounds(lo: float, hi: float, growth: float = 2.0) -> Tuple[float, ...]:
    """Log-spaced bucket upper bounds: ``lo, lo*growth, ...`` up to ``hi``."""
    if lo <= 0:
        raise ValueError(f"lo must be > 0, got {lo}")
    if hi <= lo:
        raise ValueError(f"hi must be > lo, got hi={hi} lo={lo}")
    if growth <= 1:
        raise ValueError(f"growth must be > 1, got {growth}")
    bounds: List[float] = []
    bound = lo
    while bound < hi:
        bounds.append(bound)
        bound *= growth
    bounds.append(bound)
    return tuple(bounds)


#: Phase-latency ladder: 1 µs .. 16 s, doubling.
LATENCY_BOUNDS_S = log_bounds(1e-6, 16.0)

#: Per-query count ladder (hops, probes, hit positions): 1 .. 4096, doubling.
COUNT_BOUNDS = log_bounds(1.0, 4096.0)


class Histogram:
    """Fixed log-spaced buckets with count/sum/min/max and percentiles."""

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, bounds: Sequence[float] = LATENCY_BOUNDS_S) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("bounds must be non-empty")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bounds must be strictly increasing")
        self.bounds = bounds
        # One bucket per bound plus a final overflow bucket.
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = 0.0
        self.max = 0.0

    def record(self, value: float) -> None:
        value = float(value)
        if self.count == 0:
            self.min = value
            self.max = value
        else:
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
        self.count += 1
        self.total += value
        self.counts[bisect_left(self.bounds, value)] += 1

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (sharded-run metric merge).

        Requires identical bucket ladders — merging histograms with
        different bounds would silently mis-bucket every value.
        """
        if other.bounds != self.bounds:
            raise ValueError(
                "cannot merge histograms with different bounds: "
                f"{self.bounds[:3]}... vs {other.bounds[:3]}..."
            )
        if other.count == 0:
            return
        if self.count == 0:
            self.min = other.min
            self.max = other.max
        else:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
        self.count += other.count
        self.total += other.total
        for index, bucket_count in enumerate(other.counts):
            self.counts[index] += bucket_count

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated ``q``-quantile (``0 <= q <= 1``), clamped to min/max."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0.0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                if index >= len(self.bounds):
                    return self.max
                upper = self.bounds[index]
                lower = self.bounds[index - 1] if index > 0 else 0.0
                fraction = (target - cumulative) / bucket_count
                estimate = lower + (upper - lower) * fraction
                return min(max(estimate, self.min), self.max)
            cumulative += bucket_count
        return self.max

    def summary(self) -> Dict[str, float]:
        """The headline numbers the profile renderer and diff gate use."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
            "max": self.max,
        }

    # ------------------------------------------------------------------
    # Serialisation (the ``histograms`` section of ``repro.metrics/2``)

    def as_dict(self) -> Dict[str, object]:
        return {
            "bounds": list(self.bounds),
            "counts": [float(c) for c in self.counts],
            "count": float(self.count),
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Histogram":
        hist = cls(payload["bounds"])
        counts = [int(c) for c in payload["counts"]]
        if len(counts) != len(hist.counts):
            raise ValueError(
                f"counts must have {len(hist.counts)} entries, "
                f"got {len(counts)}"
            )
        hist.counts = counts
        hist.count = int(payload["count"])
        hist.total = float(payload["sum"])
        hist.min = float(payload["min"])
        hist.max = float(payload["max"])
        return hist
