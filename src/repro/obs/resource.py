"""Process resource sampling: RSS, CPU, I/O and GC gauges over time.

Long captures (the paper's crawl ran 56 days; ``Scale.HUGE`` runs for
minutes across many processes) need the capture process itself watched:
a wedged worker shows up as a flat CPU curve, a leak as a climbing RSS
curve, long before any end-of-run metric exists.  A
:class:`ResourceSampler` is a daemon thread that reads
``/proc/self/{statm,stat,io}`` plus :mod:`gc` counters every
``interval_s`` into a bounded in-memory series of timestamped
:class:`ResourceSample` gauges.

Portability: everything degrades gracefully without psutil (which this
repo does not depend on) and without ``/proc`` —
:func:`read_resource_sample` falls back to ``resource.getrusage`` for
RSS/CPU and reports zero for the I/O counters it cannot see, so the
sampler runs (and the telemetry schema stays identical) on any
platform.

Determinism contract: sampling never draws randomness and never feeds
back into simulation state — it only *reads* process accounting — so a
seeded run is byte-identical with sampling on or off.
"""

from __future__ import annotations

import gc
import os
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "ResourceSample",
    "ResourceSampler",
    "read_resource_sample",
]

try:  # pragma: no cover - exercised per-platform
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
    _CLK_TCK = os.sysconf("SC_CLK_TCK")
except (ValueError, OSError, AttributeError):  # pragma: no cover
    _PAGE_SIZE = 4096
    _CLK_TCK = 100


@dataclass
class ResourceSample:
    """One point-in-time reading of this process's resource accounting."""

    rss_bytes: int = 0
    vms_bytes: int = 0
    cpu_user_s: float = 0.0
    cpu_system_s: float = 0.0
    io_read_bytes: int = 0
    io_write_bytes: int = 0
    gc_collections: int = 0
    gc_collected: int = 0

    @property
    def cpu_s(self) -> float:
        return self.cpu_user_s + self.cpu_system_s

    def as_dict(self) -> Dict[str, float]:
        """Flat JSON-ready mapping (the telemetry snapshot's ``resource``)."""
        return {
            "rss_bytes": float(self.rss_bytes),
            "vms_bytes": float(self.vms_bytes),
            "cpu_user_s": self.cpu_user_s,
            "cpu_system_s": self.cpu_system_s,
            "io_read_bytes": float(self.io_read_bytes),
            "io_write_bytes": float(self.io_write_bytes),
            "gc_collections": float(self.gc_collections),
            "gc_collected": float(self.gc_collected),
        }


def _read_proc_statm() -> Optional[Tuple[int, int]]:
    """(rss_bytes, vms_bytes) from ``/proc/self/statm``, or None."""
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as fh:
            fields = fh.read().split()
        return int(fields[1]) * _PAGE_SIZE, int(fields[0]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        return None


def _read_proc_stat() -> Optional[Tuple[float, float]]:
    """(cpu_user_s, cpu_system_s) from ``/proc/self/stat``, or None."""
    try:
        with open("/proc/self/stat", "r", encoding="ascii") as fh:
            text = fh.read()
        # The comm field is parenthesised and may contain spaces; fields
        # are positional only after the closing paren.
        fields = text[text.rindex(")") + 2 :].split()
        # Fields 14/15 of stat are utime/stime; after stripping pid+comm
        # +state the indices shift down by three.
        return int(fields[11]) / _CLK_TCK, int(fields[12]) / _CLK_TCK
    except (OSError, IndexError, ValueError):
        return None


def _read_proc_io() -> Optional[Tuple[int, int]]:
    """(read_bytes, write_bytes) from ``/proc/self/io``, or None.

    ``/proc/self/io`` needs CONFIG_TASK_IO_ACCOUNTING and can be
    permission-restricted even for self; absence degrades to zeros.
    """
    try:
        values = {}
        with open("/proc/self/io", "r", encoding="ascii") as fh:
            for line in fh:
                key, _, value = line.partition(":")
                values[key.strip()] = int(value)
        return values["read_bytes"], values["write_bytes"]
    except (OSError, KeyError, ValueError):
        return None


def _rusage_fallback() -> Tuple[int, float, float]:
    """(rss_bytes, cpu_user_s, cpu_system_s) without ``/proc``."""
    try:
        import resource as _resource

        usage = _resource.getrusage(_resource.RUSAGE_SELF)
        # ru_maxrss is KiB on Linux, bytes on macOS; both are an upper
        # bound on current RSS, which is the honest portable answer.
        scale = 1 if os.uname().sysname == "Darwin" else 1024
        return int(usage.ru_maxrss) * scale, usage.ru_utime, usage.ru_stime
    except (ImportError, AttributeError, OSError):  # pragma: no cover
        return 0, 0.0, 0.0


def read_resource_sample() -> ResourceSample:
    """One synchronous resource reading (never raises, never blocks)."""
    sample = ResourceSample()
    statm = _read_proc_statm()
    stat = _read_proc_stat()
    if statm is not None:
        sample.rss_bytes, sample.vms_bytes = statm
    if stat is not None:
        sample.cpu_user_s, sample.cpu_system_s = stat
    if statm is None or stat is None:
        rss, user, system = _rusage_fallback()
        if statm is None:
            sample.rss_bytes = rss
        if stat is None:
            sample.cpu_user_s, sample.cpu_system_s = user, system
    io = _read_proc_io()
    if io is not None:
        sample.io_read_bytes, sample.io_write_bytes = io
    stats = gc.get_stats()
    sample.gc_collections = sum(int(s.get("collections", 0)) for s in stats)
    sample.gc_collected = sum(int(s.get("collected", 0)) for s in stats)
    return sample


#: Default series bound: at 1 Hz this is over an hour of samples, and the
#: telemetry file (not this buffer) is the durable record anyway.
DEFAULT_MAX_SAMPLES = 4096


class ResourceSampler:
    """Background thread recording a bounded (t, sample) gauge series.

    ``clock`` stamps samples (monotonic by default, so series from
    different processes on the same host share a timeline).  The series
    keeps the newest :data:`DEFAULT_MAX_SAMPLES` points; ``cpu_percent``
    is derived between consecutive samples.  ``sample_now()`` works with
    or without the thread running — the telemetry recorder uses it to
    guarantee a fresh reading per snapshot even at sub-interval rates.
    """

    def __init__(
        self,
        interval_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        max_samples: int = DEFAULT_MAX_SAMPLES,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        if max_samples <= 0:
            raise ValueError(f"max_samples must be > 0, got {max_samples}")
        self.interval_s = interval_s
        self.clock = clock
        self.max_samples = max_samples
        self._series: List[Tuple[float, ResourceSample]] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Sampling

    def sample_now(self) -> ResourceSample:
        """Take (and record) one sample immediately."""
        sample = read_resource_sample()
        now = self.clock()
        with self._lock:
            self._series.append((now, sample))
            if len(self._series) > self.max_samples:
                del self._series[0 : len(self._series) - self.max_samples]
        return sample

    def latest(self) -> Optional[ResourceSample]:
        with self._lock:
            return self._series[-1][1] if self._series else None

    def series(self) -> List[Tuple[float, ResourceSample]]:
        """A snapshot copy of the recorded (t, sample) series."""
        with self._lock:
            return list(self._series)

    def cpu_percent(self) -> float:
        """CPU utilisation between the two most recent samples (0 first)."""
        with self._lock:
            if len(self._series) < 2:
                return 0.0
            (t0, s0), (t1, s1) = self._series[-2], self._series[-1]
        dt = t1 - t0
        if dt <= 0:
            return 0.0
        return max(0.0, 100.0 * (s1.cpu_s - s0.cpu_s) / dt)

    # ------------------------------------------------------------------
    # Thread lifecycle

    def start(self) -> "ResourceSampler":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-resource-sampler", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        # First sample immediately, so even a short-lived process has one.
        self.sample_now()
        while not self._stop.wait(self.interval_s):
            self.sample_now()

    def stop(self) -> None:
        """Stop the thread (idempotent); the series stays readable."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    def summary_gauges(self, prefix: str = "resource/") -> Dict[str, float]:
        """Peak/total gauges for folding into an Observer at shutdown."""
        series = self.series()
        if not series:
            return {}
        last = series[-1][1]
        return {
            prefix + "rss_max_bytes": float(
                max(s.rss_bytes for _, s in series)
            ),
            prefix + "rss_last_bytes": float(last.rss_bytes),
            prefix + "cpu_user_s": last.cpu_user_s,
            prefix + "cpu_system_s": last.cpu_system_s,
            prefix + "io_read_bytes": float(last.io_read_bytes),
            prefix + "io_write_bytes": float(last.io_write_bytes),
            prefix + "gc_collections": float(last.gc_collections),
            prefix + "samples": float(len(series)),
        }
