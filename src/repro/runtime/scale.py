"""Workload scales and their presets.

Experiments come in four scales:

- ``Scale.TINY``    — ~100 clients; the ``run-all`` smoke preset (CI runs
  every registered experiment end-to-end at this scale);
- ``Scale.SMALL``   — a few hundred clients; used by the test suite;
- ``Scale.DEFAULT`` — a couple thousand clients; used by the benchmarks;
- ``Scale.LARGE``   — the stress preset;
- ``Scale.HUGE``    — paper scale (≥100k clients, the order of the
  crawled eDonkey population); only reachable through the store-backed
  streaming crawl and the sharded runner.

The preset keeps scale ratios (files per client, categories vs. sharers)
close to the defaults so the planted clustering survives the shrink.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.workload.config import WorkloadConfig

DEFAULT_SEED = 20060418  # EuroSys'06 started April 18, 2006


class Scale(enum.Enum):
    TINY = "tiny"
    SMALL = "small"
    DEFAULT = "default"
    LARGE = "large"
    HUGE = "huge"


def workload_config(scale: Scale = Scale.DEFAULT) -> WorkloadConfig:
    """The workload preset for a scale (see WorkloadConfig for dials)."""
    base = WorkloadConfig()
    if scale is Scale.DEFAULT:
        return base
    if scale is Scale.TINY:
        return dataclasses.replace(
            base,
            num_clients=120,
            num_files=4000,
            # Extrapolation eligibility needs an observation span of at
            # least ExtrapolationConfig.min_span_days (10), so the trace
            # must run comfortably longer than that.
            days=14,
            num_shock_files=2,
            mainstream_pool_size=240,
            interest_model=dataclasses.replace(
                base.interest_model, num_categories=20
            ),
        )
    if scale is Scale.SMALL:
        return dataclasses.replace(
            base,
            num_clients=320,
            num_files=12000,
            days=24,
            num_shock_files=4,
            mainstream_pool_size=600,
            interest_model=dataclasses.replace(
                base.interest_model, num_categories=48
            ),
        )
    if scale is Scale.LARGE:
        return dataclasses.replace(
            base,
            num_clients=5000,
            num_files=200000,
            mainstream_pool_size=10000,
            interest_model=dataclasses.replace(
                base.interest_model, num_categories=750
            ),
        )
    if scale is Scale.HUGE:
        return dataclasses.replace(
            base,
            num_clients=100_000,
            num_files=1_000_000,
            mainstream_pool_size=50_000,
            interest_model=dataclasses.replace(
                base.interest_model, num_categories=15_000
            ),
        )
    raise ValueError(f"unknown scale {scale!r}")
