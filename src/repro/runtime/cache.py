"""The bounded, (scale, seed)-keyed trace cache.

Traces are deterministic in (scale, seed) and expensive enough to be worth
sharing: the shared cache below means the ~20 benchmarks — and a
``run-all`` batch — generate each trace variant once per process instead
of once per experiment.

This replaces the old module-level ``functools.lru_cache`` quartet that
used to live in ``repro.experiments.configs``: one cache object, one
bound across all trace variants (including the compiled form), an
explicit :meth:`TraceCache.clear` for tests, and the option of a private
cache per :class:`~repro.runtime.context.RunContext` when isolation
matters more than sharing.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Tuple

from repro.runtime.scale import DEFAULT_SEED, Scale, workload_config
from repro.trace.extrapolation import extrapolate
from repro.trace.filtering import filter_duplicates
from repro.trace.model import StaticTrace, Trace
from repro.workload.generator import SyntheticWorkloadGenerator

_Key = Tuple[str, Scale, int]


class TraceCache:
    """LRU cache of built trace variants, keyed by (kind, scale, seed).

    ``maxsize`` bounds the *total* number of cached traces across all four
    variants (the old per-variant ``lru_cache(maxsize=8)`` quartet could
    hold 32 large traces); the least recently used entry is evicted first.
    """

    def __init__(self, maxsize: int = 16) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[_Key, object]" = OrderedDict()

    # ------------------------------------------------------------------
    # Core mechanics

    def _get(self, kind: str, scale: Scale, seed: int, build: Callable):
        key = (kind, scale, seed)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return entry
        self.misses += 1
        entry = build()
        self._entries[key] = entry
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return entry

    def clear(self) -> None:
        """Drop every cached trace (mainly for tests that tweak configs)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: _Key) -> bool:
        return key in self._entries

    # ------------------------------------------------------------------
    # Trace variants

    def temporal(
        self, scale: Scale = Scale.DEFAULT, seed: int = DEFAULT_SEED
    ) -> Trace:
        """The *full trace* (crawler output equivalent) for a scale."""
        return self._get(
            "temporal",
            scale,
            seed,
            lambda: SyntheticWorkloadGenerator(
                config=workload_config(scale), seed=seed
            ).generate(),
        )

    def filtered(
        self, scale: Scale = Scale.DEFAULT, seed: int = DEFAULT_SEED
    ) -> Trace:
        """The *filtered trace*: duplicate clients removed."""
        return self._get(
            "filtered",
            scale,
            seed,
            lambda: filter_duplicates(self.temporal(scale, seed)),
        )

    def extrapolated(
        self, scale: Scale = Scale.DEFAULT, seed: int = DEFAULT_SEED
    ) -> Trace:
        """The *extrapolated trace*: eligible clients, gaps filled."""
        return self._get(
            "extrapolated",
            scale,
            seed,
            lambda: extrapolate(self.filtered(scale, seed)),
        )

    def static(
        self, scale: Scale = Scale.DEFAULT, seed: int = DEFAULT_SEED
    ) -> StaticTrace:
        """The static search workload (Section 5): filtered, collapsed.

        Built directly by the generator's static path — equivalent content
        model, much faster than running the churn loop — then
        duplicate-free by construction (aliases are excluded the same way
        filtering would).
        """
        return self._get("static", scale, seed, lambda: _build_static(scale, seed))

    def compiled(self, scale: Scale = Scale.DEFAULT, seed: int = DEFAULT_SEED):
        """The compiled form of the static trace (interned/columnar).

        Cached under its own key so a hit skips recompilation even if the
        underlying static entry was evicted; when the static trace *is*
        still cached, this returns its memoized ``.compiled()`` value, so
        the two keys share one object.
        """
        return self._get(
            "compiled", scale, seed, lambda: self.static(scale, seed).compiled()
        )


def _build_static(scale: Scale, seed: int) -> StaticTrace:
    generator = SyntheticWorkloadGenerator(config=workload_config(scale), seed=seed)
    static = generator.generate_static()
    aliases = [
        p.meta.client_id for p in generator.profiles if p.alias_of is not None
    ]
    return static.without_clients(aliases)


#: The process-wide default cache.  Every :class:`RunContext` shares it
#: unless constructed with a private one, so experiments, benchmarks and
#: ``run-all`` batches reuse each other's traces.
SHARED_TRACE_CACHE = TraceCache()
