"""The declarative experiment registry.

Every paper artefact (and every extension sweep) is reproduced by one
``run_*`` function; the :func:`experiment` decorator registers each of
them under a stable CLI name together with the artefact it reproduces, a
one-line description and its preferred scale::

    @experiment(
        "fig18",
        artefact="Figure 18",
        description="Hit rate vs semantic neighbours: LRU / History / Random",
    )
    def run_figure18(..., ctx=None) -> ExperimentResult: ...

The registry replaces the hand-maintained id table the CLI used to carry:
``repro experiment <name>`` and ``repro run-all`` both dispatch through
:func:`get`, and ``repro experiment --list`` renders the registry.

This module deliberately imports nothing from the rest of the package so
it can be loaded from anywhere (experiment modules import it while they
are themselves being imported by ``repro.experiments``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple


class UnknownExperimentError(KeyError):
    """Raised when an experiment name is not in the registry.

    The message carries the full list of valid names, so surfacing it
    verbatim (as the CLI does) is already a usable error.
    """

    def __init__(self, name: str, valid: List[str]) -> None:
        self.name = name
        self.valid = valid
        super().__init__(name)

    def __str__(self) -> str:
        return (
            f"unknown experiment {self.name!r}; choose from: "
            + ", ".join(self.valid)
        )


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: metadata plus the runner it dispatches to."""

    name: str
    runner: Callable
    artefact: str
    description: str
    default_scale: Optional[object] = None  # a Scale, or None = Scale.DEFAULT
    aliases: Tuple[str, ...] = field(default_factory=tuple)
    #: Experiments whose engines refuse compiled/vectorized input or that
    #: manage their own subprocesses cannot ride the sharded runner;
    #: ``repro run-all --workers N`` rejects them by name (exit code 2).
    sequential_only: bool = False

    @property
    def runner_name(self) -> str:
        return self.runner.__name__

    @property
    def scale_name(self) -> str:
        return getattr(self.default_scale, "value", "default")

    def run(self, ctx=None, **overrides):
        """Execute the runner through a :class:`RunContext`.

        Without an explicit context, one is built at the experiment's
        ``default_scale`` — the scale its headline numbers are quoted at.
        """
        if ctx is None:
            from repro.runtime.context import RunContext

            if self.default_scale is None:
                ctx = RunContext()
            else:
                ctx = RunContext(scale=self.default_scale)
        return self.runner(ctx=ctx, **overrides)


_REGISTRY: Dict[str, ExperimentSpec] = {}  # primary name -> spec
_ALIASES: Dict[str, str] = {}  # alias -> primary name


def experiment(
    name: str,
    *,
    artefact: str,
    description: str,
    default_scale: Optional[object] = None,
    aliases: Tuple[str, ...] = (),
    sequential_only: bool = False,
):
    """Register the decorated runner under ``name`` (see module docstring)."""

    def decorate(runner: Callable) -> Callable:
        register(
            ExperimentSpec(
                name=name,
                runner=runner,
                artefact=artefact,
                description=description,
                default_scale=default_scale,
                aliases=tuple(aliases),
                sequential_only=sequential_only,
            )
        )
        return runner

    return decorate


def register(spec: ExperimentSpec) -> None:
    """Add a spec to the registry; duplicate names/aliases are errors."""
    for candidate in (spec.name, *spec.aliases):
        if candidate in _REGISTRY or candidate in _ALIASES:
            raise ValueError(
                f"experiment name {candidate!r} registered twice "
                f"(second runner: {spec.runner_name})"
            )
    for registered in _REGISTRY.values():
        if registered.runner is spec.runner:
            raise ValueError(
                f"runner {spec.runner_name} registered twice "
                f"(as {registered.name!r} and {spec.name!r})"
            )
    _REGISTRY[spec.name] = spec
    for alias in spec.aliases:
        _ALIASES[alias] = spec.name


def get(name: str) -> ExperimentSpec:
    """Resolve a name or alias to its spec, or raise with the valid list."""
    primary = _ALIASES.get(name, name)
    spec = _REGISTRY.get(primary)
    if spec is None:
        raise UnknownExperimentError(name, names())
    return spec


def all_experiments() -> List[ExperimentSpec]:
    """Every registered spec (one per runner), in natural name order."""
    return sorted(_REGISTRY.values(), key=lambda s: _natural_key(s.name))


def names(include_aliases: bool = True) -> List[str]:
    """All dispatchable names, naturally ordered (``fig2`` before ``fig10``)."""
    candidates = list(_REGISTRY)
    if include_aliases:
        candidates += list(_ALIASES)
    return sorted(candidates, key=_natural_key)


def load_all() -> List[ExperimentSpec]:
    """Import every experiment module (running their decorators), then list.

    Registration happens at import time, so anything that wants the *full*
    registry — the CLI, the runner, completeness tests — calls this
    instead of assuming ``repro.experiments`` was already imported.
    """
    import repro.experiments  # noqa: F401  (imports register the specs)

    return all_experiments()


# Import-friendly aliases (``registry.get`` reads fine qualified; these
# read fine when imported into another namespace).
get_experiment = get
experiment_names = names


def _natural_key(name: str):
    return [
        int(part) if part.isdigit() else part
        for part in re.split(r"(\d+)", name)
    ]
