"""The manifest-driven experiment runner.

A :class:`Runner` executes registered experiments through a
:class:`~repro.runtime.context.RunContext` and writes one **run manifest**
per experiment into a results directory.  The manifest records everything
needed to trust (and skip) a reproduction:

Schema (``repro.manifest/1``) — a single JSON object:

- ``schema``      — the literal version string;
- ``experiment``  — the registry name (e.g. ``"fig18"``);
- ``artefact``    — the paper artefact it reproduces (``"Figure 18"``);
- ``config_hash`` — SHA-256 over the canonical run configuration
  (experiment, seed, scale, overrides); the skip key;
- ``seed`` / ``scale`` — run identity;
- ``wall_time_s`` — wall-clock duration of the run;
- ``metrics``     — the experiment's headline scalars
  (:attr:`ExperimentResult.metrics`);
- ``run_metrics`` — the full ``repro.metrics/2`` observability blob;
- ``metrics_file`` — optional: the standalone metrics JSON written next
  to this manifest (``Runner(write_metrics=True)``, the CLI's
  ``repro run-all --metrics-out``), for feeding ``repro metrics diff``
  without extracting the embedded blob;
- ``lineage`` — optional: checkpoint provenance for experiments that
  save/resume state mid-run (the chaos harness records kill days and
  resume counts here).

``Runner.run`` skips an experiment when its manifest already exists with a
matching ``config_hash`` (``force`` re-runs anyway), which is what makes
``repro run-all`` incremental: a second invocation over the same results
directory is a no-op, and changing the seed or scale invalidates exactly
the affected manifests.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.obs import Observer, RunMetrics, validate_metrics
from repro.runtime import registry
from repro.runtime.context import RunContext

MANIFEST_SCHEMA = "repro.manifest/1"


def config_hash(payload: Dict[str, object]) -> str:
    """SHA-256 over the canonical JSON form of a run configuration."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class RunManifest:
    """One experiment run's provenance record (see module docstring)."""

    experiment: str
    artefact: str
    config_hash: str
    seed: int
    scale: str
    wall_time_s: float
    metrics: Dict[str, float] = field(default_factory=dict)
    run_metrics: Dict[str, object] = field(default_factory=dict)
    metrics_file: Optional[str] = None
    #: Optional provenance of checkpoint-based runs: which checkpoints the
    #: experiment saved/resumed from (kill days, resume counts, ...).  Free
    #: JSON-object shape; absent for experiments that never checkpoint.
    lineage: Optional[Dict[str, object]] = None
    schema: str = MANIFEST_SCHEMA

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "schema": self.schema,
            "experiment": self.experiment,
            "artefact": self.artefact,
            "config_hash": self.config_hash,
            "seed": self.seed,
            "scale": self.scale,
            "wall_time_s": self.wall_time_s,
            "metrics": dict(self.metrics),
            "run_metrics": dict(self.run_metrics),
        }
        if self.metrics_file is not None:
            payload["metrics_file"] = self.metrics_file
        if self.lineage is not None:
            payload["lineage"] = dict(self.lineage)
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RunManifest":
        problems = validate_manifest(payload)
        if problems:
            raise ValueError(
                "invalid manifest payload: " + "; ".join(problems)
            )
        return cls(
            experiment=payload["experiment"],
            artefact=payload["artefact"],
            config_hash=payload["config_hash"],
            seed=int(payload["seed"]),
            scale=payload["scale"],
            wall_time_s=float(payload["wall_time_s"]),
            metrics={k: float(v) for k, v in payload["metrics"].items()},
            run_metrics=dict(payload["run_metrics"]),
            metrics_file=payload.get("metrics_file"),
            lineage=payload.get("lineage"),
            schema=payload["schema"],
        )

    def write(self, path) -> None:
        from repro.util.atomic import atomic_write_text

        atomic_write_text(path, self.to_json() + "\n")

    @classmethod
    def read(cls, path) -> "RunManifest":
        return cls.from_dict(
            json.loads(Path(path).read_text(encoding="utf-8"))
        )


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_manifest(payload: object) -> List[str]:
    """Check a parsed JSON payload against ``repro.manifest/1``.

    Returns human-readable problems; empty means valid.  The embedded
    ``run_metrics`` blob is validated against its own schema
    (``repro.metrics/2``, or legacy ``/1``) when non-empty.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"payload must be an object, got {type(payload).__name__}"]
    if payload.get("schema") != MANIFEST_SCHEMA:
        problems.append(
            f"schema must be {MANIFEST_SCHEMA!r}, got {payload.get('schema')!r}"
        )
    for key in ("experiment", "artefact", "config_hash", "scale"):
        if not isinstance(payload.get(key), str):
            problems.append(f"missing or non-string field {key!r}")
    if not _is_number(payload.get("seed")):
        problems.append("missing or non-numeric field 'seed'")
    if not _is_number(payload.get("wall_time_s")):
        problems.append("missing or non-numeric field 'wall_time_s'")
    metrics_file = payload.get("metrics_file")
    if metrics_file is not None and not isinstance(metrics_file, str):
        problems.append("'metrics_file' must be a string when present")
    lineage = payload.get("lineage")
    if lineage is not None and not isinstance(lineage, dict):
        problems.append("'lineage' must be an object when present")
    if not isinstance(payload.get("metrics"), dict):
        problems.append("missing or non-object section 'metrics'")
    else:
        for name, value in payload["metrics"].items():
            if not _is_number(value):
                problems.append(f"metrics[{name!r}] must be a number")
    blob = payload.get("run_metrics")
    if not isinstance(blob, dict):
        problems.append("missing or non-object section 'run_metrics'")
    elif blob:
        problems.extend(
            f"run_metrics: {p}" for p in validate_metrics(blob)
        )
    return problems


@dataclass
class RunOutcome:
    """What happened to one experiment in a batch."""

    name: str
    skipped: bool = False
    manifest: Optional[RunManifest] = None
    result: Optional[object] = None  # the ExperimentResult when executed
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


class Runner:
    """Executes registered experiments and maintains their manifests."""

    def __init__(
        self,
        ctx: Optional[RunContext] = None,
        results_dir="results",
        force: bool = False,
        write_metrics: bool = False,
        telemetry=None,
    ) -> None:
        self.ctx = ctx if ctx is not None else RunContext()
        self.results_dir = Path(results_dir)
        self.force = force
        #: When set, each executed experiment also writes its
        #: observability blob as ``<name>.metrics.json`` next to the
        #: manifest (which records the filename in ``metrics_file``).
        self.write_metrics = write_metrics
        #: Optional :class:`~repro.obs.telemetry.TelemetrySpec`: each
        #: executed experiment flight-records into the shared JSONL,
        #: ``source``-tagged with its name.
        self.telemetry = telemetry

    # ------------------------------------------------------------------
    # Paths and hashing

    def manifest_path(self, name: str) -> Path:
        return self.results_dir / f"{name}.manifest.json"

    def csv_path(self, name: str) -> Path:
        return self.results_dir / f"{name}.csv"

    def metrics_path(self, name: str) -> Path:
        return self.results_dir / f"{name}.metrics.json"

    def expected_hash(self, spec, overrides: Dict[str, object]) -> str:
        return config_hash(
            {
                "schema": MANIFEST_SCHEMA,
                "experiment": spec.name,
                "runner": spec.runner_name,
                "seed": self.ctx.seed,
                "scale": self.ctx.scale.value,
                "overrides": {k: repr(v) for k, v in sorted(overrides.items())},
            }
        )

    # ------------------------------------------------------------------
    # Execution

    def run(self, name: str, force: Optional[bool] = None, **overrides) -> RunOutcome:
        """Run one experiment (or skip it on a manifest hash match)."""
        spec = registry.get(name)
        force = self.force if force is None else force
        expected = self.expected_hash(spec, overrides)
        path = self.manifest_path(spec.name)
        if not force and path.exists():
            manifest = self._load_manifest(path)
            if manifest is not None and manifest.config_hash == expected:
                return RunOutcome(spec.name, skipped=True, manifest=manifest)

        # A fresh Observer per run keeps each manifest's metrics blob
        # self-contained; instrumentation is RNG-neutral, so outputs are
        # unchanged whether or not the ambient context observed anything.
        run_obs = Observer()
        run_ctx = self.ctx.derive(obs=run_obs)
        recorder = None
        if self.telemetry is not None:
            from repro.obs.telemetry import FlightRecorder

            recorder = FlightRecorder(
                self.telemetry.path,
                run_obs,
                interval_s=self.telemetry.interval_s,
                source=spec.name,
                run={
                    "experiment": spec.name,
                    "seed": self.ctx.seed,
                    "scale": self.ctx.scale.value,
                },
            ).start()
        outcome = "completed"
        start = time.perf_counter()
        try:
            with run_obs.span(f"experiment/{spec.name}"):
                result = spec.run(ctx=run_ctx, **overrides)
        except BaseException:
            outcome = "failed"
            raise
        finally:
            if recorder is not None:
                recorder.close(outcome)
        wall = time.perf_counter() - start
        report: RunMetrics = run_obs.report(
            run={
                "command": "run-all",
                "experiment": spec.name,
                "seed": run_ctx.seed,
                "scale": run_ctx.scale.value,
            }
        )
        self.results_dir.mkdir(parents=True, exist_ok=True)
        metrics_file = None
        if self.write_metrics:
            metrics_file = self.metrics_path(spec.name).name
            report.write(str(self.metrics_path(spec.name)))
        manifest = RunManifest(
            experiment=spec.name,
            artefact=spec.artefact,
            config_hash=expected,
            seed=run_ctx.seed,
            scale=run_ctx.scale.value,
            wall_time_s=wall,
            metrics=dict(getattr(result, "metrics", {}) or {}),
            run_metrics=report.to_dict(),
            metrics_file=metrics_file,
            lineage=getattr(result, "lineage", None),
        )
        manifest.write(path)
        if hasattr(result, "write_csv"):
            result.write_csv(self.csv_path(spec.name))
        return RunOutcome(spec.name, manifest=manifest, result=result)

    def run_all(
        self,
        names: Optional[List[str]] = None,
        force: Optional[bool] = None,
        on_outcome=None,
    ) -> List[RunOutcome]:
        """Run every registered experiment (or the ``names`` subset).

        A failing experiment is recorded as an errored outcome and the
        batch continues — one broken reproduction must not cost the other
        twenty-odd their manifests.  ``on_outcome`` (if given) is called
        after each experiment, for progress reporting.
        """
        if names is None:
            specs = registry.load_all()
            names = [spec.name for spec in specs]
        outcomes: List[RunOutcome] = []
        for name in names:
            try:
                outcome = self.run(name, force=force)
            except registry.UnknownExperimentError:
                raise
            except Exception as exc:  # noqa: BLE001 — batch isolation
                outcome = RunOutcome(name, error=f"{type(exc).__name__}: {exc}")
            outcomes.append(outcome)
            if on_outcome is not None:
                on_outcome(outcome)
        return outcomes

    @staticmethod
    def _load_manifest(path: Path) -> Optional[RunManifest]:
        """A manifest, or None when unreadable (corrupt files re-run)."""
        try:
            return RunManifest.read(path)
        except (OSError, ValueError, json.JSONDecodeError, KeyError):
            return None
