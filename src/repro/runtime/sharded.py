"""Sharded multi-process execution (the Scale.HUGE runtime).

One seeded run, many processes, identical bytes.  Three fan-outs live
here, all built on the same two invariants:

- **worker-count invariance** — every per-shard random stream is derived
  from the *run seed and stable entity ids*, never from the worker
  count or the scheduling order, so ``--workers 1`` and ``--workers 8``
  replay the exact same draws;
- **deterministic merge** — workers return position-tagged partial
  results and the coordinator folds them in the order the sequential
  engine would have produced them, so merged artefacts (traces, metrics,
  tables) are byte-identical to a single-process run.

The fan-outs:

``sharded_search``
    One worker per list size.  The coordinator compiles the trace once,
    exports its columns through :mod:`repro.trace.shm` (zero copies,
    pickle-cheap handle), and each worker attaches and runs its own
    seeded :class:`~repro.core.search.SearchSimulator` — each sequential
    run already re-seeds ``RngStream(seed, "search")``, so per-run
    isolation is free.

``sharded_crawl``
    Client-sharded crawling.  Every worker rebuilds the same network
    (build and churn draw from seed-derived streams), runs the same
    nickname sweeps, and computes the same global browse shuffle; it
    then *delivers* only the browses of its shard
    (``client_id % num_shards == shard``), spooling position-tagged
    browse records to disk, one pickle frame per day.  The coordinator
    merge-sorts the frames by window position and replays them into a
    fresh :class:`~repro.trace.model.Trace` — the same insertion order
    as the sequential crawler for any worker count.

``run_experiments_parallel``
    One worker per experiment for ``repro run-all``.  Each worker runs
    :meth:`Runner.run` in its own process (manifests and CSVs are
    per-experiment files, so there is no write contention) and returns
    the outcome minus the in-memory result object.

Budget-accounting caveat: the crawl shard split is only exact when every
browse costs one budget unit, i.e. with retries disabled — a retried
browse consumes budget that later shards would have seen.  The CLI
rejects ``--workers`` together with retries or fault flags for exactly
this reason.
"""

from __future__ import annotations

import concurrent.futures
import os
import pickle
import tempfile
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.edonkey.crawler import Crawler, CrawlerConfig, CrawlStats
from repro.edonkey.messages import BrowseRequest
from repro.obs import NULL_OBSERVER, Observer, TraceRecorder
from repro.obs.telemetry import TelemetrySpec
from repro.trace.model import ClientMeta, FileMeta, Trace

__all__ = [
    "ShardedCrawlResult",
    "ShardedRunner",
    "run_experiments_parallel",
    "sharded_crawl",
    "sharded_search",
]


def _pool(workers: int) -> concurrent.futures.ProcessPoolExecutor:
    return concurrent.futures.ProcessPoolExecutor(max_workers=workers)


class ShardedRunner:
    """The multi-process runtime, bound to a worker count and observer.

    A thin facade over the three fan-outs below; shard assignment is
    ``client_id % workers`` — derived from stable client ids, never from
    scheduling, which is what makes results worker-count-invariant.
    """

    def __init__(
        self,
        workers: int,
        obs=NULL_OBSERVER,
        telemetry: Optional[TelemetrySpec] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.obs = obs
        self.telemetry = telemetry

    def shard_of(self, client_id: int) -> int:
        return client_id % self.workers

    def search(self, static, configs, span_names=None):
        return sharded_search(
            static,
            configs,
            workers=self.workers,
            obs=self.obs,
            span_names=span_names,
            telemetry=self.telemetry,
        )

    def crawl(
        self,
        network_config,
        crawler_config,
        seed: int,
        days: Optional[int] = None,
        store_dir: Optional[str] = None,
        stream: bool = False,
    ) -> "ShardedCrawlResult":
        return sharded_crawl(
            network_config,
            crawler_config,
            seed,
            workers=self.workers,
            obs=self.obs,
            days=days,
            store_dir=store_dir,
            stream=stream,
            telemetry=self.telemetry,
        )

    def run_experiments(
        self,
        names: List[str],
        seed: int,
        scale,
        results_dir: str,
        force: bool = False,
        write_metrics: bool = False,
        on_outcome=None,
    ):
        return run_experiments_parallel(
            names,
            seed,
            scale,
            results_dir,
            workers=self.workers,
            force=force,
            write_metrics=write_metrics,
            on_outcome=on_outcome,
            telemetry=self.telemetry,
        )


# ----------------------------------------------------------------------
# Sharded search


def _search_worker(
    handle,
    config,
    span_name: str,
    want_obs: bool,
    index: int,
    want_trace: bool = False,
    telemetry: Optional[TelemetrySpec] = None,
):
    """Attach the shared columns and run one seeded simulation."""
    from repro.core.search import SearchSimulator
    from repro.obs.log import set_context
    from repro.obs.telemetry import FlightRecorder

    source = f"shard {index}"
    set_context(source)
    tracer = (
        TraceRecorder(pid=index + 2, process_name=source)
        if (want_obs and want_trace)
        else None
    )
    obs = Observer(tracer=tracer) if want_obs else NULL_OBSERVER
    recorder = None
    if telemetry is not None and want_obs:
        recorder = FlightRecorder(
            telemetry.path,
            obs,
            interval_s=telemetry.interval_s,
            source=source,
        ).start()
    outcome = "completed"
    try:
        with handle.attach() as compiled:
            with obs.span(span_name):
                result = SearchSimulator(compiled, config, obs=obs).run()
    except BaseException:
        outcome = "failed"
        raise
    finally:
        if recorder is not None:
            recorder.close(outcome)
    return result, (obs if want_obs else None)


def sharded_search(
    static,
    configs: Sequence[object],
    workers: int,
    obs=NULL_OBSERVER,
    span_names: Optional[Sequence[str]] = None,
    telemetry: Optional[TelemetrySpec] = None,
):
    """Run one :class:`SearchConfig` per worker over shared trace columns.

    Returns the :class:`SimulationResult` list in ``configs`` order.
    Worker observers are folded back into ``obs`` in that same order, so
    counters, histograms and last-write gauges match a sequential loop
    exactly (span timings differ — they measure different processes).
    If ``obs`` carries a tracer, each worker records its own ring and
    the merge lays them out as per-worker process tracks; with a
    ``telemetry`` spec each worker flight-records into the shared JSONL.
    """
    from repro.trace.shm import export_compiled

    if span_names is None:
        span_names = [f"search[{i}]" for i in range(len(configs))]
    want_trace = obs.tracer is not None
    compiled = static.compiled() if not hasattr(static, "cache_offsets") else static
    export = export_compiled(compiled)
    try:
        with _pool(workers) as pool:
            futures = [
                pool.submit(
                    _search_worker,
                    export.handle,
                    config,
                    name,
                    obs.enabled,
                    index,
                    want_trace,
                    telemetry,
                )
                for index, (config, name) in enumerate(
                    zip(configs, span_names)
                )
            ]
            pairs = [future.result() for future in futures]
    finally:
        export.close()
    results = []
    for result, worker_obs in pairs:
        results.append(result)
        if worker_obs is not None:
            obs.merge_from(worker_obs)
    return results


# ----------------------------------------------------------------------
# Sharded crawl


class _ShardCrawler(Crawler):
    """A crawler that browses only its shard of the global budget window.

    The global shuffle and the budget window are computed exactly as the
    sequential crawler would (same RNG stream, same draws); delivery is
    then restricted to ``client_id % num_shards == shard``.  Successful
    browses are spooled as position-tagged records — one pickle frame
    per day, so worker memory stays bounded by a day.
    """

    def __init__(
        self, *args, shard: int, num_shards: int, spool_path: str, **kwargs
    ) -> None:
        super().__init__(*args, **kwargs)
        self.shard = shard
        self.num_shards = num_shards
        self._spool_path = spool_path
        self._spool = None
        # Worker-local first-occurrence tracking.  A client belongs to
        # exactly one shard, so its globally-first successful browse is
        # also this worker's first — metadata travels exactly once.
        self._sent_clients: set = set()
        self._sent_files: set = set()

    def browse_all(self, trace: Trace, day: int, budget: int) -> int:
        if self._spool is None:
            self._spool = open(self._spool_path, "wb")
        # The identical global shuffle (same stream, same draw), then the
        # exact sequential budget window: with retries disabled every
        # client in order costs one unit, so the window is order[:budget].
        order = self.rng.shuffled(sorted(self.reachable_users))
        window = order[:budget]
        records = []
        successes = 0
        for position, client_id in enumerate(window):
            if client_id % self.num_shards != self.shard:
                continue
            self.stats.browse_attempts += 1
            reply = self.network.to_client(
                client_id, BrowseRequest(requester_id=-1)
            )
            if reply is None or not reply.allowed:
                self.stats.browse_refused += 1
                continue
            meta = None
            if client_id not in self._sent_clients:
                self._sent_clients.add(client_id)
                profile = self._profiles_by_id[client_id].meta
                meta = (
                    profile.uid,
                    profile.ip,
                    profile.country,
                    profile.asn,
                    profile.nickname,
                )
            file_ids = []
            new_files: Dict[str, Tuple[int, str, str]] = {}
            for desc in reply.files:
                file_ids.append(desc.file_id)
                if desc.file_id not in self._sent_files:
                    self._sent_files.add(desc.file_id)
                    new_files[desc.file_id] = (desc.size, desc.kind, desc.name)
            records.append((position, client_id, meta, file_ids, new_files))
            successes += 1
            self.stats.browse_succeeded += 1
        pickle.dump(
            (day, records), self._spool, protocol=pickle.HIGHEST_PROTOCOL
        )
        return successes

    def close_spool(self) -> None:
        if self._spool is not None:
            self._spool.close()
            self._spool = None


def _crawl_worker(
    network_config,
    crawler_config,
    seed: int,
    days: Optional[int],
    shard: int,
    num_shards: int,
    spool_path: str,
    want_obs: bool,
    want_trace: bool = False,
    telemetry: Optional[TelemetrySpec] = None,
):
    """Run one shard's crawl.

    Returns ``(stats, observer, tracer, resource_gauges)``: the observer
    only from shard 0 (every shard replays the same discovery work, so
    merging all of them would double-count), the tracer and resource
    gauges from *every* shard when tracing/telemetry is on — span events
    and RSS/CPU peaks are genuinely per-process and the coordinator
    attributes them to their shard.
    """
    from repro.edonkey.network import build_network
    from repro.obs.log import set_context
    from repro.obs.telemetry import FlightRecorder

    source = f"shard {shard}"
    set_context(source)
    is_primary = shard == 0
    # Non-primary shards only need a live observer when something reads
    # it (a tracer track or a flight recorder); otherwise keep the old
    # near-free NULL_OBSERVER path.
    need_obs = want_obs and (
        is_primary or want_trace or telemetry is not None
    )
    tracer = (
        TraceRecorder(pid=shard + 2, process_name=source)
        if (want_obs and want_trace)
        else None
    )
    obs = Observer(tracer=tracer) if need_obs else NULL_OBSERVER
    recorder = None
    if telemetry is not None and want_obs:
        recorder = FlightRecorder(
            telemetry.path,
            obs,
            interval_s=telemetry.interval_s,
            source=source,
        ).start()
    outcome = "completed"
    try:
        network = build_network(network_config, seed=seed, obs=obs)
        crawler = _ShardCrawler(
            network,
            crawler_config,
            seed=seed,
            obs=obs,
            shard=shard,
            num_shards=num_shards,
            spool_path=spool_path,
        )
        try:
            crawler.crawl(days=days)
        finally:
            crawler.close_spool()
    except BaseException:
        outcome = "failed"
        raise
    finally:
        if recorder is not None:
            recorder.close(outcome)
    resource_gauges = {
        name: value
        for name, value in obs.gauges.items()
        if name.startswith("resource/")
    }
    return (
        crawler.stats,
        (obs if (want_obs and is_primary) else None),
        (tracer if (tracer is not None and not is_primary) else None),
        resource_gauges,
    )


@dataclass
class ShardedCrawlResult:
    """What a sharded crawl hands back to the CLI."""

    trace: Trace
    stats: CrawlStats
    days_appended: int = 0


def sharded_crawl(
    network_config,
    crawler_config: CrawlerConfig,
    seed: int,
    workers: int,
    obs=NULL_OBSERVER,
    days: Optional[int] = None,
    store_dir: Optional[str] = None,
    stream: bool = False,
    telemetry: Optional[TelemetrySpec] = None,
) -> ShardedCrawlResult:
    """Crawl with ``workers`` client shards; byte-identical merged trace.

    Every worker rebuilds the same network and runs the same discovery
    sweeps (cheap relative to browsing, and required: churn draws from
    per-day-per-client streams each worker must replay); browses are
    split by ``client_id % workers``.  The coordinator replays the
    spooled records in global window order — the trace's client, file
    and snapshot insertion order is exactly the sequential crawler's.

    With ``store_dir`` each merged day is appended to the on-disk store;
    ``stream`` additionally drops it from the in-memory trace afterwards
    (the bounded-RSS Scale.HUGE path).
    """
    if crawler_config.retry is not None:
        raise ValueError(
            "sharded_crawl requires retries disabled: a retried browse "
            "consumes budget other shards would have seen, so the shard "
            "split no longer reproduces the sequential budget window"
        )
    if stream and store_dir is None:
        raise ValueError("stream=True requires a store_dir sink")
    total_days = days if days is not None else crawler_config.days
    spool_dir = tempfile.mkdtemp(prefix="repro_crawl_shards_")
    spool_paths = [
        os.path.join(spool_dir, f"shard-{shard}.spool")
        for shard in range(workers)
    ]
    want_trace = obs.tracer is not None
    try:
        with _pool(workers) as pool:
            futures = [
                pool.submit(
                    _crawl_worker,
                    network_config,
                    crawler_config,
                    seed,
                    days,
                    shard,
                    workers,
                    spool_paths[shard],
                    obs.enabled,
                    want_trace,
                    telemetry,
                )
                for shard in range(workers)
            ]
            outcomes = [future.result() for future in futures]
        shard_stats = [stats for stats, _obs, _tracer, _gauges in outcomes]
        worker0_obs = outcomes[0][1]
        merged = _merge_crawl(
            spool_paths,
            shard_stats,
            total_days,
            store_dir=store_dir,
            stream=stream,
        )
        if obs.enabled and worker0_obs is not None:
            _fold_crawl_metrics(obs, worker0_obs, shard_stats[0], merged.stats)
        if obs.enabled:
            for _stats, _wobs, worker_tracer, gauges in outcomes:
                if worker_tracer is not None and obs.tracer is not None:
                    obs.tracer.merge_from(worker_tracer)
                for name, value in gauges.items():
                    obs.gauge(name, value)
        return merged
    finally:
        for path in spool_paths:
            try:
                os.unlink(path)
            except OSError:
                pass
        try:
            os.rmdir(spool_dir)
        except OSError:
            pass


def _merge_crawl(
    spool_paths: List[str],
    shard_stats: List[CrawlStats],
    total_days: int,
    store_dir: Optional[str],
    stream: bool,
) -> ShardedCrawlResult:
    """Replay spooled browse records into one trace, day by day."""
    trace = Trace()
    days_appended = 0
    spools = [open(path, "rb") for path in spool_paths]
    try:
        for _ in range(total_days):
            day = None
            day_records = []
            for spool in spools:
                frame_day, records = pickle.load(spool)
                if day is None:
                    day = frame_day
                elif frame_day != day:
                    raise RuntimeError(
                        f"shard day skew: {frame_day} != {day} "
                        "(workers replayed different networks)"
                    )
                day_records.extend(records)
            day_records.sort(key=lambda record: record[0])
            for _pos, client_id, meta, file_ids, new_files in day_records:
                if client_id not in trace.clients:
                    uid, ip, country, asn, nickname = meta
                    trace.add_client(
                        ClientMeta(
                            client_id=client_id,
                            uid=uid,
                            ip=ip,
                            country=country,
                            asn=asn,
                            nickname=nickname,
                        )
                    )
                for file_id in file_ids:
                    if file_id not in trace.files:
                        size, kind, name = new_files[file_id]
                        trace.add_file(
                            FileMeta(
                                file_id=file_id, size=size, kind=kind, name=name
                            )
                        )
                trace.observe(day, client_id, file_ids)
            if store_dir is not None:
                _append_store_day(store_dir, trace, day)
                days_appended += 1
                if stream:
                    trace.drop_day(day)
    finally:
        for spool in spools:
            spool.close()
    stats = _merge_stats(shard_stats)
    return ShardedCrawlResult(
        trace=trace, stats=stats, days_appended=days_appended
    )


def _append_store_day(store_dir: str, trace: Trace, day: int) -> None:
    from repro.trace.store import TraceStoreWriter

    with TraceStoreWriter.open(store_dir, create=True) as writer:
        writer.append_day(
            day,
            trace.snapshots_on(day),
            files=trace.files,
            clients=trace.clients,
        )


def _merge_stats(shard_stats: List[CrawlStats]) -> CrawlStats:
    """Fold per-shard stats into the sequential crawler's totals.

    Browse counters partition across shards and are summed; discovery
    counters (sweeps, users, firewalled skips) are replicated work —
    identical in every worker — so shard 0's values already are the
    sequential numbers.
    """
    first = shard_stats[0]
    return replace(
        first,
        browse_attempts=sum(s.browse_attempts for s in shard_stats),
        browse_refused=sum(s.browse_refused for s in shard_stats),
        browse_succeeded=sum(s.browse_succeeded for s in shard_stats),
    )


def _fold_crawl_metrics(
    obs,
    worker0_obs,
    worker0_stats: CrawlStats,
    merged_stats: CrawlStats,
) -> None:
    """Merge shard 0's observer, then correct the shard-local counters.

    Shard 0's metrics export is complete except where counts depend on
    *which* browses it delivered: the per-attempt message/hop counters
    and the ``crawler/browse_*`` counters.  Those are topped up with the
    other shards' share so the merged counters equal a sequential run's.
    """
    obs.merge_from(worker0_obs)
    attempt_delta = merged_stats.browse_attempts - worker0_stats.browse_attempts
    for counter in ("network/client_hops", "network/messages/BrowseRequest"):
        if counter in obs.counters:
            obs.counters[counter] += attempt_delta
    for field_name in ("browse_attempts", "browse_refused", "browse_succeeded"):
        counter = f"crawler/{field_name}"
        delta = getattr(merged_stats, field_name) - getattr(
            worker0_stats, field_name
        )
        if counter in obs.counters:
            obs.counters[counter] += delta
    obs.gauge(
        "crawler/browse_success_rate", merged_stats.browse_success_rate
    )


# ----------------------------------------------------------------------
# Parallel run-all


def _run_all_worker(
    seed: int,
    scale_value: str,
    results_dir: str,
    force: bool,
    write_metrics: bool,
    name: str,
    telemetry: Optional[TelemetrySpec] = None,
):
    """Run one experiment in its own process; return a slim outcome."""
    from repro.obs.log import set_context
    from repro.runtime import RunContext, Runner, Scale
    from repro.runtime.registry import load_all
    from repro.runtime.runner import RunOutcome

    set_context(name)
    load_all()
    runner = Runner(
        ctx=RunContext(seed=seed, scale=Scale(scale_value)),
        results_dir=results_dir,
        force=force,
        write_metrics=write_metrics,
        telemetry=telemetry,
    )
    try:
        outcome = runner.run(name)
    except Exception as exc:  # noqa: BLE001 — batch isolation, as run_all
        return RunOutcome(name, error=f"{type(exc).__name__}: {exc}")
    # The ExperimentResult can hold arbitrary (possibly unpicklable)
    # payloads and the parent only renders status lines — drop it.
    outcome.result = None
    return outcome


def run_experiments_parallel(
    names: List[str],
    seed: int,
    scale,
    results_dir: str,
    workers: int,
    force: bool = False,
    write_metrics: bool = False,
    on_outcome=None,
    telemetry: Optional[TelemetrySpec] = None,
):
    """``Runner.run`` fan-out: one experiment per worker process.

    Outcomes are reported (and returned) in ``names`` order regardless
    of completion order, so progress output stays deterministic.
    """
    outcomes = []
    with _pool(workers) as pool:
        futures = [
            pool.submit(
                _run_all_worker,
                seed,
                scale.value,
                results_dir,
                force,
                write_metrics,
                name,
                telemetry,
            )
            for name in names
        ]
        for future in futures:
            outcome = future.result()
            outcomes.append(outcome)
            if on_outcome is not None:
                on_outcome(outcome)
    return outcomes
