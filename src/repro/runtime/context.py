"""The run context: one value owning a run's cross-cutting concerns.

Before this layer existed, every experiment and CLI command hand-wired the
same plumbing: a root seed, an :class:`~repro.obs.Observer`, a
:class:`~repro.faults.FaultConfig` and the shared workload cache.  A
:class:`RunContext` bundles all of them, so a component needs exactly one
parameter to participate in a reproducible, observable, fault-injectable
run — and the :class:`~repro.runtime.runner.Runner` can execute any
registered experiment through it.

Ownership rules (see DESIGN.md §9):

- the context *owns identity* (seed, scale) — components derive their RNG
  streams from ``ctx.rng(label)`` and never reseed;
- the context *carries* the observer and fault config but does not mutate
  them; instrumentation stays RNG-neutral;
- the trace cache defaults to the process-wide shared one
  (:data:`~repro.runtime.cache.SHARED_TRACE_CACHE`); pass a private
  :class:`~repro.runtime.cache.TraceCache` for isolation.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional

from repro.faults import FaultConfig
from repro.obs import NULL_OBSERVER, Observer
from repro.runtime.cache import SHARED_TRACE_CACHE, TraceCache
from repro.runtime.scale import DEFAULT_SEED, Scale, workload_config
from repro.util.rng import RngStream


def _shared_cache() -> TraceCache:
    return SHARED_TRACE_CACHE


@dataclass
class RunContext:
    """Seed, scale, observer, fault model and trace cache for one run."""

    seed: int = DEFAULT_SEED
    scale: Scale = Scale.DEFAULT
    obs: Observer = NULL_OBSERVER
    faults: FaultConfig = field(default_factory=FaultConfig)
    traces: TraceCache = field(default_factory=_shared_cache)

    # ------------------------------------------------------------------
    # Construction helpers

    @classmethod
    def ensure(
        cls,
        ctx: Optional["RunContext"],
        *,
        seed: Optional[int] = None,
        scale: Optional[Scale] = None,
        obs: Optional[Observer] = None,
        faults: Optional[FaultConfig] = None,
    ) -> "RunContext":
        """``ctx`` if given, else a context built from the loose parameters.

        This is the back-compat shim pattern used by every public
        ``run_*`` signature: an explicit context wins outright; otherwise
        the legacy ``seed``/``scale``/``obs`` arguments are promoted into
        a fresh one.
        """
        if ctx is not None:
            return ctx
        kwargs = {}
        if seed is not None:
            kwargs["seed"] = seed
        if scale is not None:
            kwargs["scale"] = scale
        if obs is not None:
            kwargs["obs"] = obs
        if faults is not None:
            kwargs["faults"] = faults
        return cls(**kwargs)

    def derive(self, **changes) -> "RunContext":
        """A copy with ``changes`` applied (seed, scale, obs, ...)."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    # Randomness

    def rng(self, label: str) -> RngStream:
        """A deterministic named substream of this run's root seed."""
        return RngStream(self.seed, label)

    # ------------------------------------------------------------------
    # Workload / trace access (delegates to the bounded cache)

    def workload(self):
        """The workload preset at this context's scale."""
        return workload_config(self.scale)

    def temporal_trace(self):
        return self.traces.temporal(self.scale, self.seed)

    def filtered_trace(self):
        return self.traces.filtered(self.scale, self.seed)

    def extrapolated_trace(self):
        return self.traces.extrapolated(self.scale, self.seed)

    def static_trace(self):
        return self.traces.static(self.scale, self.seed)

    def compiled_trace(self):
        """The compiled (interned, columnar) form of the static trace."""
        return self.traces.compiled(self.scale, self.seed)

    # ------------------------------------------------------------------
    # Component factories

    def build_network(self, config=None):
        """A simulated network seeded/observed/faulted by this context.

        The context's fault config applies unless the network config
        already carries an enabled one of its own (an experiment sweeping
        fault intensities overrides the ambient model).
        """
        from repro.edonkey.network import build_network

        return build_network(config, ctx=self)

    def crawler(self, network, config=None):
        """A crawler over ``network`` seeded/observed by this context."""
        from repro.edonkey.crawler import Crawler

        return Crawler(network, config, ctx=self)

    def simulate_search(self, trace, config=None):
        """Run the semantic-search simulation under this context."""
        from repro.core.search import simulate_search

        return simulate_search(trace, config, ctx=self)
