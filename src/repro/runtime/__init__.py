"""The unified runtime layer: context, registry, manifest-driven runner.

This package owns the cross-cutting run plumbing that every experiment,
benchmark and CLI command used to hand-wire:

- :mod:`repro.runtime.scale`    — :class:`Scale` presets (tiny → large)
  and the default seed;
- :mod:`repro.runtime.cache`    — the bounded, (scale, seed)-keyed
  :class:`TraceCache` shared across a process;
- :mod:`repro.runtime.registry` — the declarative experiment registry
  populated by the :func:`experiment` decorator;
- :mod:`repro.runtime.context`  — :class:`RunContext`, bundling seed,
  scale, observer, fault config and the trace cache;
- :mod:`repro.runtime.runner`   — :class:`Runner`, which executes any
  registered experiment through a context and maintains per-experiment
  run manifests (``repro.manifest/1``) with skip-on-hash-match caching.

Import order in this file matters: ``registry`` is imported first because
experiment modules import it mid-way through ``repro.experiments``'s own
import (the decorator must already exist).
"""

from repro.runtime.registry import (
    ExperimentSpec,
    UnknownExperimentError,
    all_experiments,
    experiment,
    experiment_names,
    get_experiment,
    load_all,
)
from repro.runtime.scale import DEFAULT_SEED, Scale, workload_config
from repro.runtime.cache import SHARED_TRACE_CACHE, TraceCache
from repro.runtime.context import RunContext
from repro.runtime.runner import (
    MANIFEST_SCHEMA,
    RunManifest,
    RunOutcome,
    Runner,
    validate_manifest,
)

def __getattr__(name: str):
    # ``ShardedRunner`` lives behind a lazy import: repro.runtime is on
    # the CLI-help path and must not pull the crawler/network stack (or
    # transitively numpy) until a sharded run is actually requested.
    if name in ("ShardedRunner", "sharded_crawl", "sharded_search"):
        from repro.runtime import sharded

        return getattr(sharded, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "DEFAULT_SEED",
    "ExperimentSpec",
    "ShardedRunner",
    "MANIFEST_SCHEMA",
    "RunContext",
    "RunManifest",
    "RunOutcome",
    "Runner",
    "SHARED_TRACE_CACHE",
    "Scale",
    "TraceCache",
    "UnknownExperimentError",
    "all_experiments",
    "experiment",
    "experiment_names",
    "get_experiment",
    "load_all",
    "validate_manifest",
    "workload_config",
]
