"""Two-tier overlay co-simulation and search evaluation.

Runs Cyclon + Vicinity over the sharers of a static trace, tracks
convergence round by round, and evaluates the resulting semantic views as
search neighbour lists — the proactive counterpart of Section 5's
reactive LRU lists, enabling a head-to-head comparison between "learn
your neighbours from your uploads" and "gossip your way to them".

Search evaluation mirrors Section 5.1: each peer queries its semantic
view for every file in its cache; the query hits if some view member
(other than itself) shares the file.  Because views are built from the
same static caches the queries come from, this measures exactly what
[31] measures: how well the converged semantic overlay covers each
peer's interests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.overlay.cyclon import Cyclon, CyclonConfig
from repro.overlay.vicinity import Vicinity, VicinityConfig
from repro.trace.model import ClientId, StaticTrace
from repro.util.cdf import Series
from repro.util.validation import check_positive


@dataclass
class OverlayConfig:
    """Co-simulation parameters."""

    rounds: int = 30
    cyclon: CyclonConfig = field(default_factory=CyclonConfig)
    vicinity: VicinityConfig = field(default_factory=VicinityConfig)
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("rounds", self.rounds)


@dataclass
class OverlayResult:
    """Outcome of an overlay run."""

    rounds: int
    hit_rate_by_round: Series
    quality_by_round: Series
    final_hit_rate: float
    final_quality: float
    connected: bool

    def summary(self) -> str:
        return (
            f"rounds={self.rounds} "
            f"hit_rate={100 * self.final_hit_rate:.1f}% "
            f"knn_quality={100 * self.final_quality:.1f}% "
            f"connected={self.connected}"
        )


class SemanticOverlaySimulator:
    """Builds and evaluates the epidemic semantic overlay.

    ``use_compiled`` (the default) runs the proximity computations and
    the search evaluation on the trace's compiled form (interned int
    sets); ``use_compiled=False`` keeps the original string sets.  Views,
    metrics and RNG draws are identical either way.
    """

    def __init__(
        self,
        trace: StaticTrace,
        config: Optional[OverlayConfig] = None,
        use_compiled: bool = True,
    ) -> None:
        self.trace = trace
        self.config = config or OverlayConfig()
        self._compiled = trace.compiled() if use_compiled else None
        sharers = [c for c, cache in trace.caches.items() if cache]
        if len(sharers) < 2:
            raise ValueError("need at least 2 sharers to build an overlay")
        self.sharers: List[ClientId] = sorted(sharers)
        self.cyclon = Cyclon(
            self.sharers, config=self.config.cyclon, seed=self.config.seed
        )
        self.vicinity = Vicinity(
            {c: trace.caches[c] for c in self.sharers},
            self.cyclon,
            config=self.config.vicinity,
            seed=self.config.seed,
            use_compiled=use_compiled,
        )
        self._ideal: Optional[Dict[ClientId, List[ClientId]]] = None

    # ------------------------------------------------------------------

    def semantic_hit_rate(self) -> float:
        """Fraction of (peer, cached file) queries answerable by the
        peer's current semantic view."""
        compiled = self._compiled
        if compiled is not None:
            row = compiled.client_row
            sets = compiled.cache_sets
            caches = {peer: sets[row[peer]] for peer in self.sharers}
        else:
            caches = self.trace.caches
        hits = 0
        total = 0
        for peer in self.sharers:
            view = self.vicinity.view_of(peer)
            view_caches = [caches[v] for v in view]
            for fid in caches[peer]:
                total += 1
                if any(fid in other for other in view_caches):
                    hits += 1
        return hits / total if total else 0.0

    def knn_quality(self) -> float:
        if self._ideal is None:
            self._ideal = self.vicinity.ideal_views()
        return self.vicinity.view_quality(self._ideal)

    # ------------------------------------------------------------------

    def run(self, measure_every: int = 1) -> OverlayResult:
        """Run the configured number of rounds, sampling metrics."""
        hit_series = Series(name="semantic view hit rate (%)")
        quality_series = Series(name="k-NN quality (%)")
        hit_series.append(0, 100.0 * self.semantic_hit_rate())
        quality_series.append(0, 100.0 * self.knn_quality())
        for round_index in range(1, self.config.rounds + 1):
            self.vicinity.round()
            if round_index % measure_every == 0 or round_index == self.config.rounds:
                hit_series.append(round_index, 100.0 * self.semantic_hit_rate())
                quality_series.append(round_index, 100.0 * self.knn_quality())
        return OverlayResult(
            rounds=self.config.rounds,
            hit_rate_by_round=hit_series,
            quality_by_round=quality_series,
            final_hit_rate=hit_series.ys[-1] / 100.0,
            final_quality=quality_series.ys[-1] / 100.0,
            connected=self.cyclon.is_connected(),
        )
