"""Epidemic (gossip-based) semantic overlay — the deployment path.

The paper evaluates semantic neighbour lists built *reactively* (from
observed uploads, Section 5).  Its related-work section points to the
proactive alternative it inspired: a two-tier epidemic architecture
(Voulgaris & van Steen, Euro-Par 2005) where a bottom peer-sampling
protocol keeps the unstructured overlay connected and a top protocol
gossips peers into *semantic views* — exactly the "server-less file
sharing system" the title argues for.  That work was evaluated on the
authors' earlier eDonkey trace, so it belongs in this reproduction as the
natural extension:

- :mod:`repro.overlay.cyclon` — the Cyclon peer-sampling (shuffle)
  protocol: bounded views of (peer, age) entries, oldest-peer exchanges;
- :mod:`repro.overlay.vicinity` — the Vicinity semantic-clustering
  protocol: each peer gossips candidate sets and keeps the ``k`` peers
  whose caches overlap its own the most;
- :mod:`repro.overlay.simulator` — round-based co-simulation of the two
  tiers over a static trace, with per-round semantic-view quality and a
  search-evaluation hook comparable to the Section 5 simulator.
"""

from repro.overlay.cyclon import Cyclon, CyclonConfig
from repro.overlay.simulator import (
    OverlayConfig,
    OverlayResult,
    SemanticOverlaySimulator,
)
from repro.overlay.vicinity import Vicinity, VicinityConfig, cache_proximity

__all__ = [
    "Cyclon",
    "CyclonConfig",
    "OverlayConfig",
    "OverlayResult",
    "SemanticOverlaySimulator",
    "Vicinity",
    "VicinityConfig",
    "cache_proximity",
]
