"""Cyclon: gossip-based peer sampling.

Cyclon keeps, at every node, a small *view* of ``(peer, age)`` entries and
periodically *shuffles* with the oldest peer in the view: both sides
exchange a random subset of their entries and adopt the received ones,
evicting what they sent.  The emergent overlay is a random-graph-like
topology with bounded degree, self-healing under churn — the bottom tier
on which Vicinity's semantic clustering rides.

This is a faithful round-based implementation of the protocol as used by
the epidemic semantic-overlay literature:

- ages increase by one every round; the shuffle target is the oldest
  entry (bounding how stale knowledge can get);
- the initiator always includes a fresh entry for itself in the subset it
  sends (this is how newcomers get absorbed);
- duplicate and self entries are dropped on merge; if the merged view
  overflows, received entries take precedence over the ones that were
  sent away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.trace.model import ClientId
from repro.util.rng import RngStream
from repro.util.validation import check_positive


@dataclass
class ViewEntry:
    """One view slot: a peer descriptor plus its gossip age."""

    peer: ClientId
    age: int = 0


@dataclass
class CyclonConfig:
    """View size and shuffle length (how many entries are exchanged)."""

    view_size: int = 20
    shuffle_length: int = 8

    def __post_init__(self) -> None:
        check_positive("view_size", self.view_size)
        check_positive("shuffle_length", self.shuffle_length)
        if self.shuffle_length > self.view_size:
            raise ValueError("shuffle_length cannot exceed view_size")


class Cyclon:
    """Round-based Cyclon simulation over a fixed peer population."""

    def __init__(
        self,
        peers: Sequence[ClientId],
        config: Optional[CyclonConfig] = None,
        seed: int = 0,
    ) -> None:
        if len(peers) < 2:
            raise ValueError("cyclon needs at least 2 peers")
        self.config = config or CyclonConfig()
        self.rng = RngStream(seed, "cyclon")
        self.peers: List[ClientId] = sorted(peers)
        self.views: Dict[ClientId, List[ViewEntry]] = {}
        self.rounds_run = 0
        self._bootstrap()

    def _bootstrap(self) -> None:
        """Initialize each view with random peers (a tracker-style seed)."""
        for peer in self.peers:
            candidates = [p for p in self.peers if p != peer]
            sample = self.rng.sample_without_replacement(
                candidates, min(self.config.view_size, len(candidates))
            )
            self.views[peer] = [ViewEntry(p, age=0) for p in sample]

    # ------------------------------------------------------------------

    def view_of(self, peer: ClientId) -> List[ClientId]:
        return [entry.peer for entry in self.views[peer]]

    def neighbours(self, peer: ClientId) -> List[ClientId]:
        """Alias for :meth:`view_of` (the peer-sampling service)."""
        return self.view_of(peer)

    def random_peer(self, peer: ClientId, rng: Optional[RngStream] = None) -> Optional[ClientId]:
        """A uniform pick from the peer's current view."""
        view = self.views[peer]
        if not view:
            return None
        chooser = rng or self.rng
        return view[chooser.py.randrange(len(view))].peer

    # ------------------------------------------------------------------

    def _oldest_index(self, view: List[ViewEntry]) -> int:
        best = 0
        for i, entry in enumerate(view):
            if entry.age > view[best].age:
                best = i
        return best

    def _merge(
        self,
        owner: ClientId,
        view: List[ViewEntry],
        received: List[ViewEntry],
        sent_peers: List[ClientId],
    ) -> List[ViewEntry]:
        """Cyclon merge rule: received entries first, drop self/dupes,
        evict the entries that were shuffled away if space is needed."""
        present = {entry.peer for entry in view}
        merged = list(view)
        for entry in received:
            if entry.peer == owner or entry.peer in present:
                continue
            merged.append(ViewEntry(entry.peer, entry.age))
            present.add(entry.peer)
        if len(merged) > self.config.view_size:
            sent = set(sent_peers)
            keep: List[ViewEntry] = []
            overflow = len(merged) - self.config.view_size
            for entry in merged:
                if overflow > 0 and entry.peer in sent:
                    overflow -= 1
                    continue
                keep.append(entry)
            merged = keep[: self.config.view_size]
        return merged

    def shuffle(self, initiator: ClientId) -> Optional[ClientId]:
        """One shuffle initiated by ``initiator``; returns the partner."""
        view = self.views[initiator]
        if not view:
            return None
        for entry in view:
            entry.age += 1
        partner_index = self._oldest_index(view)
        partner = view[partner_index].peer
        # Remove the partner's entry (it is being contacted).
        view.pop(partner_index)

        out_count = min(self.config.shuffle_length - 1, len(view))
        outgoing = self.rng.sample_without_replacement(
            list(range(len(view))), out_count
        )
        sent_entries = [view[i] for i in outgoing]
        sent = [ViewEntry(initiator, 0)] + [
            ViewEntry(e.peer, e.age) for e in sent_entries
        ]

        partner_view = self.views[partner]
        reply_count = min(self.config.shuffle_length, len(partner_view))
        reply_indexes = self.rng.sample_without_replacement(
            list(range(len(partner_view))), reply_count
        )
        reply = [
            ViewEntry(partner_view[i].peer, partner_view[i].age)
            for i in reply_indexes
        ]

        self.views[partner] = self._merge(
            partner, partner_view, sent, [e.peer for e in reply]
        )
        self.views[initiator] = self._merge(
            initiator, view, reply, [e.peer for e in sent_entries]
        )
        return partner

    def round(self) -> None:
        """Every peer initiates one shuffle (random activation order)."""
        order = self.rng.shuffled(self.peers)
        for peer in order:
            self.shuffle(peer)
        self.rounds_run += 1

    def run(self, rounds: int) -> None:
        for _ in range(rounds):
            self.round()

    # ------------------------------------------------------------------
    # Diagnostics

    def in_degrees(self) -> Dict[ClientId, int]:
        """How many views each peer appears in (indegree balance check)."""
        degrees: Dict[ClientId, int] = {p: 0 for p in self.peers}
        for view in self.views.values():
            for entry in view:
                degrees[entry.peer] += 1
        return degrees

    def is_connected(self) -> bool:
        """Weak connectivity of the union (directed) view graph."""
        adjacency: Dict[ClientId, set] = {p: set() for p in self.peers}
        for peer, view in self.views.items():
            for entry in view:
                adjacency[peer].add(entry.peer)
                adjacency[entry.peer].add(peer)
        seen = {self.peers[0]}
        frontier = [self.peers[0]]
        while frontier:
            current = frontier.pop()
            for neighbour in adjacency[current]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return len(seen) == len(self.peers)
