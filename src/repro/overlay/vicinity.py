"""Vicinity: gossip-based semantic clustering (the top tier).

Each peer maintains a *semantic view* of the ``k`` peers whose shared
caches overlap its own the most.  Every round a peer gossips with a
partner — usually its semantically closest neighbour, occasionally a
random peer from the Cyclon tier (the exploration path that lets distant
communities find each other) — and both sides rebuild their views from
the union of: their own view, the partner's semantic view, and the
partner's Cyclon view, keeping the top ``k`` by proximity.

The proximity function is the paper's own clustering metric: cache
overlap (number of common files), with a Jaccard variant available for
workloads with very uneven cache sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence

from repro.trace.compiled import FileInterner
from repro.trace.model import ClientId, FileId
from repro.util.rng import RngStream
from repro.util.validation import check_fraction, check_positive

CacheMap = Mapping[ClientId, FrozenSet[FileId]]


def cache_proximity(
    caches: CacheMap, a: ClientId, b: ClientId, jaccard: bool = False
) -> float:
    """Semantic proximity of two peers: cache overlap (or Jaccard).

    Works on any cache map whose values support set intersection — the
    public string-keyed caches or an interned int-set view; both give
    the same value (only sizes enter the formula).
    """
    cache_a = caches[a]
    cache_b = caches[b]
    if not cache_a or not cache_b:
        return 0.0
    common = len(cache_a & cache_b)
    if not jaccard:
        return float(common)
    union = len(cache_a) + len(cache_b) - common
    return common / union if union else 0.0


@dataclass
class VicinityConfig:
    """Semantic view size, gossip subset size and exploration rate."""

    view_size: int = 10
    gossip_length: int = 10
    explore_probability: float = 0.2  # gossip with a Cyclon peer instead
    jaccard: bool = False

    def __post_init__(self) -> None:
        check_positive("view_size", self.view_size)
        check_positive("gossip_length", self.gossip_length)
        check_fraction("explore_probability", self.explore_probability)


class Vicinity:
    """Round-based Vicinity simulation on top of a Cyclon instance.

    ``use_compiled`` (the default) interns the cache map to frozen sets
    of ints once at construction, so the proximity computations — the
    hot path of every gossip round — intersect int sets instead of
    string sets.  Proximity values, and therefore views and RNG draws,
    are identical either way.
    """

    def __init__(
        self,
        caches: CacheMap,
        cyclon,
        config: Optional[VicinityConfig] = None,
        seed: int = 0,
        use_compiled: bool = True,
    ) -> None:
        self.caches = caches
        if use_compiled:
            self._prox_caches: CacheMap = FileInterner().intern_cache_map(
                caches
            )
        else:
            self._prox_caches = caches
        self.cyclon = cyclon
        self.config = config or VicinityConfig()
        self.rng = RngStream(seed, "vicinity")
        self.peers: List[ClientId] = list(cyclon.peers)
        self.views: Dict[ClientId, List[ClientId]] = {}
        self.rounds_run = 0
        self._proximity_cache: Dict[tuple, float] = {}
        self._bootstrap()

    def _bootstrap(self) -> None:
        """Start from the Cyclon views (random peers)."""
        for peer in self.peers:
            candidates = self.cyclon.view_of(peer)
            self.views[peer] = self._select(peer, candidates)

    # ------------------------------------------------------------------

    def proximity(self, a: ClientId, b: ClientId) -> float:
        key = (a, b) if a <= b else (b, a)
        value = self._proximity_cache.get(key)
        if value is None:
            value = cache_proximity(
                self._prox_caches, a, b, jaccard=self.config.jaccard
            )
            self._proximity_cache[key] = value
        return value

    def _select(self, owner: ClientId, candidates: Sequence[ClientId]) -> List[ClientId]:
        """Top-``view_size`` candidates by proximity to ``owner``.

        Ties are broken by peer id so selection is deterministic; peers
        with zero proximity are still usable as placeholders (they keep
        the view full so gossip has material to exchange).
        """
        unique = sorted({c for c in candidates if c != owner})
        ranked = sorted(unique, key=lambda c: (-self.proximity(owner, c), c))
        return ranked[: self.config.view_size]

    def view_of(self, peer: ClientId) -> List[ClientId]:
        return list(self.views[peer])

    # ------------------------------------------------------------------

    def _gossip_partner(self, peer: ClientId) -> Optional[ClientId]:
        explore = self.rng.py.random() < self.config.explore_probability
        view = self.views[peer]
        if explore or not view:
            return self.cyclon.random_peer(peer, self.rng)
        # Exploit: the semantically closest neighbour.
        return view[0]

    def gossip(self, initiator: ClientId) -> Optional[ClientId]:
        partner = self._gossip_partner(initiator)
        if partner is None or partner == initiator:
            return None
        # Candidate material both sides exchange: semantic view + cyclon
        # view + themselves.
        mine = (
            self.views[initiator][: self.config.gossip_length]
            + self.cyclon.view_of(initiator)
            + [initiator]
        )
        theirs = (
            self.views[partner][: self.config.gossip_length]
            + self.cyclon.view_of(partner)
            + [partner]
        )
        self.views[initiator] = self._select(
            initiator, self.views[initiator] + theirs
        )
        self.views[partner] = self._select(partner, self.views[partner] + mine)
        return partner

    def round(self, run_cyclon: bool = True) -> None:
        """One gossip round for every peer (plus one Cyclon round)."""
        if run_cyclon:
            self.cyclon.round()
        for peer in self.rng.shuffled(self.peers):
            self.gossip(peer)
        self.rounds_run += 1

    def run(self, rounds: int) -> None:
        for _ in range(rounds):
            self.round()

    # ------------------------------------------------------------------
    # Quality metrics

    def view_quality(self, ideal: Mapping[ClientId, Sequence[ClientId]]) -> float:
        """Mean fraction of each peer's *ideal* semantic view that the
        current view has found (1.0 = converged to the exact k-NN graph)."""
        total = 0.0
        counted = 0
        for peer in self.peers:
            best = set(ideal.get(peer, ()))
            if not best:
                continue
            found = len(best & set(self.views[peer]))
            total += found / len(best)
            counted += 1
        return total / counted if counted else 0.0

    def ideal_views(self) -> Dict[ClientId, List[ClientId]]:
        """The true k-nearest-semantic-neighbour views (O(n^2); fine at
        simulation scale, used for convergence measurement)."""
        ideal: Dict[ClientId, List[ClientId]] = {}
        for peer in self.peers:
            ranked = sorted(
                (c for c in self.peers if c != peer),
                key=lambda c: (-self.proximity(peer, c), c),
            )
            positive = [c for c in ranked if self.proximity(peer, c) > 0]
            ideal[peer] = positive[: self.config.view_size]
        return ideal

    def mean_view_proximity(self) -> float:
        """Average proximity of current view entries (rises as the overlay
        semantically clusters)."""
        total = 0.0
        count = 0
        for peer, view in self.views.items():
            for other in view:
                total += self.proximity(peer, other)
                count += 1
        return total / count if count else 0.0
