"""AS-level caching — the PeerCache opportunity of Section 4.1.

The paper observes that 54% of clients sit in five autonomous systems and
that files cluster geographically, and points to *PeerCache*: an
operator-deployed cache shared by the clients of one AS ("to avoid the
issue of network operators storing potential illegal contents, caches may
contain index rather than content").  This package quantifies that
opportunity on reproduction workloads:

- **index mode** (:class:`~repro.cache.peercache.AsIndexCache`): the AS
  box only remembers *which local peers share which file*; a request is
  served intra-AS when a local source exists — measuring exactly the
  locality the paper's Figure 12 promises;
- **content mode** (:class:`~repro.cache.peercache.AsContentCache`): the
  box stores file bytes under a capacity budget with LRU eviction —
  measuring how much transit-link traffic a real cache would absorb.
"""

from repro.cache.peercache import (
    AsContentCache,
    AsIndexCache,
    PeerCacheConfig,
    PeerCacheResult,
    simulate_peercache,
)

__all__ = [
    "AsContentCache",
    "AsIndexCache",
    "PeerCacheConfig",
    "PeerCacheResult",
    "simulate_peercache",
]
