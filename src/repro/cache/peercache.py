"""AS-level index and content caches, driven by the Section 5.1 request
stream.

The simulation replays the same request sequence as the search simulator
(every cached file of every peer requested once, first requester =
contributor).  For each actual request it asks: could this download have
stayed inside the requester's autonomous system?

- *index mode*: yes iff some peer of the same AS currently shares the
  file (no storage at the operator at all);
- *content mode*: yes iff the AS's content cache holds the file; on a
  miss the file is fetched externally and inserted (LRU eviction under a
  per-AS byte budget).

Intra-AS service in index mode is a *structural* property of the
workload — it measures the geographic clustering of Figures 11/12 —
while content-mode hit rates measure classic cacheability (Zipf head
reuse).
"""

from __future__ import annotations

from collections import Counter, OrderedDict, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.requests import generate_requests
from repro.trace.model import ClientId, FileId, StaticTrace
from repro.util.rng import RngStream
from repro.util.validation import check_positive


class AsIndexCache:
    """Per-AS inverted index: file -> local sharers (no content stored)."""

    def __init__(self, asn: int) -> None:
        self.asn = asn
        self._sources: Dict[FileId, Set[ClientId]] = defaultdict(set)
        self.hits = 0
        self.misses = 0

    def publish(self, client_id: ClientId, file_id: FileId) -> None:
        self._sources[file_id].add(client_id)

    def lookup(self, file_id: FileId, exclude: Optional[ClientId] = None) -> bool:
        sources = self._sources.get(file_id)
        found = bool(sources) and (exclude is None or sources - {exclude})
        if found:
            self.hits += 1
        else:
            self.misses += 1
        return bool(found)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def index_entries(self) -> int:
        return sum(len(s) for s in self._sources.values())


class AsContentCache:
    """Per-AS LRU content cache under a byte budget."""

    def __init__(self, asn: int, capacity_bytes: int) -> None:
        check_positive("capacity_bytes", capacity_bytes)
        self.asn = asn
        self.capacity_bytes = capacity_bytes
        self._entries: "OrderedDict[FileId, int]" = OrderedDict()  # fid -> size
        self.used_bytes = 0
        self.hits = 0
        self.misses = 0
        self.bytes_served = 0
        self.bytes_fetched = 0
        self.evictions = 0

    def request(self, file_id: FileId, size: int) -> bool:
        """Serve a request; returns True on a cache hit.

        Misses insert the file (fetched over the transit link).  Files
        larger than the whole cache are fetched but never stored.
        """
        if file_id in self._entries:
            self._entries.move_to_end(file_id)
            self.hits += 1
            self.bytes_served += size
            return True
        self.misses += 1
        self.bytes_fetched += size
        if size > self.capacity_bytes:
            return False
        while self.used_bytes + size > self.capacity_bytes and self._entries:
            _, evicted_size = self._entries.popitem(last=False)
            self.used_bytes -= evicted_size
            self.evictions += 1
        self._entries[file_id] = size
        self.used_bytes += size
        return False

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def byte_hit_rate(self) -> float:
        total = self.bytes_served + self.bytes_fetched
        return self.bytes_served / total if total else 0.0


@dataclass
class PeerCacheConfig:
    """Simulation parameters."""

    mode: str = "index"  # "index" | "content"
    capacity_bytes: int = 50 * 1024**3  # per-AS budget (content mode)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in ("index", "content"):
            raise ValueError(f"mode must be 'index' or 'content', got {self.mode!r}")
        check_positive("capacity_bytes", self.capacity_bytes)


@dataclass
class PeerCacheResult:
    """Aggregate and per-AS outcomes."""

    mode: str
    requests: int
    intra_as_hits: int
    bytes_total: int
    bytes_kept_local: int
    per_as_hit_rate: Dict[int, float] = field(default_factory=dict)
    per_as_requests: Dict[int, int] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        return self.intra_as_hits / self.requests if self.requests else 0.0

    @property
    def byte_locality(self) -> float:
        return self.bytes_kept_local / self.bytes_total if self.bytes_total else 0.0

    def top_as_rows(self, k: int = 5) -> List[Tuple[int, int, float]]:
        """``(asn, requests, hit_rate)`` for the busiest ASes."""
        busiest = sorted(
            self.per_as_requests, key=lambda a: -self.per_as_requests[a]
        )[:k]
        return [
            (asn, self.per_as_requests[asn], self.per_as_hit_rate.get(asn, 0.0))
            for asn in busiest
        ]


def simulate_peercache(
    trace: StaticTrace, config: Optional[PeerCacheConfig] = None
) -> PeerCacheResult:
    """Replay the request stream through per-AS caches."""
    config = config or PeerCacheConfig()
    rng = RngStream(config.seed, "peercache")

    as_of: Dict[ClientId, int] = {
        c: meta.asn for c, meta in trace.clients.items()
    }
    size_of: Dict[FileId, int] = {
        fid: meta.size for fid, meta in trace.files.items()
    }

    index_caches: Dict[int, AsIndexCache] = {}
    content_caches: Dict[int, AsContentCache] = {}

    def index_cache(asn: int) -> AsIndexCache:
        cache = index_caches.get(asn)
        if cache is None:
            cache = AsIndexCache(asn)
            index_caches[asn] = cache
        return cache

    def content_cache(asn: int) -> AsContentCache:
        cache = content_caches.get(asn)
        if cache is None:
            cache = AsContentCache(asn, config.capacity_bytes)
            content_caches[asn] = cache
        return cache

    sharers_of: Dict[FileId, List[ClientId]] = defaultdict(list)
    requests = 0
    intra_hits = 0
    bytes_total = 0
    bytes_local = 0
    per_as_requests: Counter = Counter()
    per_as_hits: Counter = Counter()

    for request in generate_requests(trace, rng.child("requests")):
        peer, fid = request.peer, request.file_id
        asn = as_of.get(peer)
        size = size_of.get(fid, 0)
        if not sharers_of[fid]:
            # Original contribution: the file appears; publish locally.
            sharers_of[fid].append(peer)
            if asn is not None:
                index_cache(asn).publish(peer, fid)
            continue

        requests += 1
        bytes_total += size
        if asn is not None:
            per_as_requests[asn] += 1
            if config.mode == "index":
                hit = index_cache(asn).lookup(fid, exclude=peer)
            else:
                hit = content_cache(asn).request(fid, size)
            if hit:
                intra_hits += 1
                bytes_local += size
                per_as_hits[asn] += 1
        # The requester becomes a source either way.
        sharers_of[fid].append(peer)
        if asn is not None:
            index_cache(asn).publish(peer, fid)

    per_as_hit_rate = {
        asn: per_as_hits[asn] / count
        for asn, count in per_as_requests.items()
        if count
    }
    return PeerCacheResult(
        mode=config.mode,
        requests=requests,
        intra_as_hits=intra_hits,
        bytes_total=bytes_total,
        bytes_kept_local=bytes_local,
        per_as_hit_rate=per_as_hit_rate,
        per_as_requests=dict(per_as_requests),
    )
