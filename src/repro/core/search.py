"""The trace-driven semantic-search simulator (Section 5).

Simulation loop (Section 5.1): requests are generated from the static trace
(see :mod:`repro.core.requests`).  For each request by peer ``p`` for file
``f``:

1. if nobody currently shares ``f``, ``p`` is the original contributor —
   ``f`` enters ``p``'s shared cache without a search;
2. otherwise ``p`` queries its semantic neighbours in list order; the first
   neighbour sharing ``f`` answers (a **hit**);
3. in two-hop mode, a one-hop miss continues with the neighbours'
   neighbours (the semantic overlay of Section 5.3.4);
4. on a miss, the fall-back mechanism (server / flooding) finds a source
   uniformly at random among current sharers;
5. whoever uploaded — hit or fall-back — is recorded in ``p``'s neighbour
   strategy, and ``f`` is added to ``p``'s shared cache.

The ablations of Sections 5.3.2 (remove the most generous uploaders /
the most popular files) operate on the input trace before simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.checkpoint import Checkpointer
    from repro.runtime.context import RunContext

from repro.core.metrics import HitRateAccumulator, LoadTracker
from repro.core.neighbours import (
    FixedNeighbours,
    NeighbourStrategy,
    make_strategy,
)
from repro.core.requests import generate_requests, iter_requests_compiled
from repro.core.vectorized import word_stream
from repro.obs import COUNT_BOUNDS, LATENCY_BOUNDS_S, NULL_OBSERVER, Observer
from repro.trace.compiled import CompiledTrace
from repro.trace.model import ClientId, FileId, StaticTrace
from repro.util.rng import RngStream
from repro.util.validation import check_fraction, check_positive


@dataclass
class SearchConfig:
    """Parameters of one simulation run.

    ``availability`` models peer churn (the concern of the availability
    studies the paper cites): every contacted peer is online with this
    probability, independently per request.  Offline semantic neighbours
    cannot answer; the fall-back only succeeds if some source is online.
    Availability below 1 is one-hop only (the two-hop fast path assumes
    all peers answer).

    ``probe_loss_rate`` models a lossy network under the search: each
    neighbour probe is independently lost with this probability (the
    message is sent — it counts toward load — but never answered).

    ``evict_dead`` enables dead-neighbour detection: a neighbour that
    fails to answer ``dead_after`` consecutive probes from the same peer
    is evicted from that peer's list, making room for live peers; any
    answer clears the strikes.  Both fault knobs are one-hop only, like
    ``availability``.
    """

    list_size: int = 20
    strategy: str = "lru"  # lru | history | random | popularity
    two_hop: bool = False
    track_load: bool = True
    weighted_requests: bool = False
    availability: float = 1.0
    probe_loss_rate: float = 0.0
    evict_dead: bool = False
    dead_after: int = 2
    rare_cutoff: Optional[int] = None  # track a second hit-rate for
    # requests whose file has <= rare_cutoff replicas in the input trace
    track_exchanges: bool = False  # record the (uploader -> downloader)
    # exchange graph for the Section 6 graph analyses
    #: optional per-peer initial neighbour lists (e.g. converged gossip
    #: views).  With strategy "fixed" the lists never change; with the
    #: learning strategies they warm-start the list state.
    initial_lists: Optional[Dict[ClientId, List[ClientId]]] = None
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("list_size", self.list_size)
        check_fraction("availability", self.availability)
        check_fraction("probe_loss_rate", self.probe_loss_rate)
        check_positive("dead_after", self.dead_after)
        if self.availability < 1.0 and self.two_hop:
            raise ValueError(
                "availability modelling is one-hop only; disable two_hop"
            )
        if (self.probe_loss_rate > 0 or self.evict_dead) and self.two_hop:
            raise ValueError(
                "fault modelling (probe_loss_rate/evict_dead) is one-hop "
                "only; disable two_hop"
            )
        if self.strategy == "fixed" and self.initial_lists is None:
            raise ValueError("strategy 'fixed' requires initial_lists")
        if self.initial_lists is not None:
            self._validate_initial_lists()

    def _validate_initial_lists(self) -> None:
        """Structural checks on the warm-start lists.

        Lists longer than ``list_size`` would be silently truncated by the
        strategies, and duplicate or self-referencing entries are dead
        weight that a real client could never hold; reject all three
        loudly.  Membership in the trace is checked by the simulator (the
        config alone cannot know the peer population).
        """
        for peer, neighbours in self.initial_lists.items():
            if len(neighbours) > self.list_size:
                raise ValueError(
                    f"initial_lists[{peer!r}] has {len(neighbours)} entries, "
                    f"exceeding list_size={self.list_size}"
                )
            if len(set(neighbours)) != len(neighbours):
                raise ValueError(
                    f"initial_lists[{peer!r}] contains duplicate neighbours"
                )
            if peer in neighbours:
                raise ValueError(
                    f"initial_lists[{peer!r}] lists the peer as its own "
                    "neighbour"
                )


@dataclass
class SimulationResult:
    """Outcome of one run.

    ``unresolvable`` counts requests where no source at all was online
    (only nonzero when ``availability < 1``); they are excluded from the
    hit-rate denominator because no mechanism could have served them.
    """

    config: SearchConfig
    rates: HitRateAccumulator
    load: LoadTracker
    num_peers: int
    num_files: int
    unresolvable: int = 0
    #: probes lost to the fault model / dead neighbours evicted
    probes_lost: int = 0
    evictions: int = 0
    rare_rates: Optional[HitRateAccumulator] = None
    #: (uploader, downloader) -> number of uploads, when track_exchanges
    exchanges: Optional[Dict[Tuple[ClientId, ClientId], int]] = None

    @property
    def hit_rate(self) -> float:
        return self.rates.hit_rate

    def summary(self) -> str:
        pieces = [
            f"strategy={self.config.strategy}",
            f"list={self.config.list_size}",
            f"requests={self.rates.requests}",
            f"hit_rate={100 * self.rates.hit_rate:.1f}%",
        ]
        if self.config.two_hop:
            pieces.append(
                f"one_hop_rate={100 * self.rates.one_hop_hit_rate:.1f}%"
            )
        return " ".join(pieces)


@dataclass
class QueryRecord:
    """One request's lifecycle: issued → probes → resolution.

    This is the per-query event record the eDonkey measurement papers
    analyse from server logs; here it is produced by the simulator
    itself (only while profiling) and feeds the query-lifecycle
    histograms plus, when an event tracer is attached, one structured
    trace event per request.

    ``two_hop_contacts`` counts second-hop peers actually probed; the
    two-hop fast path (which answers from the sharer side without
    enumerating contacts) reports 0.  ``hit_position`` is the 1-based
    rank of the answering neighbour in the probe order (``None`` unless
    the one-hop search hit).
    """

    index: int
    peer: ClientId
    file_id: FileId
    outcome: str  # "one_hop" | "two_hop" | "fallback"
    hops: int  # one-hop neighbours probed
    two_hop_contacts: int = 0
    hit_position: Optional[int] = None
    probes_lost: int = 0  # probes the fault model ate during this request
    one_hop_s: float = 0.0
    two_hop_s: Optional[float] = None
    fallback_s: Optional[float] = None

    @property
    def probes(self) -> int:
        return self.hops + self.two_hop_contacts

    def as_args(self) -> Dict[str, object]:
        """Flat payload for the Chrome trace event's ``args``."""
        args: Dict[str, object] = {
            "index": self.index,
            "peer": self.peer,
            "file": self.file_id,
            "outcome": self.outcome,
            "hops": self.hops,
            "probes": self.probes,
        }
        if self.hit_position is not None:
            args["hit_position"] = self.hit_position
        if self.probes_lost:
            args["probes_lost"] = self.probes_lost
        return args


@dataclass
class _RunState:
    """The mutable mid-run state a checkpoint must capture.

    Everything the request loop reads or writes between events lives
    here (or on the simulator itself, which owns the per-peer state);
    the request stream is one of the picklable stream objects from
    :mod:`repro.core.requests`, so pickling this dataclass mid-sequence
    freezes the run exactly between two events.
    """

    rates: HitRateAccumulator
    load: LoadTracker
    requests: Iterator
    avail_rng: RngStream
    loss_rng: RngStream
    unresolvable: int = 0
    rare_rates: Optional[HitRateAccumulator] = None
    rare_files: Set = field(default_factory=set)
    exchanges: Optional[Dict[Tuple[ClientId, ClientId], int]] = None
    #: events consumed from the request stream so far (checkpoint cadence)
    processed: int = 0


#: Checkpoint kind tag for search-simulator snapshots.
SEARCH_CHECKPOINT_KIND = "search"


class SearchSimulator:
    """Runs the Section 5 methodology over a static trace.

    By default the simulation runs on the trace's compiled form
    (:meth:`~repro.trace.model.StaticTrace.compiled`): files are interned
    ints throughout the hot loop, current sharers live in a list indexed
    by file index, and the request stream is consumed as int tuples.
    ``use_compiled=False`` selects the original string-keyed engine, kept
    as the reference implementation; seeded results are byte-identical
    either way (the equivalence suite pins this).

    ``run(checkpointer=...)`` snapshots the whole simulator every
    ``checkpoint_every`` events; :meth:`resume_from` rebuilds it from the
    latest snapshot and the next ``run()`` continues mid-sequence with
    byte-identical final results (the resume-equivalence suite pins
    this).  Checkpointing requires the compiled engine — the legacy
    engine's request generator cannot be pickled.
    """

    def __init__(
        self,
        trace: StaticTrace,
        config: Optional[SearchConfig] = None,
        obs: Optional[Observer] = None,
        ctx: Optional["RunContext"] = None,
        use_compiled: bool = True,
        vectorized: bool = True,
    ) -> None:
        if ctx is not None:
            if config is None:
                config = SearchConfig(seed=ctx.seed)
            if obs is None:
                obs = ctx.obs
        self.trace = trace
        self.config = config or SearchConfig()
        self.obs = obs if obs is not None else NULL_OBSERVER
        if self.config.initial_lists is not None:
            self._check_lists_against_trace()
        self.rng = RngStream(self.config.seed, "search")
        self.use_compiled = use_compiled
        # The batched engine: request draws and fall-back selection come
        # from a WordStream over this simulator's RNG (bulk words, same
        # draws), and the two-hop fast path unions RNG-free members()
        # views.  vectorized=False keeps the scalar reference engine;
        # seeded results are byte-identical either way (pinned by
        # tests/core/test_vectorized_equivalence.py).
        self.vectorized = vectorized and use_compiled
        self._ws = word_stream(self.rng.py) if self.vectorized else None
        # Sharded workers hand the simulator a CompiledTrace directly
        # (attached from shared memory); the legacy engine has no
        # string-keyed view of one, so compiled input forces compiled mode.
        if isinstance(trace, CompiledTrace):
            if not use_compiled:
                raise ValueError(
                    "a CompiledTrace input requires the compiled engine "
                    "(use_compiled=True)"
                )
            self._compiled = trace
        else:
            self._compiled = trace.compiled() if use_compiled else None
        self._strategies: Dict[ClientId, NeighbourStrategy] = {}
        # File keys are interned ints in compiled mode, FileId strings in
        # legacy mode; both engines treat them as opaque throughout.
        self._shared: Dict[ClientId, Set] = {}
        self._sharers_of: Dict[FileId, List[ClientId]] = {}
        self._sharers_list: Optional[List[Optional[List[ClientId]]]] = (
            [None] * self._compiled.num_files if use_compiled else None
        )
        self._sharer_peers: List[ClientId] = []  # peers sharing >= 1 file
        self._sharer_seen: Set[ClientId] = set()
        # Dead-neighbour detection state (only used when evict_dead).
        self._strikes: Dict[Tuple[ClientId, ClientId], int] = {}
        self._probes_lost = 0
        self._evictions = 0
        # Second-hop peers probed by the most recent _query_two_hop call
        # (0 on the sharer-side fast path) — lifecycle bookkeeping only.
        self._last_two_hop_contacts = 0
        # Mid-run state; populated lazily by run() and carried across a
        # checkpoint/resume cycle.
        self._run_state: Optional[_RunState] = None

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        ws = self.__dict__.get("_ws")
        if ws is not None:
            ws.attach(self.rng.py)

    def _check_lists_against_trace(self) -> None:
        """Reject warm-start lists referencing peers absent from the trace.

        A dead entry can never answer a probe, so carrying it silently
        into the simulation deflates hit rates for no modelled reason —
        exactly the kind of quiet input error that should fail fast.
        """
        caches = getattr(self.trace, "caches", None)
        known = caches.keys() if caches is not None else set(self.trace.client_ids)
        for peer, neighbours in self.config.initial_lists.items():
            if peer not in known:
                raise ValueError(
                    f"initial_lists peer {peer!r} is not in the trace"
                )
            missing = [n for n in neighbours if n not in known]
            if missing:
                raise ValueError(
                    f"initial_lists[{peer!r}] references peers absent from "
                    f"the trace: {missing[:5]}"
                )

    # ------------------------------------------------------------------
    # State helpers

    def _population(self) -> List[ClientId]:
        """Current peers sharing at least one file (for Random lists)."""
        return self._sharer_peers

    def _strategy_for(self, peer: ClientId) -> NeighbourStrategy:
        strategy = self._strategies.get(peer)
        if strategy is None:
            initial = (
                self.config.initial_lists.get(peer, [])
                if self.config.initial_lists is not None
                else []
            )
            if self.config.strategy == "fixed":
                strategy = FixedNeighbours(self.config.list_size, initial)
            else:
                strategy = make_strategy(
                    self.config.strategy,
                    self.config.list_size,
                    rng=self.rng.child(f"random[{peer}]"),
                    # A bound method (not a lambda) so strategies — and
                    # with them the whole simulator — stay picklable.
                    population=self._population,
                    owner=peer,
                )
                # Warm start: feed the initial list as synthetic uploads,
                # last entry first so the list head ends up at the head.
                for neighbour in reversed(initial):
                    strategy.record_upload(neighbour)
            self._strategies[peer] = strategy
        return strategy

    def _add_to_cache(self, peer: ClientId, file_key) -> None:
        self._shared.setdefault(peer, set()).add(file_key)
        sharers_list = self._sharers_list
        if sharers_list is not None:
            sharers = sharers_list[file_key]
            if sharers is None:
                sharers_list[file_key] = [peer]
            else:
                sharers.append(peer)
        else:
            self._sharers_of.setdefault(file_key, []).append(peer)
        if peer not in self._sharer_seen:
            self._sharer_seen.add(peer)
            self._sharer_peers.append(peer)

    def _sharers(self, file_key) -> Optional[List[ClientId]]:
        """Current sharers of ``file_key`` in upload order (None if none)."""
        if self._sharers_list is not None:
            return self._sharers_list[file_key]
        return self._sharers_of.get(file_key)

    def shares(self, peer: ClientId, file_key) -> bool:
        return file_key in self._shared.get(peer, ())

    # ------------------------------------------------------------------
    # Query paths

    def _query_one_hop(
        self,
        peer: ClientId,
        file_key,
        load: Optional[LoadTracker],
        online=None,
        lost=None,
    ) -> Tuple[Optional[ClientId], List[ClientId]]:
        """Query neighbours in order; return (answerer, queried list).

        ``online`` is an optional predicate; offline neighbours are
        contacted (the message is sent) but never answer.  ``lost`` is an
        optional thunk drawn once per probe: a lost probe is sent (it
        counts toward load) but never answered, even by an online
        neighbour.  Unanswered probes feed dead-neighbour detection."""
        neighbours = list(self._strategy_for(peer).ordered())
        queried: List[ClientId] = []
        for neighbour in neighbours:
            queried.append(neighbour)
            if load is not None:
                load.record(neighbour)
            if lost is not None and lost():
                self._probes_lost += 1
                self._record_probe_failure(peer, neighbour)
                continue
            if online is not None and not online(neighbour):
                self._record_probe_failure(peer, neighbour)
                continue
            self._record_probe_answer(peer, neighbour)
            if self.shares(neighbour, file_key):
                return neighbour, queried
        return None, queried

    def _record_probe_failure(self, peer: ClientId, neighbour: ClientId) -> None:
        if not self.config.evict_dead:
            return
        key = (peer, neighbour)
        strikes = self._strikes.get(key, 0) + 1
        if strikes >= self.config.dead_after:
            self._strategy_for(peer).evict(neighbour)
            self._strikes.pop(key, None)
            self._evictions += 1
        else:
            self._strikes[key] = strikes

    def _record_probe_answer(self, peer: ClientId, neighbour: ClientId) -> None:
        if not self.config.evict_dead:
            return
        self._strikes.pop((peer, neighbour), None)

    def _query_two_hop(
        self,
        peer: ClientId,
        file_key,
        first_hop: Sequence[ClientId],
        load: Optional[LoadTracker],
    ) -> Optional[ClientId]:
        """Query the neighbours' neighbours after a one-hop miss.

        Second-hop peers are visited in the order induced by the first-hop
        list; duplicates, ``peer`` itself and already-queried first-hop
        neighbours are skipped.
        """
        self._last_two_hop_contacts = 0
        sharers = self._sharers(file_key) or ()
        if load is None and len(sharers) * max(1, len(first_hop)) < _fast_path_budget(
            self.config.list_size
        ):
            # Fast path (no message accounting): a sharer is reachable at
            # two hops iff it sits in some first-hop neighbour's list.
            if self.vectorized:
                # Batched membership: union the neighbours' RNG-free
                # members() views once, then test every sharer against
                # the union — the first sharer in some view is exactly
                # the one the nested pair loop returns.  A None view
                # (Random lists, whose membership consumes RNG draws)
                # falls through to the reference loop.
                union = self._member_union(first_hop)
                if union is not None:
                    for sharer in sharers:
                        if sharer != peer and sharer in union:
                            return sharer
                    return None
            for sharer in sharers:
                if sharer == peer:
                    continue
                for neighbour in first_hop:
                    if self._strategy_for(neighbour).contains(sharer):
                        return sharer
            return None

        seen: Set[ClientId] = set(first_hop)
        seen.add(peer)
        for neighbour in first_hop:
            for second in self._strategy_for(neighbour).ordered():
                if second in seen:
                    continue
                seen.add(second)
                self._last_two_hop_contacts += 1
                if load is not None:
                    load.record(second)
                if self.shares(second, file_key):
                    return second
        return None

    def _member_union(self, first_hop: Sequence[ClientId]) -> Optional[Set]:
        """Union of the first-hop lists' members() views, or None.

        None means at least one strategy has no RNG-free membership view
        (Random) and the caller must keep the per-pair probe order.
        """
        views = []
        for neighbour in first_hop:
            view = self._strategy_for(neighbour).members()
            if view is None:
                return None
            views.append(view)
        union: Set = set()
        for view in views:
            union.update(view)
        return union

    # ------------------------------------------------------------------
    # Query-lifecycle records

    def _record_query(self, record: QueryRecord) -> None:
        """Fold one request's lifecycle into the distributional metrics.

        Hops/probes/hit-position land in count histograms, phase
        latencies in latency histograms; with a tracer attached the full
        structured record becomes one instant event in the run's event
        stream (the per-query log a server-side capture would analyse).
        """
        obs = self.obs
        obs.hist("search/hops_per_request", record.hops, bounds=COUNT_BOUNDS)
        obs.hist(
            "search/probes_per_request", record.probes, bounds=COUNT_BOUNDS
        )
        obs.hist(
            "search/latency/one_hop_s",
            record.one_hop_s,
            bounds=LATENCY_BOUNDS_S,
        )
        if record.two_hop_s is not None:
            obs.hist(
                "search/latency/two_hop_s",
                record.two_hop_s,
                bounds=LATENCY_BOUNDS_S,
            )
        if record.fallback_s is not None:
            obs.hist(
                "search/latency/fallback_s",
                record.fallback_s,
                bounds=LATENCY_BOUNDS_S,
            )
        if record.hit_position is not None:
            obs.hist(
                "search/hit_position", record.hit_position, bounds=COUNT_BOUNDS
            )
        if obs.tracer is not None:
            obs.instant("search/query", args=record.as_args(), cat="query")

    # ------------------------------------------------------------------
    # Main loop

    def _fresh_state(self) -> _RunState:
        """Build the event-zero run state (streams, accumulators, RNGs)."""
        config = self.config
        request_rng = self.rng.child("requests")
        if self._compiled is not None:
            requests = iter_requests_compiled(
                self._compiled,
                request_rng,
                weighted_by_cache=config.weighted_requests,
                vectorized=self.vectorized,
            )
        else:
            requests = (
                (r.peer, r.file_id)
                for r in generate_requests(
                    self.trace,
                    request_rng,
                    weighted_by_cache=config.weighted_requests,
                    use_compiled=False,
                )
            )
        rare_rates: Optional[HitRateAccumulator] = None
        rare_files: Set = set()
        if config.rare_cutoff is not None:
            rare_rates = HitRateAccumulator()
            if self._compiled is not None:
                rare_files = {
                    idx
                    for idx, c in enumerate(self._compiled.static_counts)
                    if c <= config.rare_cutoff
                }
            else:
                counts = self.trace.replica_counts()
                rare_files = {
                    f for f, c in counts.items() if c <= config.rare_cutoff
                }
        return _RunState(
            rates=HitRateAccumulator(),
            load=LoadTracker(),
            requests=requests,
            avail_rng=self.rng.child("availability"),
            loss_rng=self.rng.child("probe-loss"),
            rare_rates=rare_rates,
            rare_files=rare_files,
            exchanges={} if config.track_exchanges else None,
        )

    def save_checkpoint(self, checkpointer: "Checkpointer") -> None:
        """Snapshot the whole simulator (run state included).

        The observer's live span stack is excluded from the snapshot (a
        resumed process opens its own spans), and the save counter is
        bumped *before* pickling so the snapshot carries the save it
        belongs to — a resumed run continues the counter exactly where
        an uninterrupted checkpointing run would be.
        """
        if self._run_state is None:
            raise ValueError("nothing to checkpoint: run() has not started")
        self.obs.count("checkpoint/saves")
        stack = self.obs._stack
        self.obs._stack = []
        try:
            checkpointer.save(
                SEARCH_CHECKPOINT_KIND,
                self._run_state.processed,
                {"simulator": self},
                seed=self.config.seed,
                meta={
                    "processed": self._run_state.processed,
                    "strategy": self.config.strategy,
                },
            )
        finally:
            self.obs._stack = stack

    @classmethod
    def resume_from(cls, checkpointer: "Checkpointer") -> "SearchSimulator":
        """Rebuild a mid-run simulator from the latest checkpoint."""
        payload, _info = checkpointer.load_latest(SEARCH_CHECKPOINT_KIND)
        simulator = payload["simulator"]
        if not isinstance(simulator, cls):
            raise TypeError(
                f"checkpoint payload holds {type(simulator).__name__}, "
                f"expected {cls.__name__}"
            )
        return simulator

    def run(
        self,
        checkpointer: Optional["Checkpointer"] = None,
        checkpoint_every: int = 10_000,
    ) -> SimulationResult:
        config = self.config
        obs = self.obs
        if checkpointer is not None:
            if not self.use_compiled:
                raise ValueError(
                    "checkpointing requires the compiled engine "
                    "(use_compiled=True): the legacy request generator "
                    "cannot be pickled"
                )
            check_positive("checkpoint_every", checkpoint_every)
        # Local flag + clock keep the disabled path to one branch per
        # request section; timing uses explicit clock reads because a
        # context manager per request would dominate the hot loop.
        profiled = obs.enabled
        clock = obs.clock
        state = self._run_state
        if state is None:
            state = self._run_state = self._fresh_state()
        rates = state.rates
        load = state.load
        load_sink = load if config.track_load else None
        avail_rng = state.avail_rng
        loss_rng = state.loss_rng
        model_churn = config.availability < 1.0
        lost = None
        if config.probe_loss_rate > 0:
            def lost(_rng=loss_rng, _rate=config.probe_loss_rate):  # noqa: E731
                return _rng.py.random() < _rate
        unresolvable = state.unresolvable
        rare_rates = state.rare_rates
        rare_files = state.rare_files
        exchanges = state.exchanges
        requests = state.requests
        processed = state.processed
        # Checkpoints happen *between* events: at the top of the loop the
        # stream holds no half-processed event, so the snapshot is a clean
        # cut and resuming replays nothing twice.
        next_checkpoint = (
            processed + checkpoint_every if checkpointer is not None else None
        )
        run_start = clock() if profiled else 0.0
        while True:
            if next_checkpoint is not None and processed >= next_checkpoint:
                state.unresolvable = unresolvable
                state.processed = processed
                self.save_checkpoint(checkpointer)
                next_checkpoint = processed + checkpoint_every
            try:
                peer, file_key = next(requests)
            except StopIteration:
                break
            processed += 1
            if profiled:
                # Direct dict store: the flight recorder reads this live,
                # and a method call per request would tax the hot loop.
                obs.gauges["progress/requests_done"] = float(processed)
            sharers = self._sharers(file_key)
            if not sharers:
                # Original contributor: the file enters the system here.
                rates.contributions += 1
                self._add_to_cache(peer, file_key)
                continue

            online = None
            if model_churn:
                # One coherent online/offline draw per peer per request.
                statuses: Dict[ClientId, bool] = {}

                def online(target, _statuses=statuses):  # noqa: E731
                    status = _statuses.get(target)
                    if status is None:
                        status = avail_rng.py.random() < config.availability
                        _statuses[target] = status
                    return status

                online_sharers = [s for s in sharers if online(s)]
                if not online_sharers:
                    # Nobody holding the file is online: no mechanism can
                    # serve this request.  The peer is assumed to retry
                    # once a source returns, so the file still enters its
                    # cache, but no list learning happens.
                    unresolvable += 1
                    self._add_to_cache(peer, file_key)
                    continue
            else:
                online_sharers = sharers

            rates.requests += 1
            is_rare = rare_rates is not None and file_key in rare_files
            if is_rare:
                rare_rates.requests += 1
            lost_before = self._probes_lost if profiled else 0
            record: Optional[QueryRecord] = None
            started = clock() if profiled else 0.0
            answerer, first_hop = self._query_one_hop(
                peer, file_key, load_sink, online=online, lost=lost
            )
            if profiled:
                one_hop_s = clock() - started
                obs.record_span("search/one_hop", one_hop_s, start_s=started)
                record = QueryRecord(
                    index=rates.requests,
                    peer=peer,
                    # The lifecycle record crosses the boundary back to
                    # public string ids (trace events keep their schema).
                    file_id=(
                        self._compiled.file_ids[file_key]
                        if self._compiled is not None
                        else file_key
                    ),
                    outcome="fallback",
                    hops=len(first_hop),
                    one_hop_s=one_hop_s,
                )
            if answerer is not None:
                rates.hits += 1
                rates.one_hop_hits += 1
                if is_rare:
                    rare_rates.hits += 1
                    rare_rates.one_hop_hits += 1
                if record is not None:
                    record.outcome = "one_hop"
                    # The answering neighbour is always the last one probed.
                    record.hit_position = len(first_hop)
            elif config.two_hop:
                started = clock() if profiled else 0.0
                answerer = self._query_two_hop(peer, file_key, first_hop, load_sink)
                if profiled:
                    two_hop_s = clock() - started
                    obs.record_span(
                        "search/two_hop", two_hop_s, start_s=started
                    )
                    record.two_hop_s = two_hop_s
                    record.two_hop_contacts = self._last_two_hop_contacts
                if answerer is not None:
                    rates.hits += 1
                    rates.two_hop_hits += 1
                    if is_rare:
                        rare_rates.hits += 1
                        rare_rates.two_hop_hits += 1
                    if record is not None:
                        record.outcome = "two_hop"

            if answerer is None:
                # Fall-back search (server or flooding) picks a source
                # uniformly among currently online sharers.
                started = clock() if profiled else 0.0
                if self._ws is not None:
                    answerer = online_sharers[
                        self._ws.randrange(len(online_sharers))
                    ]
                else:
                    answerer = online_sharers[
                        self.rng.py.randrange(len(online_sharers))
                    ]
                if profiled:
                    fallback_s = clock() - started
                    obs.record_span(
                        "search/fallback", fallback_s, start_s=started
                    )
                    record.fallback_s = fallback_s
            if record is not None:
                record.probes_lost = self._probes_lost - lost_before
                self._record_query(record)

            self._strategy_for(peer).record_upload(
                answerer, popularity=len(sharers)
            )
            if exchanges is not None:
                edge = (answerer, peer)
                exchanges[edge] = exchanges.get(edge, 0) + 1
            self._add_to_cache(peer, file_key)

        state.unresolvable = unresolvable
        state.processed = processed
        if profiled:
            obs.record_span(
                "search/request_loop", clock() - run_start, start_s=run_start
            )
            obs.merge_counters(
                {
                    "requests": rates.requests,
                    "hits": rates.hits,
                    "one_hop_hits": rates.one_hop_hits,
                    "two_hop_hits": rates.two_hop_hits,
                    "fallbacks": rates.misses,
                    "contributions": rates.contributions,
                    "unresolvable": unresolvable,
                    "probes_lost": self._probes_lost,
                    "evictions": self._evictions,
                },
                prefix="search/",
            )
            obs.gauge("search/hit_rate", rates.hit_rate)

        return SimulationResult(
            config=config,
            rates=rates,
            load=load,
            num_peers=self.trace.num_clients,
            num_files=(
                self._compiled.num_files
                if self._compiled is not None
                else len(self.trace.distinct_files())
            ),
            unresolvable=unresolvable,
            probes_lost=self._probes_lost,
            evictions=self._evictions,
            rare_rates=rare_rates,
            exchanges=exchanges,
        )


def _fast_path_budget(list_size: int) -> int:
    """Work threshold below which the sharer-side two-hop check is cheaper
    than enumerating up to ``list_size**2`` second-hop contacts."""
    return list_size * list_size


def simulate_search(
    trace: StaticTrace,
    config: Optional[SearchConfig] = None,
    obs: Optional[Observer] = None,
    ctx: Optional["RunContext"] = None,
    use_compiled: bool = True,
    vectorized: bool = True,
) -> SimulationResult:
    """One-call helper: build a simulator and run it."""
    return SearchSimulator(
        trace,
        config,
        obs=obs,
        ctx=ctx,
        use_compiled=use_compiled,
        vectorized=vectorized,
    ).run()


# ----------------------------------------------------------------------
# Trace ablations (Sections 5.3.2 / 5.3.3)


def rank_uploaders(trace: StaticTrace) -> List[ClientId]:
    """Non-free-riders sorted by decreasing generosity (files shared)."""
    generosity = trace.generosity()
    sharers = [c for c, g in generosity.items() if g > 0]
    return sorted(sharers, key=lambda c: (-generosity[c], c))


def remove_top_uploaders(trace: StaticTrace, fraction: float) -> StaticTrace:
    """Drop the top ``fraction`` of non-free-riders by files shared.

    Mirrors "removal of the 5, 10 and 15% most generous uploaders from the
    non free-riders": the percentage is taken over sharers only.
    """
    check_fraction("fraction", fraction)
    ranked = rank_uploaders(trace)
    cutoff = int(round(fraction * len(ranked)))
    return trace.without_clients(ranked[:cutoff])


def rank_files_by_popularity(trace: StaticTrace) -> List[FileId]:
    """Files sorted by decreasing replica count (ties by id)."""
    counts = trace.replica_counts()
    return sorted(counts, key=lambda f: (-counts[f], f))


def remove_popular_files(trace: StaticTrace, fraction: float) -> StaticTrace:
    """Drop the top ``fraction`` of files by replica count from every cache."""
    check_fraction("fraction", fraction)
    ranked = rank_files_by_popularity(trace)
    cutoff = int(round(fraction * len(ranked)))
    return trace.without_files(ranked[:cutoff])
