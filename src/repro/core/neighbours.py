"""Semantic-neighbour list strategies (Section 5.2).

Each peer maintains a bounded, ordered list of *semantic neighbours* — peers
that uploaded files to it in the past — and queries them before resorting to
the fall-back (server or flooding) search.  The strategies differ only in
how the list is maintained:

- **LRU**: the most recent uploader moves to the head; the tail is evicted
  when the list is full (the strategy the paper evaluates most).
- **History** (frequency-based): counters of successful uploads per peer;
  the list holds the peers with the highest counts.
- **Random**: the benchmark — ``capacity`` peers drawn uniformly from the
  current uploader population at query time, with no memory.
- **Popularity** (from Voulgaris et al. [30], discussed in Section 5.3.2):
  like History but each upload is weighted by the inverse popularity of the
  requested file, so rare-file uploaders — the semantically meaningful
  ones — dominate the list.

All strategies expose the same interface so the simulator can treat them
uniformly: ``ordered()`` (best neighbour first), ``contains``/``position``
(O(1) membership used by the fast two-hop path), and ``record_upload``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Optional, Sequence

from repro.trace.model import ClientId
from repro.util.rng import RngStream
from repro.util.validation import check_positive

STRATEGY_NAMES = ("lru", "history", "random", "popularity")


class NeighbourStrategy(ABC):
    """Interface of a per-peer semantic neighbour list."""

    def __init__(self, capacity: int) -> None:
        check_positive("capacity", capacity)
        self.capacity = capacity

    @abstractmethod
    def ordered(self) -> Sequence[ClientId]:
        """Current neighbour list, best-first, length <= capacity."""

    @abstractmethod
    def record_upload(self, uploader: ClientId, popularity: int = 1) -> None:
        """Notify the strategy that ``uploader`` served a file.

        ``popularity`` is the number of sources of the requested file at
        request time (only the Popularity strategy uses it)."""

    def contains(self, peer: ClientId) -> bool:
        """Is ``peer`` in the current list?

        The base default is an O(n) scan over :meth:`ordered` — correct
        for any strategy, including sampling ones where membership is
        only defined against a fresh draw (Random).  Strategies with
        materialized lists (LRU, History, Popularity, Fixed) override
        with true O(1) lookups that do **not** call :meth:`ordered`,
        which is what the two-hop fast path relies on.
        """
        return peer in self.ordered()

    def position(self, peer: ClientId) -> Optional[int]:
        """Index of ``peer`` in the ordered list, or None.

        O(n) by default; overridden with O(1) lookups alongside
        :meth:`contains`.
        """
        ordered = self.ordered()
        try:
            return list(ordered).index(peer)
        except ValueError:
            return None

    def members(self):
        """The current list as an RNG-free O(1) membership view, or None.

        Strategies with a materialized list (LRU, History, Popularity,
        Fixed) return a mapping/set whose ``in`` operator answers the
        same question as :meth:`contains` without consuming any RNG;
        the vectorized two-hop fast path unions these views to test many
        sharers at once.  Sampling strategies (Random), whose membership
        is only defined against a fresh draw, return None — callers must
        fall back to per-probe :meth:`contains` calls so the seeded draw
        pattern is preserved.
        """
        return None

    def evict(self, peer: ClientId) -> None:
        """Forget ``peer`` (dead-neighbour detection: it stopped answering).

        Strategies without learned state (Random, Fixed) ignore evictions —
        there is nothing to forget."""
        return

    def __len__(self) -> int:
        return len(self.ordered())


class LRUNeighbours(NeighbourStrategy):
    """Least-Recently-Used list: new uploader to the head, evict the tail."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._list: List[ClientId] = []
        self._members: Dict[ClientId, None] = {}

    def ordered(self) -> Sequence[ClientId]:
        return self._list

    def contains(self, peer: ClientId) -> bool:
        return peer in self._members

    def position(self, peer: ClientId) -> Optional[int]:
        if peer not in self._members:
            return None
        return self._list.index(peer)

    def members(self):
        return self._members

    def record_upload(self, uploader: ClientId, popularity: int = 1) -> None:
        if uploader in self._members:
            self._list.remove(uploader)
        else:
            self._members[uploader] = None
        self._list.insert(0, uploader)
        while len(self._list) > self.capacity:
            evicted = self._list.pop()
            del self._members[evicted]

    def evict(self, peer: ClientId) -> None:
        if peer in self._members:
            self._list.remove(peer)
            del self._members[peer]


class _ScoredNeighbours(NeighbourStrategy):
    """Shared machinery for score-ranked strategies (History, Popularity).

    Scores are kept for *all* past uploaders; the visible list is the top
    ``capacity`` by (score desc, recency desc).  Recency breaks ties
    deterministically — the most recent uploader wins, which matches the
    cache-management intuition and avoids arbitrary dict order.
    """

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._scores: Dict[ClientId, float] = {}
        self._recency: Dict[ClientId, int] = {}
        self._clock = 0
        self._cache: Optional[List[ClientId]] = None
        self._cache_set: Dict[ClientId, int] = {}

    def _bump(self, uploader: ClientId, amount: float) -> None:
        self._scores[uploader] = self._scores.get(uploader, 0.0) + amount
        self._clock += 1
        self._recency[uploader] = self._clock
        self._cache = None

    def _ensure_ranked(self) -> None:
        """Rebuild the ranked view if dirty (amortized O(1) when clean)."""
        if self._cache is None:
            ranked = sorted(
                self._scores,
                key=lambda peer: (-self._scores[peer], -self._recency[peer]),
            )
            self._cache = ranked[: self.capacity]
            self._cache_set = {peer: i for i, peer in enumerate(self._cache)}

    def ordered(self) -> Sequence[ClientId]:
        self._ensure_ranked()
        return self._cache

    def contains(self, peer: ClientId) -> bool:
        # O(1) once ranked; deliberately does not route through
        # ordered() so membership probes are cheap and countable apart
        # from full-list enumerations.
        self._ensure_ranked()
        return peer in self._cache_set

    def position(self, peer: ClientId) -> Optional[int]:
        self._ensure_ranked()
        return self._cache_set.get(peer)

    def members(self):
        self._ensure_ranked()
        return self._cache_set

    def evict(self, peer: ClientId) -> None:
        if peer in self._scores:
            del self._scores[peer]
            self._recency.pop(peer, None)
            self._cache = None


class HistoryNeighbours(_ScoredNeighbours):
    """Frequency-based list: count successful uploads per peer."""

    def record_upload(self, uploader: ClientId, popularity: int = 1) -> None:
        self._bump(uploader, 1.0)


class PopularityNeighbours(_ScoredNeighbours):
    """Popularity-weighted list ([30]): rare-file uploads score higher.

    An upload of a file with ``popularity`` current sources scores
    ``1/popularity``, so peers that serve rare files — the signature of a
    genuine shared interest — are retained preferentially.
    """

    def record_upload(self, uploader: ClientId, popularity: int = 1) -> None:
        self._bump(uploader, 1.0 / max(1, popularity))


class FixedNeighbours(NeighbourStrategy):
    """A frozen neighbour list (e.g. a converged gossip view).

    Uploads leave no trace: the list is whatever it was built with.  Used
    to evaluate *proactively* constructed semantic views (the epidemic
    overlay of :mod:`repro.overlay`) inside the trace-driven simulator,
    against the reactive strategies that learn from uploads.
    """

    def __init__(self, capacity: int, members: Sequence[ClientId]) -> None:
        super().__init__(capacity)
        self._list: List[ClientId] = list(members)[:capacity]
        self._positions = {peer: i for i, peer in enumerate(self._list)}

    def ordered(self) -> Sequence[ClientId]:
        return self._list

    def contains(self, peer: ClientId) -> bool:
        return peer in self._positions

    def position(self, peer: ClientId) -> Optional[int]:
        return self._positions.get(peer)

    def members(self):
        return self._positions

    def record_upload(self, uploader: ClientId, popularity: int = 1) -> None:
        return


class RandomNeighbours(NeighbourStrategy):
    """The benchmark: a fresh uniform sample of uploaders at every query.

    ``population`` is a callable returning the current list of peers that
    share at least one file (maintained by the simulator); free-riders never
    appear since they share nothing.

    Random keeps the base-class O(n) ``contains``/``position`` *on
    purpose*: membership is only defined against a fresh sample, so each
    probe must call :meth:`ordered` (and consume RNG draws) — seeded
    runs depend on exactly that draw pattern.
    """

    def __init__(
        self,
        capacity: int,
        rng: RngStream,
        population: Callable[[], Sequence[ClientId]],
        owner: Optional[ClientId] = None,
    ) -> None:
        super().__init__(capacity)
        self._rng = rng
        self._population = population
        self._owner = owner
        self._current: List[ClientId] = []

    def ordered(self) -> Sequence[ClientId]:
        pool = [p for p in self._population() if p != self._owner]
        self._current = self._rng.sample_without_replacement(pool, self.capacity)
        return self._current

    def record_upload(self, uploader: ClientId, popularity: int = 1) -> None:
        # Memoryless by design: uploads leave no trace.
        return


def make_strategy(
    name: str,
    capacity: int,
    rng: Optional[RngStream] = None,
    population: Optional[Callable[[], Sequence[ClientId]]] = None,
    owner: Optional[ClientId] = None,
) -> NeighbourStrategy:
    """Factory keyed by strategy name (see ``STRATEGY_NAMES``)."""
    lowered = name.lower()
    if lowered == "lru":
        return LRUNeighbours(capacity)
    if lowered == "history":
        return HistoryNeighbours(capacity)
    if lowered == "popularity":
        return PopularityNeighbours(capacity)
    if lowered == "random":
        if rng is None or population is None:
            raise ValueError("random strategy needs rng and population")
        return RandomNeighbours(capacity, rng, population, owner)
    raise ValueError(
        f"unknown strategy {name!r}; expected one of {STRATEGY_NAMES}"
    )
