"""Batched draw kernels, byte-identical to ``random.Random``.

The request/search hot paths draw one ``randrange``/``shuffle`` value per
event through CPython's ``random.Random``, which costs a Python-level
method call (plus the ``getrandbits`` rejection loop) per draw.  This
module removes that per-draw overhead *without changing a single draw*:

- :class:`WordMirror` moves a ``random.Random``'s Mersenne-Twister state
  into a ``numpy.random.MT19937`` bit generator, pulls raw 32-bit words
  in bulk (``random_raw`` produces exactly the ``genrand_uint32``
  sequence CPython's ``getrandbits`` consumes), and writes the advanced
  state back — so the Python object continues the sequence as if it had
  made every call itself.
- :class:`WordStream` buffers those words in chunks and serves draws
  under CPython's ``_randbelow`` model: ``k = n.bit_length()``, candidate
  ``word >> (32 - k)``, rejected while ``>= n``.  The shift is applied to
  the whole chunk at once (one vectorized ``>>`` per distinct bit length);
  the accept test runs in *batch* methods whose tight local-variable loops
  produce many accepted draws per call, so stream consumers pay one list
  index per event instead of one method call per draw.

Batches never span a chunk refill once they hold an accepted draw, and
every draw carries its end position in the chunk, so a consumer that must
abandon buffered draws (the uniform request stream, whose modulus changes
when a peer exhausts) can :meth:`~WordStream.rewind_to` the word after
its last consumed draw and re-derive — the word sequence is untouched,
hence so is every future draw.

Consumers hold one stream per ``random.Random`` (the mirror advances the
shared state, so the stream must own it exclusively) and interleave
batch and scalar calls freely; word consumption order is identical to
the scalar calls they replace, so seeded sequences are byte-identical
(pinned by ``tests/core/test_vectorized_equivalence.py``).

numpy is imported lazily (mirroring ``repro.trace.compiled._get_sparse``)
so processes that never draw — store-only tools, CLI ``--help`` — do not
pay the import cost.  Without numpy, :func:`word_stream` returns None and
callers fall back to the scalar engine.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

_np = None
_np_checked = False

#: Words fetched from the bit generator per refill.  Big enough to
#: amortize the two state round-trips (~624-word tuples) per batch,
#: small enough that a checkpoint pickle of the unconsumed tail stays
#: a few tens of kilobytes.
CHUNK_WORDS = 8192


def _get_np():
    """Import numpy on first use, not at module import (see docstring)."""
    global _np, _np_checked
    if not _np_checked:
        _np_checked = True
        try:
            import numpy as _np_mod
        except ImportError:  # pragma: no cover - only without numpy
            _np_mod = None
        _np = _np_mod
    return _np


class WordMirror:
    """Bulk access to a ``random.Random``'s 32-bit word stream.

    Each :meth:`take` advances the mirrored Python object past the words
    it hands out, so scalar calls on the same ``random.Random`` before or
    after a take continue the one true sequence.
    """

    __slots__ = ("_py",)

    def __init__(self, py_random) -> None:
        self._py = py_random

    def take(self, n: int):
        """The next ``n`` raw words as a numpy uint64 array."""
        np = _get_np()
        version, state, gauss_next = self._py.getstate()
        if version != 3:  # pragma: no cover - CPython invariant
            raise RuntimeError(f"unsupported Random state version {version}")
        bit_gen = np.random.MT19937()
        bit_gen.state = {
            "bit_generator": "MT19937",
            "state": {
                "key": np.asarray(state[:-1], dtype=np.uint64),
                "pos": state[-1],
            },
        }
        words = bit_gen.random_raw(n)
        advanced = bit_gen.state["state"]
        self._py.setstate(
            (
                version,
                tuple(int(w) for w in advanced["key"])
                + (int(advanced["pos"]),),
                gauss_next,
            )
        )
        return words


class WordStream:
    """Chunked draw server over one ``random.Random``.

    Not thread-safe; exactly one stream may wrap a given ``Random`` at a
    time.  Pickling drops the wrapped ``Random`` — the owner re-attaches
    it on unpickle via :meth:`attach` — and carries the unconsumed words,
    so a checkpoint taken mid-chunk resumes the exact word sequence.
    """

    __slots__ = ("_mirror", "_words", "_cands", "_raw", "_pos", "_len", "_chunk")

    def __init__(self, py_random, chunk: int = CHUNK_WORDS) -> None:
        self._mirror = WordMirror(py_random)
        self._chunk = chunk
        self._words = None
        self._cands = {}
        self._raw = None
        self._pos = 0
        self._len = 0

    def attach(self, py_random) -> None:
        """Re-bind the underlying ``Random`` (after unpickling)."""
        self._mirror = WordMirror(py_random)

    def _refill(self) -> None:
        self._words = self._mirror.take(self._chunk)
        self._cands = {}
        self._raw = None
        self._pos = 0
        self._len = self._chunk

    def _cand_arr(self, k: int):
        cands = self._cands.get(k)
        if cands is None:
            np = _get_np()
            # One vectorized shift per distinct bit length per chunk.
            self._cands[k] = cands = self._words >> np.uint64(32 - k)
        return cands

    def _raw_list(self) -> List[int]:
        """The chunk's raw words as plain Python ints, cached per chunk.

        The scalar walk paths index this list and shift per draw — one
        amortized ``tolist`` per chunk beats a numpy scalar index (and
        ``getrandbits``) per word.
        """
        raw = self._raw
        if raw is None:
            self._raw = raw = self._words.tolist()
        return raw

    @property
    def mark(self) -> int:
        """Current position in the chunk (for :meth:`rewind_to`)."""
        return self._pos

    def rewind_to(self, mark: int) -> None:
        """Un-consume words back to ``mark`` (within the current chunk).

        Draws re-derived from the rewound words are identical to the
        abandoned ones, so a rewind is invisible to the draw sequence —
        it exists so consumers can drop speculative batches.
        """
        if mark > self._pos:
            raise ValueError(f"cannot rewind forward ({mark} > {self._pos})")
        self._pos = mark

    # ------------------------------------------------------------------
    # Draws

    def randrange(self, n: int) -> int:
        """``random.Random.randrange(n)``, word-for-word identical."""
        shift = 32 - n.bit_length()
        pos = self._pos
        if pos >= self._len:
            self._refill()
            pos = 0
        raw = self._raw_list()
        r = raw[pos] >> shift
        pos += 1
        while r >= n:
            if pos >= self._len:
                self._refill()
                pos = 0
                raw = self._raw_list()
            r = raw[pos] >> shift
            pos += 1
        self._pos = pos
        return r

    def fixed_batch(
        self, n: int, count: int
    ) -> Tuple[List[int], List[int]]:
        """Up to ``count`` draws of ``randrange(n)`` plus end positions.

        Returns ``(draws, marks)`` where ``marks[t]`` is the chunk
        position immediately after draw ``t`` — :meth:`rewind_to` it to
        abandon every later draw.  The batch may return fewer than
        ``count`` draws (the caller refills) but always at least one,
        never spans a refill once it holds a draw, and leaves no
        partially-consumed rejection run past its last draw.

        Small batches walk the cached raw-word list (numpy call overhead
        would dwarf the work); large ones are one vectorized compare +
        ``flatnonzero`` over a bounded window of the chunk.
        """
        if count <= 48:
            return self._fixed_scalar(n, count)
        np = _get_np()
        k = n.bit_length()
        window = 4 * count
        while True:
            pos = self._pos
            if pos >= self._len:
                self._refill()
                pos = 0
            seg = self._cand_arr(k)[pos : pos + window]
            ok = np.flatnonzero(seg < n)
            if ok.size:
                take = ok[:count]
                marks = (take + (pos + 1)).tolist()
                draws = seg[take].tolist()
                self._pos = marks[-1]
                return draws, marks
            # The whole window rejected: consume it and scan on.
            self._pos = pos + seg.size

    def _fixed_scalar(
        self, n: int, count: int
    ) -> Tuple[List[int], List[int]]:
        """Raw-word walk for :meth:`fixed_batch` (same contract)."""
        shift = 32 - n.bit_length()
        pos = self._pos
        if pos >= self._len:
            self._refill()
            pos = 0
        raw = self._raw_list()
        length = self._len
        draws: List[int] = []
        marks: List[int] = []
        for _ in range(count):
            while True:
                if pos >= length:
                    if draws:
                        # Rewind the unfinished draw's rejection words:
                        # no partial state may outlive the batch.
                        self._pos = marks[-1]
                        return draws, marks
                    self._refill()
                    pos = 0
                    raw = self._raw_list()
                    length = self._len
                r = raw[pos] >> shift
                pos += 1
                if r < n:
                    break
            draws.append(r)
            marks.append(pos)
        self._pos = pos
        return draws, marks

    def countdown_batch(
        self, start: int, count: int
    ) -> Tuple[List[int], List[int]]:
        """Up to ``count`` draws for moduli ``start, start-1, ...``.

        The draw sequence of ``randrange(start), randrange(start-1), ...``
        — the exact moduli the weighted request stream and Fisher-Yates
        shuffles consume.  Same ``(draws, marks)`` contract as
        :meth:`fixed_batch`.

        Vectorization solves the sequential accept recurrence —
        ``accept_i  iff  cand_i + (#accepts before i) < start`` — by
        fixpoint iteration on the accept mask (compare + exclusive
        ``cumsum`` per round).  The recurrence's solution is *unique*
        (position 0 is mask-independent and each later position depends
        only on the prefix, so by induction any stable mask is the
        sequential one), hence a verified fixpoint is exact; the rare
        non-converged window falls back to the scalar walk.
        """
        if start <= 256 or count <= 8:
            # Small moduli/counts (per-peer shuffles, stream end-games):
            # numpy call overhead dwarfs the work — walk words scalar-ly.
            return self._countdown_scalar(start, count)
        np = _get_np()
        n = start
        k = n.bit_length()
        low = 1 << (k - 1)
        # Clamp so every modulus the batch can reach keeps bit length k
        # (the per-word shift is uniform across the batch).
        count = min(count, n - low + 1)
        if count <= 8:
            return self._countdown_scalar(start, count)
        # Words needed ≈ count / accept-rate; accept-rate = n / 2^k ≥ ½.
        window = (count << k) // n + 64
        while True:
            pos = self._pos
            if pos >= self._len:
                self._refill()
                pos = 0
            seg = self._cand_arr(k)[pos : pos + window]
            s64 = seg.astype(np.int64)  # uint64 + int64 would promote to float
            mask = s64 < n
            for _ in range(8):
                before = np.cumsum(mask) - mask  # accepts strictly before i
                new_mask = (s64 + before) < n
                if np.array_equal(new_mask, mask):
                    break
                mask = new_mask
            else:
                return self._countdown_scalar(start, count)
            ok = np.flatnonzero(mask)
            if ok.size:
                take = ok[:count]
                marks = (take + (pos + 1)).tolist()
                draws = seg[take].tolist()
                self._pos = marks[-1]
                return draws, marks
            # The whole window rejected: consume it and scan on.
            self._pos = pos + seg.size

    def _countdown_scalar(
        self, start: int, count: int
    ) -> Tuple[List[int], List[int]]:
        """Raw-word walk for :meth:`countdown_batch` (same contract)."""
        n = start
        k = n.bit_length()
        low = 1 << (k - 1)
        shift = 32 - k
        pos = self._pos
        if pos >= self._len:
            self._refill()
            pos = 0
        raw = self._raw_list()
        length = self._len
        draws: List[int] = []
        marks: List[int] = []
        for _ in range(count):
            if n < low:
                low >>= 1
                shift += 1
            while True:
                if pos >= length:
                    if draws:
                        # Rewind the unfinished draw's rejection words:
                        # no partial state may outlive the batch.
                        self._pos = marks[-1]
                        return draws, marks
                    self._refill()
                    pos = 0
                    raw = self._raw_list()
                    length = self._len
                r = raw[pos] >> shift
                pos += 1
                if r < n:
                    break
            draws.append(r)
            marks.append(pos)
            n -= 1
        self._pos = pos
        return draws, marks

    def shuffle(self, values: list) -> None:
        """``random.Random.shuffle``, word-for-word identical."""
        i = len(values) - 1
        # Large prefixes come from the vectorized countdown; the tail is
        # an inline raw-word walk — no draw/mark lists, swaps applied as
        # words are accepted (a shuffle never abandons draws, so no
        # rewind bookkeeping is needed).
        while i >= 256:
            draws, _ = self.countdown_batch(i + 1, i)
            for j in draws:
                values[i], values[j] = values[j], values[i]
                i -= 1
        if i <= 0:
            return
        n = i + 1
        k = n.bit_length()
        low = 1 << (k - 1)
        shift = 32 - k
        pos = self._pos
        if pos >= self._len:
            self._refill()
            pos = 0
        raw = self._raw_list()
        length = self._len
        while i > 0:
            n = i + 1
            if n < low:
                low >>= 1
                shift += 1
            while True:
                if pos >= length:
                    self._pos = pos
                    self._refill()
                    pos = 0
                    raw = self._raw_list()
                    length = self._len
                j = raw[pos] >> shift
                pos += 1
                if j < n:
                    break
            values[i], values[j] = values[j], values[i]
            i -= 1
        self._pos = pos

    # ------------------------------------------------------------------
    # Pickling

    def __getstate__(self):
        remaining = b""
        if self._words is not None and self._pos < self._len:
            remaining = self._words[self._pos :].tobytes()
        return (self._chunk, remaining)

    def __setstate__(self, state) -> None:
        self._chunk, remaining = state
        self._mirror = None  # owner must call attach()
        self._cands = {}
        self._raw = None
        self._pos = 0
        if remaining:
            np = _get_np()
            self._words = np.frombuffer(remaining, dtype=np.uint64)
            self._len = len(self._words)
        else:
            self._words = None
            self._len = 0


def word_stream(py_random, chunk: int = CHUNK_WORDS) -> Optional[WordStream]:
    """A :class:`WordStream` over ``py_random``, or None without numpy."""
    if _get_np() is None:  # pragma: no cover - only without numpy
        return None
    return WordStream(py_random, chunk)
