"""Trace randomization (paper appendix).

Goal: modify a collection of peer cache contents so that **peer generosity**
(files per peer) and **file popularity** (replicas per file) are preserved,
while any other structure — in particular interest-based clustering — is
destroyed.

Algorithm (appendix, steps 1-4): pick peer ``u`` with probability
proportional to ``|C_u|``, a file ``f`` uniform in ``C_u``; likewise
``(v, f')``; swap ``f`` and ``f'`` between the two caches, unless the swap
would create a duplicate (``f' in C_u`` or ``f in C_v``), in which case it
is skipped.  Picking a peer proportionally to its cache size and then a
file uniformly within the cache is exactly a *uniform pick over replica
slots*, which is how we implement it: a flat array of (peer, file) slots,
two uniform indices per iteration, constant-time swap.

The appendix states that ``(1/2) * N * ln(N)`` iterations suffice for
mixing, where ``N`` is the total number of replicas; that schedule is the
default (see :func:`repro.util.zipf.swap_iterations`).

By default the swap state runs on the trace's compiled form — slots hold
interned file ints, so the per-iteration membership checks hash ints
instead of strings — and translates back to string ids only when a
snapshot is taken.  ``use_compiled=False`` keeps the original string
slots; the monotone intern makes slot order identical either way, and
each iteration draws the same two ``randrange`` values and accepts or
refuses the same swaps, so seeded outputs are byte-identical.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.trace.model import ClientId, FileId, StaticTrace
from repro.util.rng import RngStream
from repro.util.zipf import swap_iterations


class _SwapState:
    """Mutable replica-slot view of a static trace.

    With ``use_compiled`` the caches and slots hold interned file ints
    (see :mod:`repro.trace.compiled`); :meth:`cache_map` translates back
    to the public string ids, preserving the trace's client order.
    """

    def __init__(self, trace: StaticTrace, use_compiled: bool = True) -> None:
        self._file_ids = None
        if use_compiled:
            compiled = trace.compiled()
            self._file_ids = compiled.file_ids
            # Same client order as trace.caches; columns are sorted int
            # lists corresponding elementwise to sorted string caches.
            self.caches: Dict[ClientId, Set] = {
                peer: set(compiled.cache_column(peer))
                for peer in compiled.client_ids
            }
            self.slots: List[Tuple[ClientId, int]] = [
                (peer, file_idx)
                for peer in sorted(compiled.client_row)
                for file_idx in compiled.cache_column(peer)
            ]
        else:
            self.caches = trace.copy_mutable()
            self.slots = [
                (peer, file_id)
                for peer, cache in sorted(self.caches.items())
                for file_id in sorted(cache)
            ]

    def try_swap(self, i: int, j: int) -> bool:
        """Attempt to swap the files of slots ``i`` and ``j``.

        Refused (returns False) when the swap would duplicate a file within
        a cache: same peer, same file, or either target cache already holds
        the other file.
        """
        peer_u, file_f = self.slots[i]
        peer_v, file_g = self.slots[j]
        if peer_u == peer_v or file_f == file_g:
            return False
        cache_u = self.caches[peer_u]
        cache_v = self.caches[peer_v]
        if file_g in cache_u or file_f in cache_v:
            return False
        cache_u.discard(file_f)
        cache_u.add(file_g)
        cache_v.discard(file_g)
        cache_v.add(file_f)
        self.slots[i] = (peer_u, file_g)
        self.slots[j] = (peer_v, file_f)
        return True

    def cache_map(self) -> Dict[ClientId, Set[FileId]]:
        """Current caches as string-keyed sets (a snapshot copy)."""
        if self._file_ids is None:
            return {c: set(files) for c, files in self.caches.items()}
        file_ids = self._file_ids
        return {
            c: {file_ids[i] for i in files}
            for c, files in self.caches.items()
        }


def swap_once(state: _SwapState, rng: RngStream) -> bool:
    """One iteration of the appendix algorithm; True if a swap happened."""
    n = len(state.slots)
    if n < 2:
        return False
    i = rng.py.randrange(n)
    j = rng.py.randrange(n)
    return state.try_swap(i, j)


def randomize_trace(
    trace: StaticTrace,
    rng: RngStream,
    iterations: Optional[int] = None,
    use_compiled: bool = True,
) -> StaticTrace:
    """Return a randomized copy of ``trace``.

    ``iterations`` defaults to the appendix's ``(1/2)*N*ln(N)`` schedule.
    The result provably has the same generosity vector and popularity vector
    as the input (each accepted swap moves exactly one replica of each of
    two files between two caches of unchanged sizes).
    """
    n_replicas = trace.total_replicas()
    if n_replicas == 0:
        return trace.replace_caches({c: set() for c in trace.caches})
    if iterations is None:
        iterations = swap_iterations(n_replicas)
    state = _SwapState(trace, use_compiled=use_compiled)
    for _ in range(iterations):
        swap_once(state, rng)
    return trace.replace_caches(state.cache_map())


def randomization_schedule(
    trace: StaticTrace,
    rng: RngStream,
    checkpoints: List[int],
    use_compiled: bool = True,
) -> List[Tuple[int, StaticTrace]]:
    """Randomize progressively, snapshotting at each swap-count checkpoint.

    ``checkpoints`` are cumulative *iteration* counts (sorted ascending);
    returns ``[(count, trace_at_count), ...]``.  Used by the Figure 21
    experiment, which plots hit rate as a function of the number of
    swappings.
    """
    if checkpoints != sorted(checkpoints):
        raise ValueError("checkpoints must be sorted ascending")
    state = _SwapState(trace, use_compiled=use_compiled)
    out: List[Tuple[int, StaticTrace]] = []
    done = 0
    for target in checkpoints:
        if target < done:
            raise ValueError("checkpoints must be non-decreasing")
        for _ in range(target - done):
            swap_once(state, rng)
        done = target
        out.append((target, trace.replace_caches(state.cache_map())))
    return out
