"""Hit-rate, query-load and graceful-degradation accounting."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.faults.stats import FaultStats
from repro.trace.model import ClientId
from repro.util.cdf import Series


@dataclass
class HitRateAccumulator:
    """Counts search outcomes.

    ``one_hop_hits`` are requests answered by a direct semantic neighbour;
    ``two_hop_hits`` are requests answered only at the second hop (they are
    included in ``hits``).  ``contributions`` are first appearances of a
    file (no search happens).
    """

    requests: int = 0
    hits: int = 0
    one_hop_hits: int = 0
    two_hop_hits: int = 0
    contributions: int = 0

    @property
    def misses(self) -> int:
        return self.requests - self.hits

    @property
    def hit_rate(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests

    @property
    def one_hop_hit_rate(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.one_hop_hits / self.requests


@dataclass
class LoadTracker:
    """Messages (queries) received per client (Figure 22)."""

    messages: Counter = field(default_factory=Counter)

    def record(self, target: ClientId, count: int = 1) -> None:
        self.messages[target] += count

    @property
    def total_messages(self) -> int:
        return sum(self.messages.values())

    @property
    def num_loaded_clients(self) -> int:
        return len(self.messages)

    @property
    def max_load(self) -> int:
        if not self.messages:
            return 0
        return max(self.messages.values())

    def mean_load(self) -> float:
        if not self.messages:
            return 0.0
        return self.total_messages / len(self.messages)

    def by_rank(self) -> List[Tuple[int, int]]:
        """``(rank, messages)`` sorted by decreasing load (rank 0 = heaviest)."""
        ordered = sorted(self.messages.values(), reverse=True)
        return list(enumerate(ordered))

    def rank_series(self, name: str = "load") -> Series:
        series = Series(name=name)
        for rank, load in self.by_rank():
            series.append(rank, load)
        return series

    def top_loads(self, k: int = 3) -> List[int]:
        return sorted(self.messages.values(), reverse=True)[:k]


@dataclass
class DegradationReport:
    """How gracefully a run degraded under injected faults.

    Combines the injector's :class:`~repro.faults.stats.FaultStats` with
    the consumer's resilience accounting (retries, backoff, browse
    outcomes) and — when a fault-free baseline is available — the trace
    completeness ratio, the headline fidelity number: what fraction of
    the clean run's snapshots the hostile run still collected.
    """

    fault_stats: FaultStats
    browse_attempts: int = 0
    browse_succeeded: int = 0
    retries: int = 0
    backoff_seconds: float = 0.0
    snapshots: int = 0
    baseline_snapshots: Optional[int] = None

    @property
    def browse_success_rate(self) -> float:
        if self.browse_attempts == 0:
            return 0.0
        return self.browse_succeeded / self.browse_attempts

    @property
    def delivery_rate(self) -> float:
        return self.fault_stats.delivery_rate

    @property
    def completeness(self) -> Optional[float]:
        """Snapshots collected / fault-free snapshots (None: no baseline)."""
        if self.baseline_snapshots is None:
            return None
        if self.baseline_snapshots == 0:
            return 1.0 if self.snapshots == 0 else 0.0
        return self.snapshots / self.baseline_snapshots

    def as_dict(self) -> Dict[str, float]:
        out = self.fault_stats.as_dict()
        out.update(
            {
                "browse_attempts": float(self.browse_attempts),
                "browse_succeeded": float(self.browse_succeeded),
                "browse_success_rate": self.browse_success_rate,
                "consumer_retries": float(self.retries),
                "consumer_backoff_seconds": self.backoff_seconds,
                "snapshots": float(self.snapshots),
            }
        )
        if self.completeness is not None:
            out["trace_completeness"] = self.completeness
        return out

    def render(self) -> str:
        stats = self.fault_stats
        lines = [
            "degradation report:",
            f"  messages seen by injector: {stats.messages_total}"
            f" (dropped {stats.messages_dropped}, timed out {stats.timeouts},"
            f" malformed {stats.malformed_replies})",
            f"  delivery rate: {100 * self.delivery_rate:.1f}%",
            f"  unreachable-peer sends: {stats.peer_unreachable}, "
            f"dead-server sends: {stats.server_down_messages}",
            f"  server crashes: {stats.server_crashes}, recoveries: "
            f"{stats.server_recoveries}, clients re-homed: "
            f"{stats.clients_reassigned}",
            f"  retries: {self.retries} "
            f"(backoff {self.backoff_seconds:.1f}s simulated)",
            f"  browses: {self.browse_succeeded}/{self.browse_attempts} "
            f"succeeded ({100 * self.browse_success_rate:.1f}%)",
            f"  snapshots collected: {self.snapshots}",
        ]
        if self.completeness is not None:
            lines.append(
                f"  trace completeness vs fault-free baseline: "
                f"{100 * self.completeness:.1f}%"
            )
        return "\n".join(lines)


def build_degradation_report(
    fault_stats: FaultStats,
    crawl_stats,
    snapshots: int,
    baseline_snapshots: Optional[int] = None,
) -> DegradationReport:
    """Assemble a report from the injector's stats and a crawler's
    :class:`~repro.edonkey.crawler.CrawlStats` (duck-typed so the core
    layer does not import the protocol layer)."""
    return DegradationReport(
        fault_stats=fault_stats,
        browse_attempts=crawl_stats.browse_attempts,
        browse_succeeded=crawl_stats.browse_succeeded,
        retries=crawl_stats.browse_retries + crawl_stats.query_retries,
        backoff_seconds=crawl_stats.backoff_seconds,
        snapshots=snapshots,
        baseline_snapshots=baseline_snapshots,
    )
