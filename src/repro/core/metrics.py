"""Hit-rate and query-load accounting for the search simulations."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.trace.model import ClientId
from repro.util.cdf import Series


@dataclass
class HitRateAccumulator:
    """Counts search outcomes.

    ``one_hop_hits`` are requests answered by a direct semantic neighbour;
    ``two_hop_hits`` are requests answered only at the second hop (they are
    included in ``hits``).  ``contributions`` are first appearances of a
    file (no search happens).
    """

    requests: int = 0
    hits: int = 0
    one_hop_hits: int = 0
    two_hop_hits: int = 0
    contributions: int = 0

    @property
    def misses(self) -> int:
        return self.requests - self.hits

    @property
    def hit_rate(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests

    @property
    def one_hop_hit_rate(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.one_hop_hits / self.requests


@dataclass
class LoadTracker:
    """Messages (queries) received per client (Figure 22)."""

    messages: Counter = field(default_factory=Counter)

    def record(self, target: ClientId, count: int = 1) -> None:
        self.messages[target] += count

    @property
    def total_messages(self) -> int:
        return sum(self.messages.values())

    @property
    def num_loaded_clients(self) -> int:
        return len(self.messages)

    @property
    def max_load(self) -> int:
        if not self.messages:
            return 0
        return max(self.messages.values())

    def mean_load(self) -> float:
        if not self.messages:
            return 0.0
        return self.total_messages / len(self.messages)

    def by_rank(self) -> List[Tuple[int, int]]:
        """``(rank, messages)`` sorted by decreasing load (rank 0 = heaviest)."""
        ordered = sorted(self.messages.values(), reverse=True)
        return list(enumerate(ordered))

    def rank_series(self, name: str = "load") -> Series:
        series = Series(name=name)
        for rank, load in self.by_rank():
            series.append(rank, load)
        return series

    def top_loads(self, k: int = 3) -> List[int]:
        return sorted(self.messages.values(), reverse=True)[:k]
