"""The paper's primary contribution: server-less search via semantic
neighbours, plus the trace-randomization machinery used to isolate genuine
interest-based clustering.

- :mod:`repro.core.neighbours` — strategies for maintaining a peer's list
  of semantic neighbours (LRU, History, Random benchmark, and the
  popularity-weighted variant of Voulgaris et al. [30]);
- :mod:`repro.core.requests` — request-sequence generation from a static
  trace (Section 5.1's methodology);
- :mod:`repro.core.search` — the trace-driven simulator: one-hop and
  two-hop semantic search, hit-rate accounting, per-client query load, and
  the generous-uploader / popular-file ablations;
- :mod:`repro.core.randomization` — the appendix's swap-based trace
  randomization, preserving peer generosity and file popularity while
  destroying interest structure.
"""

from repro.core.neighbours import (
    HistoryNeighbours,
    LRUNeighbours,
    NeighbourStrategy,
    PopularityNeighbours,
    RandomNeighbours,
    make_strategy,
)
from repro.core.randomization import randomize_trace, swap_once
from repro.core.requests import Request, generate_requests
from repro.core.search import (
    SearchConfig,
    SearchSimulator,
    SimulationResult,
    remove_popular_files,
    remove_top_uploaders,
    simulate_search,
)

__all__ = [
    "HistoryNeighbours",
    "LRUNeighbours",
    "NeighbourStrategy",
    "PopularityNeighbours",
    "RandomNeighbours",
    "Request",
    "SearchConfig",
    "SearchSimulator",
    "SimulationResult",
    "generate_requests",
    "make_strategy",
    "randomize_trace",
    "remove_popular_files",
    "remove_top_uploaders",
    "simulate_search",
    "swap_once",
]
