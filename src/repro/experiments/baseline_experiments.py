"""Baseline experiments: the flooding-cost estimate from Section 3 and a
comparison of search mechanisms."""

from __future__ import annotations

from repro.analysis.popularity import max_spread_fraction
from repro.baselines.flooding import expected_contacts, measure_flooding
from repro.baselines.random_walk import measure_random_walk
from repro.baselines.server_search import ServerLookup
from typing import Optional

from repro.core.search import SearchConfig, simulate_search
from repro.experiments.result import ExperimentResult
from repro.runtime import DEFAULT_SEED, RunContext, Scale, experiment
from repro.util.tables import format_table


@experiment(
    "flooding",
    artefact="Section 3",
    description="Flooding/random-walk cost vs the analytic 1/spread estimate",
)
def run_flooding_estimate(
    scale: Scale = Scale.DEFAULT,
    seed: int = DEFAULT_SEED,
    ctx: Optional[RunContext] = None,
) -> ExperimentResult:
    """Section 3's flooding estimate: with the most popular file spread on a
    fraction p of peers, ~1/p random contacts are needed; measured flooding
    over a random overlay should agree in order of magnitude."""
    ctx = RunContext.ensure(ctx, scale=scale, seed=seed)
    seed = ctx.seed
    temporal = ctx.filtered_trace()
    spread = max_spread_fraction(temporal)
    analytic = expected_contacts(spread) if spread > 0 else float("inf")

    static = ctx.static_trace()
    flood = measure_flooding(static, num_queries=300, seed=seed)
    walk = measure_random_walk(static, num_queries=300, seed=seed)

    table = format_table(
        ("mechanism", "hit rate", "mean contacts"),
        [
            ("analytic 1/spread (most popular file)", "-", f"{analytic:.0f}"),
            ("flooding (until hit)", f"{100 * flood['hit_rate']:.0f}%", f"{flood['mean_contacts']:.0f}"),
            ("random walk (4x64)", f"{100 * walk['hit_rate']:.0f}%", f"{walk['mean_contacts']:.0f}"),
        ],
        title="Flooding / random-walk cost",
    )
    return ExperimentResult(
        experiment_id="flooding-estimate",
        title="Cost of unstructured search (Section 3 estimate)",
        table_text=table,
        metrics={
            "max_spread": spread,
            "analytic_contacts": analytic,
            "flooding_mean_contacts": flood["mean_contacts"],
            "flooding_hit_rate": flood["hit_rate"],
            "walk_hit_rate": walk["hit_rate"],
        },
        notes="paper: max spread < 0.7% => ~143 peers contacted on average",
    )


@experiment(
    "mechanisms",
    artefact="Section 5 (extension)",
    description="Semantic neighbours vs flooding, random walk and a server",
)
def run_mechanism_comparison(
    scale: Scale = Scale.DEFAULT,
    seed: int = DEFAULT_SEED,
    list_size: int = 20,
    ctx: Optional[RunContext] = None,
) -> ExperimentResult:
    """Head-to-head: semantic neighbours vs flooding vs random walk vs
    central server, on the same static workload."""
    ctx = RunContext.ensure(ctx, scale=scale, seed=seed)
    seed = ctx.seed
    static = ctx.static_trace()

    semantic = simulate_search(
        static,
        SearchConfig(list_size=list_size, strategy="lru", track_load=False, seed=seed),
    )
    flood = measure_flooding(static, num_queries=300, seed=seed)
    walk = measure_random_walk(static, num_queries=300, seed=seed)
    lookup = ServerLookup.from_trace(static)
    # Central server: every request for a shared file hits, cost 1 message.
    server_hit_rate = 1.0

    rows = [
        (
            f"semantic LRU-{list_size}",
            f"{100 * semantic.hit_rate:.0f}%",
            f"{list_size}",
        ),
        ("flooding", f"{100 * flood['hit_rate']:.0f}%", f"{flood['mean_contacts']:.0f}"),
        ("random walk", f"{100 * walk['hit_rate']:.0f}%", f"{walk['mean_contacts']:.0f}"),
        ("central server", f"{100 * server_hit_rate:.0f}%", "1"),
    ]
    table = format_table(
        ("mechanism", "hit rate", "max contacts per query"),
        rows,
        title="Search mechanism comparison",
    )
    return ExperimentResult(
        experiment_id="mechanism-comparison",
        title="Semantic neighbours vs unstructured and central baselines",
        table_text=table,
        metrics={
            "semantic_hit_rate": semantic.hit_rate,
            "flooding_mean_contacts": flood["mean_contacts"],
            "server_index_entries": float(lookup.index_size()),
        },
        notes="semantic search answers a large share of queries with "
        f"{list_size} messages and no server state",
    )
