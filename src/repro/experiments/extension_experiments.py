"""Further extension experiments on the search simulator.

- :func:`run_strategy_comparison` — all four neighbour strategies,
  overall and on the rare-file subset.  Section 5.3.2 singles out the
  popularity algorithm of [30] as the way to keep rare-file specialists
  in the lists; this experiment quantifies exactly that claim.
- :func:`run_availability_sweep` — hit rate under peer churn.  The
  availability studies the paper cites (Overnet's turnover) motivate the
  question: do semantic lists still work when a third of the neighbours
  are offline at any moment?
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.search import SearchConfig, simulate_search
from repro.experiments.result import ExperimentResult
from repro.runtime import DEFAULT_SEED, RunContext, Scale, experiment
from repro.util.cdf import Series
from repro.util.tables import format_table

STRATEGIES = ("lru", "history", "popularity", "random")


@experiment(
    "strategies",
    artefact="Section 5.3.2",
    description="All four neighbour strategies, overall and on rare requests",
)
def run_strategy_comparison(
    scale: Scale = Scale.DEFAULT,
    seed: int = DEFAULT_SEED,
    list_size: int = 20,
    rare_max_replicas: int = 3,
    ctx: Optional[RunContext] = None,
) -> ExperimentResult:
    """Hit rates of every strategy, overall and on rare *requests*.

    Rare hit rates are measured inside the full mixed workload (via the
    simulator's ``rare_cutoff`` tracker), because the phenomenon of
    interest is list pollution: requests for popular files fill the list
    with peers that are useless for the next rare query.
    """
    ctx = RunContext.ensure(ctx, scale=scale, seed=seed)
    seed = ctx.seed
    trace = ctx.static_trace()

    rows = []
    metrics: Dict[str, float] = {}
    for strategy in STRATEGIES:
        result = simulate_search(
            trace,
            SearchConfig(
                list_size=list_size,
                strategy=strategy,
                track_load=False,
                rare_cutoff=rare_max_replicas,
                seed=seed,
            ),
        )
        overall = result.hit_rate
        assert result.rare_rates is not None
        rare = result.rare_rates.hit_rate
        rows.append(
            (strategy.upper(), f"{100 * overall:.0f}%", f"{100 * rare:.0f}%")
        )
        metrics[f"{strategy}_overall"] = overall
        metrics[f"{strategy}_rare"] = rare

    table = format_table(
        ("strategy", "all files", f"rare files (<= {rare_max_replicas} replicas)"),
        rows,
        title=f"Neighbour strategies at list size {list_size}",
    )
    return ExperimentResult(
        experiment_id="strategy-comparison",
        title="LRU vs History vs Popularity vs Random, overall and rare",
        table_text=table,
        metrics=metrics,
        notes="[30]'s popularity weighting keeps rare-file specialists in "
        "the list: its rare-file hit rate should lead the pack while the "
        "random benchmark collapses on rare files",
    )


@experiment(
    "sensitivity",
    artefact="Figure 21 (extension)",
    description="Robustness sweep over the interest-loyalty parameter",
)
def run_loyalty_sensitivity(
    scale: Scale = Scale.DEFAULT,
    seed: int = DEFAULT_SEED,
    loyalties: Sequence[float] = (0.5, 0.7, 0.9),
    list_size: int = 10,
    ctx: Optional[RunContext] = None,
) -> ExperimentResult:
    """Robustness sweep over ``interest_loyalty``, the one parameter the
    whole reproduction hinges on.

    For each loyalty level: LRU hit rate, the randomized-trace floor, and
    their difference (the semantic share of Figure 21).  The paper's
    conclusions are robust if the semantic share grows monotonically with
    loyalty and remains substantial well below the calibrated 0.9.
    """
    import dataclasses

    from repro.core.randomization import randomize_trace
    from repro.util.rng import RngStream
    from repro.workload.generator import SyntheticWorkloadGenerator

    ctx = RunContext.ensure(ctx, scale=scale, seed=seed)
    seed = ctx.seed
    rows = []
    metrics: Dict[str, float] = {}
    for loyalty in loyalties:
        config = dataclasses.replace(
            ctx.workload(), interest_loyalty=loyalty
        )
        generator = SyntheticWorkloadGenerator(config=config, seed=seed)
        static = generator.generate_static()
        aliases = [
            p.meta.client_id for p in generator.profiles if p.alias_of is not None
        ]
        static = static.without_clients(aliases)
        hit = simulate_search(
            static,
            SearchConfig(
                list_size=list_size, strategy="lru", track_load=False, seed=seed
            ),
        ).hit_rate
        floor = simulate_search(
            randomize_trace(static, RngStream(seed, f"loyalty[{loyalty:g}]")),
            SearchConfig(
                list_size=list_size, strategy="lru", track_load=False, seed=seed
            ),
        ).hit_rate
        share = hit - floor
        rows.append(
            (f"{loyalty:.1f}", f"{100 * hit:.0f}%", f"{100 * floor:.0f}%",
             f"{100 * share:.0f}%")
        )
        key = f"{loyalty:g}".replace(".", "_")
        metrics[f"hit_at_{key}"] = hit
        metrics[f"floor_at_{key}"] = floor
        metrics[f"share_at_{key}"] = share
    table = format_table(
        ("interest loyalty", f"LRU-{list_size} hit", "randomized floor",
         "semantic share"),
        rows,
        title="Sensitivity to the interest-loyalty parameter",
    )
    return ExperimentResult(
        experiment_id="loyalty-sensitivity",
        title="Robustness of the headline results to interest loyalty",
        table_text=table,
        metrics=metrics,
        notes="the semantic share should grow with loyalty and stay "
        "substantial well below the calibrated value — the conclusions do "
        "not balance on a parameter knife-edge",
    )


@experiment(
    "extrapolation",
    artefact="Section 4 (extension)",
    description="Sensitivity of clustering metrics to the gap-fill rule",
    # The gap-fill ablation compares clustering on raw cache maps, the
    # one engine family that refuses compiled/vectorized input (its
    # subsampling draws in cache-map iteration order).
    sequential_only=True,
)
def run_extrapolation_ablation(
    scale: Scale = Scale.DEFAULT,
    seed: int = DEFAULT_SEED,
    ctx: Optional[RunContext] = None,
) -> ExperimentResult:
    """Sensitivity of the clustering metrics to the extrapolation rule.

    DESIGN.md commits to the paper's pessimistic intersection fill; this
    ablation quantifies how much that choice matters by recomputing the
    clustering-correlation headline (P(another common file | 1 common))
    and mean cache sizes under all three fill rules.  Per cache the rules
    are ordered (intersection ⊆ previous ⊆ union), but at realistic churn
    (~5 adds/day on ~50-file caches over 1-2 day gaps) the aggregate
    metrics barely move — evidence that the paper's conservative choice
    does not drive its clustering results.
    """
    from repro.analysis.semantic import clustering_correlation
    from repro.trace.extrapolation import FILL_MODES, ExtrapolationConfig, extrapolate

    ctx = RunContext.ensure(ctx, scale=scale, seed=seed)
    filtered = ctx.filtered_trace()
    rows = []
    metrics: Dict[str, float] = {}
    for fill in FILL_MODES:
        extrapolated = extrapolate(filtered, ExtrapolationConfig(fill=fill))
        days = extrapolated.days()
        day = days[len(days) // 8] if days else None
        if day is None:
            continue
        caches = {
            c: f for c, f in extrapolated.snapshots_on(day).items() if f
        }
        correlation = clustering_correlation(caches)
        p1 = correlation.ys[0] if correlation.ys else 0.0
        mean_cache = (
            sum(len(f) for f in caches.values()) / len(caches) if caches else 0.0
        )
        rows.append((fill, f"{p1:.1f}%", f"{mean_cache:.1f}"))
        metrics[f"{fill}_p1"] = p1
        metrics[f"{fill}_mean_cache"] = mean_cache
    table = format_table(
        ("fill rule", "P(another common | 1 common)", "mean cache size"),
        rows,
        title="Extrapolation-rule sensitivity (one analysis day)",
    )
    return ExperimentResult(
        experiment_id="extrapolation-ablation",
        title="Pessimistic vs optimistic gap filling",
        table_text=table,
        metrics=metrics,
        notes="the paper's intersection rule is the conservative bound: "
        "it can only under-state cache contents and thus clustering",
    )


@experiment(
    "exchange",
    artefact="Section 6",
    description="Exchange-graph structure: reciprocity, skew, communities",
)
def run_exchange_graph(
    scale: Scale = Scale.DEFAULT,
    seed: int = DEFAULT_SEED,
    list_size: int = 20,
    ctx: Optional[RunContext] = None,
) -> ExperimentResult:
    """The exchange graph of a full search run (Section 6's server-log
    observations: reciprocity, generous-uploader skew, dense communities)."""
    from repro.analysis.exchange_graph import summarize_exchanges

    ctx = RunContext.ensure(ctx, scale=scale, seed=seed)
    seed = ctx.seed
    trace = ctx.static_trace()
    result = simulate_search(
        trace,
        SearchConfig(
            list_size=list_size,
            strategy="lru",
            track_load=False,
            track_exchanges=True,
            seed=seed,
        ),
    )
    assert result.exchanges is not None
    summary = summarize_exchanges(result.exchanges)
    table = format_table(
        ("metric", "value"),
        summary.rows(),
        title="Exchange graph of the semantic-search run",
    )
    metrics: Dict[str, float] = {
        "nodes": float(summary.nodes),
        "edges": float(summary.edges),
        "reciprocity": summary.reciprocity,
        "degree_skew": summary.degree_skew,
        "clustering": summary.clustering,
        "largest_core": float(summary.largest_core),
    }
    return ExperimentResult(
        experiment_id="exchange-graph",
        title="Exchange-graph structure (reciprocity, skew, communities)",
        table_text=table,
        metrics=metrics,
        notes="paper-cited server logs: ~20% bidirectional edges, cliques "
        "of size 100+ among clients; the synthetic exchange graph shows "
        "the same reciprocity band and dense semantic communities",
    )


@experiment(
    "availability",
    artefact="Section 5 (extension)",
    description="LRU hit rate as peer availability degrades",
)
def run_availability_sweep(
    scale: Scale = Scale.DEFAULT,
    seed: int = DEFAULT_SEED,
    list_size: int = 20,
    availabilities: Sequence[float] = (1.0, 0.9, 0.7, 0.5, 0.3),
    ctx: Optional[RunContext] = None,
) -> ExperimentResult:
    """LRU hit rate as peer availability degrades."""
    ctx = RunContext.ensure(ctx, scale=scale, seed=seed)
    seed = ctx.seed
    trace = ctx.static_trace()
    series = Series(name=f"LRU-{list_size} hit rate vs availability (%)")
    metrics: Dict[str, float] = {}
    unresolvable_fraction: Dict[float, float] = {}
    for availability in availabilities:
        result = simulate_search(
            trace,
            SearchConfig(
                list_size=list_size,
                strategy="lru",
                track_load=False,
                availability=availability,
                seed=seed,
            ),
        )
        series.append(availability, 100.0 * result.hit_rate)
        metrics[f"hit@{availability:g}"] = result.hit_rate
        total_events = result.rates.requests + result.unresolvable
        unresolvable_fraction[availability] = (
            result.unresolvable / total_events if total_events else 0.0
        )
    metrics["unresolvable@0.5"] = unresolvable_fraction.get(0.5, 0.0)
    return ExperimentResult(
        experiment_id="availability-sweep",
        title="Semantic search under peer churn",
        series=[series],
        metrics=metrics,
        notes="hit rate degrades roughly linearly with availability (an "
        "offline neighbour is just a missed chance), and only requests "
        "whose every source is offline become unresolvable",
    )
