"""Extension experiment: how much traffic can AS-level PeerCaches keep
local, and how much of that is due to geographic clustering?

Three runs on the same workload shape:

1. index mode on the default workload (geo clustering planted);
2. index mode with ``geo_affinity = 0`` (ablation: no geographic
   clustering — the locality that remains is what AS size alone buys);
3. content mode with a per-AS byte budget (classic cacheability).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.cache.peercache import PeerCacheConfig, simulate_peercache
from repro.experiments.result import ExperimentResult
from repro.runtime import DEFAULT_SEED, RunContext, Scale, experiment, workload_config
from repro.util.tables import format_table
from repro.workload.generator import SyntheticWorkloadGenerator


def _build_static(scale: Scale, seed: int, geo_affinity: float):
    base = workload_config(scale)
    config = dataclasses.replace(
        base,
        interest_model=dataclasses.replace(
            base.interest_model, geo_affinity=geo_affinity
        ),
    )
    generator = SyntheticWorkloadGenerator(config=config, seed=seed)
    static = generator.generate_static()
    aliases = [
        p.meta.client_id for p in generator.profiles if p.alias_of is not None
    ]
    return static.without_clients(aliases)


@experiment(
    "peercache",
    artefact="Section 4.1 (extension)",
    description="AS-level PeerCache locality, with/without geo clustering",
)
def run_peercache(
    scale: Scale = Scale.DEFAULT,
    seed: int = DEFAULT_SEED,
    capacity_gb: int = 50,
    ctx: Optional[RunContext] = None,
) -> ExperimentResult:
    """PeerCache locality with and without geographic clustering."""
    ctx = RunContext.ensure(ctx, scale=scale, seed=seed)
    scale, seed = ctx.scale, ctx.seed
    clustered = _build_static(scale, seed, geo_affinity=0.7)
    unclustered = _build_static(scale, seed, geo_affinity=0.0)

    index_clustered = simulate_peercache(
        clustered, PeerCacheConfig(mode="index", seed=seed)
    )
    index_unclustered = simulate_peercache(
        unclustered, PeerCacheConfig(mode="index", seed=seed)
    )
    content = simulate_peercache(
        clustered,
        PeerCacheConfig(
            mode="content", capacity_bytes=capacity_gb * 1024**3, seed=seed
        ),
    )

    rows = [
        (
            "index (geo clustering on)",
            f"{100 * index_clustered.hit_rate:.0f}%",
            f"{100 * index_clustered.byte_locality:.0f}%",
        ),
        (
            "index (geo clustering off)",
            f"{100 * index_unclustered.hit_rate:.0f}%",
            f"{100 * index_unclustered.byte_locality:.0f}%",
        ),
        (
            f"content LRU ({capacity_gb} GB/AS)",
            f"{100 * content.hit_rate:.0f}%",
            f"{100 * content.byte_locality:.0f}%",
        ),
    ]
    table = format_table(
        ("cache", "requests served intra-AS", "bytes kept local"),
        rows,
        title="PeerCache: intra-AS service rates",
    )

    as_rows = [
        (asn, n, f"{100 * rate:.0f}%")
        for asn, n, rate in index_clustered.top_as_rows(5)
    ]
    as_table = format_table(
        ("AS", "requests", "intra-AS rate"),
        as_rows,
        title="Busiest autonomous systems (index mode, clustered)",
    )

    metrics: Dict[str, float] = {
        "index_hit_rate": index_clustered.hit_rate,
        "index_hit_rate_no_geo": index_unclustered.hit_rate,
        "index_byte_locality": index_clustered.byte_locality,
        "content_hit_rate": content.hit_rate,
        "content_byte_locality": content.byte_locality,
        "geo_clustering_gain": (
            index_clustered.hit_rate - index_unclustered.hit_rate
        ),
    }
    return ExperimentResult(
        experiment_id="peercache",
        title="AS-level PeerCache locality (Section 4.1 opportunity)",
        table_text=table + "\n\n" + as_table,
        metrics=metrics,
        notes="the clustered-vs-unclustered gap is the traffic the "
        "operators' caches save *because* peers in one AS share interests",
    )
