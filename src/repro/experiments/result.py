"""The common result type of all experiment runners."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.util.cdf import Series
from repro.util.tables import render_series


@dataclass
class ExperimentResult:
    """One reproduced table or figure.

    ``experiment_id`` matches the paper artefact (e.g. ``"figure-18"``),
    ``series`` carries figure curves, ``table_text`` carries pre-rendered
    tables, and ``metrics`` holds the headline scalar values that tests and
    EXPERIMENTS.md reference (e.g. ``{"lru@20": 0.41}``).
    """

    experiment_id: str
    title: str
    series: List[Series] = field(default_factory=list)
    table_text: str = ""
    metrics: Dict[str, float] = field(default_factory=dict)
    notes: str = ""
    #: provenance of runs that were assembled from checkpoints (e.g. the
    #: chaos harness's kill/resume history); recorded in the run manifest.
    lineage: Optional[Dict[str, object]] = None

    def render(self, max_points: int = 24) -> str:
        lines: List[str] = [f"=== {self.experiment_id}: {self.title} ==="]
        if self.table_text:
            lines.append(self.table_text)
        if self.series:
            lines.append(render_series(self.series, max_points=max_points))
        if self.metrics:
            metric_bits = ", ".join(
                f"{k}={v:.4g}" for k, v in sorted(self.metrics.items())
            )
            lines.append(f"metrics: {metric_bits}")
        if self.notes:
            lines.append(f"notes: {self.notes}")
        return "\n".join(lines)

    def metric(self, key: str) -> float:
        if key not in self.metrics:
            raise KeyError(
                f"metric {key!r} not in {sorted(self.metrics)} "
                f"for {self.experiment_id}"
            )
        return self.metrics[key]

    def series_named(self, name: str) -> Series:
        for series in self.series:
            if series.name == name:
                return series
        raise KeyError(
            f"series {name!r} not in {[s.name for s in self.series]}"
        )

    def to_csv(self) -> str:
        """Figure data as CSV: one ``series,x,y`` row per point, plus one
        ``metric,<name>,<value>`` row per metric.

        Meant for plotting the reproduced figures with external tools;
        quoting keeps series names with commas safe.
        """
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(("kind", "name_or_x", "value"))
        for series in self.series:
            for x, y in zip(series.xs, series.ys):
                writer.writerow((f"series:{series.name}", x, y))
        for name, value in sorted(self.metrics.items()):
            writer.writerow(("metric", name, value))
        return buffer.getvalue()

    def write_csv(self, path) -> None:
        """Write :meth:`to_csv` output to ``path``."""
        with open(path, "w", encoding="utf-8", newline="") as fh:
            fh.write(self.to_csv())
