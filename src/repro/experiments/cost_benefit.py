"""Capstone experiment: hit rate against message cost, per mechanism.

The paper's design argument is economic: semantic neighbour lists answer
a large share of queries for a handful of messages, where flooding burns
hundreds and a server costs one message *plus a server*.  This experiment
puts every mechanism in the library on the same axes — hit rate, mean
messages per request, and hits per 100 messages — over the identical
workload.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.flooding import measure_flooding
from repro.baselines.random_walk import measure_random_walk
from repro.core.search import SearchConfig, simulate_search
from repro.experiments.result import ExperimentResult
from repro.runtime import DEFAULT_SEED, RunContext, Scale, experiment
from repro.util.tables import format_table


def _semantic_row(trace, list_size: int, two_hop: bool, seed: int) -> Tuple[float, float]:
    result = simulate_search(
        trace,
        SearchConfig(
            list_size=list_size,
            strategy="lru",
            two_hop=two_hop,
            track_load=True,
            seed=seed,
        ),
    )
    requests = max(1, result.rates.requests)
    return result.hit_rate, result.load.total_messages / requests


@experiment(
    "cost-benefit",
    artefact="Section 5 (extension)",
    description="Hit rate vs message cost, every mechanism on one workload",
)
def run_cost_benefit(
    scale: Scale = Scale.DEFAULT,
    seed: int = DEFAULT_SEED,
    list_sizes: Sequence[int] = (5, 20),
    num_baseline_queries: int = 300,
    ctx: Optional[RunContext] = None,
) -> ExperimentResult:
    """Hit rate vs message cost for every search mechanism."""
    ctx = RunContext.ensure(ctx, scale=scale, seed=seed)
    seed = ctx.seed
    trace = ctx.static_trace()

    rows: List[Tuple[str, float, float]] = []
    metrics: Dict[str, float] = {}

    for list_size in list_sizes:
        for two_hop in (False, True):
            hit, msgs = _semantic_row(trace, list_size, two_hop, seed)
            label = f"semantic LRU-{list_size} ({'2' if two_hop else '1'}-hop)"
            rows.append((label, hit, msgs))
            key = f"lru{list_size}_{'2hop' if two_hop else '1hop'}"
            metrics[f"{key}_hit"] = hit
            metrics[f"{key}_msgs"] = msgs

    flood = measure_flooding(trace, num_queries=num_baseline_queries, seed=seed)
    rows.append(("flooding (until hit)", flood["hit_rate"], flood["mean_contacts"]))
    metrics["flooding_hit"] = flood["hit_rate"]
    metrics["flooding_msgs"] = flood["mean_contacts"]

    walk = measure_random_walk(trace, num_queries=num_baseline_queries, seed=seed)
    rows.append(("random walk (4x64)", walk["hit_rate"], walk["mean_contacts"]))
    metrics["walk_hit"] = walk["hit_rate"]
    metrics["walk_msgs"] = walk["mean_contacts"]

    rows.append(("central server", 1.0, 1.0))

    table_rows = []
    for label, hit, msgs in rows:
        efficiency = 100.0 * hit / msgs if msgs else 0.0
        table_rows.append(
            (label, f"{100 * hit:.0f}%", f"{msgs:.1f}", f"{efficiency:.1f}")
        )
        slug = (
            label.replace(" ", "_").replace("(", "").replace(")", "")
            .replace("-", "_").lower()
        )
        metrics.setdefault(f"eff_{slug}", efficiency)
    table = format_table(
        ("mechanism", "hit rate", "msgs/request", "hits per 100 msgs"),
        table_rows,
        title="Search economics on the same workload",
    )
    return ExperimentResult(
        experiment_id="cost-benefit",
        title="Hit rate vs message cost, all mechanisms",
        table_text=table,
        metrics=metrics,
        notes="the server wins on both axes but is the thing the title "
        "wants to remove; among server-less mechanisms, semantic lists "
        "dominate flooding by an order of magnitude in hits per message",
    )
