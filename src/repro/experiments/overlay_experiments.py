"""Extension experiment: the epidemic semantic overlay vs reactive LRU.

Compares the two ways of obtaining semantic neighbours on the same
workload and at the same list size:

- **reactive** (the paper, Section 5): LRU lists learned from uploads
  during the trace-driven request simulation;
- **proactive** (Voulgaris & van Steen, the system the paper's related
  work points to): Cyclon + Vicinity gossip converging to each peer's
  k-nearest semantic neighbours before any search happens.

Also reports convergence speed (rounds to reach 95% of the final hit
rate) — the practical cost of the proactive approach.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.search import SearchConfig, simulate_search
from repro.experiments.result import ExperimentResult
from repro.runtime import DEFAULT_SEED, RunContext, Scale, experiment
from repro.overlay.cyclon import CyclonConfig
from repro.overlay.simulator import OverlayConfig, SemanticOverlaySimulator
from repro.overlay.vicinity import VicinityConfig


@experiment(
    "overlay-vs-reactive",
    artefact="Section 5 (extension)",
    description="Converged gossip views vs reactive LRU on one workload",
)
def run_overlay_vs_reactive(
    scale: Scale = Scale.DEFAULT,
    seed: int = DEFAULT_SEED,
    view_size: int = 10,
    rounds: int = 15,
    ctx: Optional[RunContext] = None,
) -> ExperimentResult:
    """Plug converged gossip views into the *trace-driven* simulator.

    Three runs over the identical request stream:

    - ``lru cold``   — the paper's reactive baseline;
    - ``fixed``      — frozen overlay views (pure proactive);
    - ``lru warm``   — LRU lists warm-started from the overlay views and
      then learning as usual (the hybrid a real client would deploy).
    """
    ctx = RunContext.ensure(ctx, scale=scale, seed=seed)
    seed = ctx.seed
    trace = ctx.static_trace()
    simulator = SemanticOverlaySimulator(
        trace,
        OverlayConfig(
            rounds=rounds,
            cyclon=CyclonConfig(view_size=max(20, 2 * view_size)),
            vicinity=VicinityConfig(view_size=view_size),
            seed=seed,
        ),
    )
    simulator.run(measure_every=rounds)
    views = {
        peer: simulator.vicinity.view_of(peer) for peer in simulator.sharers
    }

    def hit(strategy: str, initial) -> float:
        return simulate_search(
            trace,
            SearchConfig(
                list_size=view_size,
                strategy=strategy,
                track_load=False,
                initial_lists=initial,
                seed=seed,
            ),
        ).hit_rate

    cold = hit("lru", None)
    fixed = hit("fixed", views)
    warm = hit("lru", views)

    metrics: Dict[str, float] = {
        "lru_cold": cold,
        "fixed_overlay": fixed,
        "lru_warm": warm,
    }
    return ExperimentResult(
        experiment_id="overlay-vs-reactive",
        title=f"Proactive, reactive and hybrid lists (k={view_size})",
        metrics=metrics,
        notes="finding: frozen converged views beat both LRU variants on "
        "a static workload — reactive updates *degrade* an already-"
        "optimal view by replacing k-NN neighbours with whoever uploaded "
        "last (including random fall-back sources); warm-starting still "
        "beats the cold start",
    )


@experiment(
    "overlay",
    artefact="Related work (Voulgaris & van Steen)",
    description="Epidemic semantic overlay: convergence and final hit rate",
)
def run_gossip_overlay(
    scale: Scale = Scale.DEFAULT,
    seed: int = DEFAULT_SEED,
    view_size: int = 10,
    rounds: int = 25,
    ctx: Optional[RunContext] = None,
) -> ExperimentResult:
    """Build the epidemic overlay and compare against reactive LRU."""
    ctx = RunContext.ensure(ctx, scale=scale, seed=seed)
    seed = ctx.seed
    trace = ctx.static_trace()

    simulator = SemanticOverlaySimulator(
        trace,
        OverlayConfig(
            rounds=rounds,
            cyclon=CyclonConfig(view_size=max(20, 2 * view_size)),
            vicinity=VicinityConfig(view_size=view_size),
            seed=seed,
        ),
    )
    overlay = simulator.run(measure_every=max(1, rounds // 10))

    lru = simulate_search(
        trace,
        SearchConfig(list_size=view_size, strategy="lru", track_load=False, seed=seed),
    )

    # Rounds until the overlay reaches 95% of its final hit rate.
    target = 0.95 * overlay.hit_rate_by_round.ys[-1]
    rounds_to_converge = next(
        (
            x
            for x, y in zip(
                overlay.hit_rate_by_round.xs, overlay.hit_rate_by_round.ys
            )
            if y >= target
        ),
        float(rounds),
    )

    metrics: Dict[str, float] = {
        "overlay_hit_rate": overlay.final_hit_rate,
        "overlay_initial_hit_rate": overlay.hit_rate_by_round.ys[0] / 100.0,
        "overlay_knn_quality": overlay.final_quality,
        "lru_hit_rate": lru.hit_rate,
        "rounds_to_converge": float(rounds_to_converge),
        "connected": float(overlay.connected),
    }
    return ExperimentResult(
        experiment_id="gossip-overlay",
        title=f"Epidemic semantic overlay vs reactive LRU (k={view_size})",
        series=[overlay.hit_rate_by_round, overlay.quality_by_round],
        metrics=metrics,
        notes="proactive gossip converges to the k-NN semantic graph in a "
        "few rounds and matches or beats upload-driven LRU lists of the "
        "same size (both answer queries without any server)",
    )
