"""Reproductions of the measurement-study artefacts: Table 1, Table 2 and
Figures 1-12."""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.contribution import (
    generosity_concentration,
    size_cdf_by_popularity,
    temporal_contribution_cdfs,
)
from repro.analysis.geographic import (
    country_histogram,
    home_locality_cdf,
    top_as_concentration,
    top_as_table,
)
from repro.analysis.popularity import (
    file_spread,
    max_spread_fraction,
    rank_evolution,
    rank_replication,
)
from repro.experiments.result import ExperimentResult
from repro.runtime import DEFAULT_SEED, RunContext, Scale, experiment
from repro.trace.stats import (
    daily_counts,
    discovery_curve,
    general_characteristics,
    new_files_per_client_per_day,
)
from repro.util.tables import format_table
from repro.util.zipf import fit_zipf_slope


@experiment(
    "table1",
    artefact="Table 1",
    description="General characteristics of the full/filtered/extrapolated traces",
)
def run_table1(
    scale: Scale = Scale.DEFAULT,
    seed: int = DEFAULT_SEED,
    ctx: Optional[RunContext] = None,
) -> ExperimentResult:
    """Table 1: general characteristics of the full / filtered /
    extrapolated traces."""
    ctx = RunContext.ensure(ctx, scale=scale, seed=seed)
    full = ctx.temporal_trace()
    filtered = ctx.filtered_trace()
    extrapolated = ctx.extrapolated_trace()

    rows = []
    metrics = {}
    for label, trace in (
        ("full", full),
        ("filtered", filtered),
        ("extrapolated", extrapolated),
    ):
        chars = general_characteristics(trace)
        rows.append(
            (
                label,
                chars.duration_days,
                chars.num_clients,
                chars.num_free_riders,
                f"{100 * chars.free_rider_fraction:.0f}%",
                chars.num_snapshots,
                chars.num_distinct_files,
                f"{chars.total_bytes_distinct_files / 1024**4:.2f} TB",
            )
        )
        metrics[f"{label}_clients"] = float(chars.num_clients)
        metrics[f"{label}_free_rider_fraction"] = chars.free_rider_fraction
        metrics[f"{label}_files"] = float(chars.num_distinct_files)
    metrics["full_snapshots"] = float(general_characteristics(full).num_snapshots)

    table = format_table(
        (
            "trace",
            "days",
            "clients",
            "free-riders",
            "fr%",
            "snapshots",
            "distinct files",
            "space",
        ),
        rows,
        title="Table 1: general characteristics",
    )
    return ExperimentResult(
        experiment_id="table-1",
        title="General characteristics of the trace",
        table_text=table,
        metrics=metrics,
        notes="paper: 84% free-riders (full), 70% (filtered), 74% (extrapolated)",
    )


@experiment(
    "fig1",
    artefact="Figure 1",
    description="Clients and shared files scanned per day",
)
def run_figure01(
    scale: Scale = Scale.DEFAULT,
    seed: int = DEFAULT_SEED,
    ctx: Optional[RunContext] = None,
) -> ExperimentResult:
    """Figure 1: clients and files scanned per day."""
    ctx = RunContext.ensure(ctx, scale=scale, seed=seed)
    trace = ctx.temporal_trace()
    clients, files, _ = daily_counts(trace)
    first_clients = clients.ys[0]
    last_clients = clients.ys[-1]
    return ExperimentResult(
        experiment_id="figure-1",
        title="Clients and shared files scanned per day",
        series=[clients, files],
        metrics={
            "clients_first_day": first_clients,
            "clients_last_day": last_clients,
            "decline_ratio": last_clients / first_clients if first_clients else 0.0,
        },
        notes="paper: 65k -> 35k clients/day (crawler bandwidth decline)",
    )


@experiment(
    "fig2",
    artefact="Figure 2",
    description="New and total files discovered per day",
)
def run_figure02(
    scale: Scale = Scale.DEFAULT,
    seed: int = DEFAULT_SEED,
    ctx: Optional[RunContext] = None,
) -> ExperimentResult:
    """Figure 2: new and total files discovered per day."""
    ctx = RunContext.ensure(ctx, scale=scale, seed=seed)
    trace = ctx.temporal_trace()
    new_files, total_files = discovery_curve(trace)
    rate = new_files_per_client_per_day(trace)
    tail_new = new_files.ys[-1]
    return ExperimentResult(
        experiment_id="figure-2",
        title="New / total files discovered over the trace",
        series=[new_files, total_files],
        metrics={
            "new_files_last_day": tail_new,
            "total_files": total_files.ys[-1],
            "new_files_per_client_per_day": rate,
        },
        notes="paper: still 100k new files/day after a month; ~5 new files "
        "per client per day",
    )


@experiment(
    "fig3",
    artefact="Figure 3",
    description="Files and non-empty caches per day (extrapolated trace)",
)
def run_figure03(
    scale: Scale = Scale.DEFAULT,
    seed: int = DEFAULT_SEED,
    ctx: Optional[RunContext] = None,
) -> ExperimentResult:
    """Figure 3: files and non-empty caches per day after extrapolation."""
    ctx = RunContext.ensure(ctx, scale=scale, seed=seed)
    trace = ctx.extrapolated_trace()
    _, files, non_empty = daily_counts(trace)
    return ExperimentResult(
        experiment_id="figure-3",
        title="Files and non-empty caches per day (extrapolated trace)",
        series=[files, non_empty],
        metrics={
            "min_daily_files": min(files.ys) if files.ys else 0.0,
            "min_daily_non_empty_caches": min(non_empty.ys) if non_empty.ys else 0.0,
        },
        notes="paper selected days 348-389 with >= 1M files and >= 7k caches",
    )


@experiment(
    "fig4",
    artefact="Figure 4",
    description="Distribution of clients per country",
)
def run_figure04(
    scale: Scale = Scale.DEFAULT,
    seed: int = DEFAULT_SEED,
    ctx: Optional[RunContext] = None,
) -> ExperimentResult:
    """Figure 4: distribution of clients per country."""
    ctx = RunContext.ensure(ctx, scale=scale, seed=seed)
    trace = ctx.temporal_trace()
    rows = country_histogram(trace)
    table = format_table(
        ("country", "clients", "share"),
        [(c, n, f"{100 * f:.1f}%") for c, n, f in rows[:12]],
        title="Figure 4: clients per country",
    )
    shares = {c: f for c, _, f in rows}
    return ExperimentResult(
        experiment_id="figure-4",
        title="Distribution of clients per country",
        table_text=table,
        metrics={
            "share_FR": shares.get("FR", 0.0),
            "share_DE": shares.get("DE", 0.0),
            "share_ES": shares.get("ES", 0.0),
            "share_US": shares.get("US", 0.0),
        },
        notes="paper: FR 29%, DE 28%, ES 16%, US 5%",
    )


@experiment(
    "fig5",
    artefact="Figure 5",
    description="File replication vs rank (log-log) across several days",
)
def run_figure05(
    scale: Scale = Scale.DEFAULT,
    seed: int = DEFAULT_SEED,
    num_days: int = 5,
    ctx: Optional[RunContext] = None,
) -> ExperimentResult:
    """Figure 5: file replication against rank for several days."""
    ctx = RunContext.ensure(ctx, scale=scale, seed=seed)
    trace = ctx.extrapolated_trace()
    days = trace.days()
    if not days:
        raise RuntimeError("extrapolated trace has no days")
    picks: List[int] = days[:: max(1, len(days) // num_days)][:num_days]
    series = [rank_replication(trace, day, max_rank=5000) for day in picks]
    slopes = []
    for s in series:
        if len(s) >= 20:
            slope, r2 = fit_zipf_slope(s.xs, s.ys, skip_head=5)
            slopes.append(slope)
    mean_slope = sum(slopes) / len(slopes) if slopes else 0.0
    return ExperimentResult(
        experiment_id="figure-5",
        title="Distribution of file replication by rank (log-log)",
        series=series,
        metrics={"mean_zipf_slope": mean_slope, "days_plotted": float(len(series))},
        notes="paper: flat head then linear trend on log-log, stable across days",
    )


@experiment(
    "fig6",
    artefact="Figure 6",
    description="CDF of file sizes by popularity threshold",
)
def run_figure06(
    scale: Scale = Scale.DEFAULT,
    seed: int = DEFAULT_SEED,
    ctx: Optional[RunContext] = None,
) -> ExperimentResult:
    """Figure 6: cumulative distribution of file sizes by popularity."""
    ctx = RunContext.ensure(ctx, scale=scale, seed=seed)
    trace = ctx.filtered_trace().to_static()
    series = size_cdf_by_popularity(trace, (1, 5, 10))
    metrics = {}
    for s, threshold in zip(series, (1, 5, 10)):
        if len(s) == 0:
            continue
        # fraction of files under 1 MB / over 600 MB
        under_1mb = max((p for x, p in zip(s.xs, s.ys) if x <= 1024.0), default=0.0)
        over_600mb = 1.0 - max(
            (p for x, p in zip(s.xs, s.ys) if x <= 600 * 1024.0), default=0.0
        )
        metrics[f"p{threshold}_under_1mb"] = under_1mb
        metrics[f"p{threshold}_over_600mb"] = over_600mb
    return ExperimentResult(
        experiment_id="figure-6",
        title="CDF of file sizes by popularity threshold",
        series=series,
        metrics=metrics,
        notes="paper: 40% of all files < 1MB; ~45% of popularity>=5 files "
        "> 600MB (DIVX)",
    )


@experiment(
    "fig7",
    artefact="Figure 7",
    description="Files and disk space shared per client",
)
def run_figure07(
    scale: Scale = Scale.DEFAULT,
    seed: int = DEFAULT_SEED,
    ctx: Optional[RunContext] = None,
) -> ExperimentResult:
    """Figure 7: files and disk space shared per client.

    Contribution is measured per client as the mean *observed* cache (the
    instantaneous view the crawler saw), not the union over days — see
    :func:`repro.analysis.contribution.temporal_contribution_cdfs`.
    Generosity concentration, which the search ablations use, stays on the
    static view (the paper's "top 15% offer 75% of the files").
    """
    ctx = RunContext.ensure(ctx, scale=scale, seed=seed)
    temporal = ctx.filtered_trace()
    trace = temporal.to_static()
    cdfs = temporal_contribution_cdfs(temporal)
    sharers_files = cdfs["files_sharers"]
    under_100 = max(
        (p for x, p in zip(sharers_files.xs, sharers_files.ys) if x < 100),
        default=0.0,
    )
    space_sharers = cdfs["space_sharers"]
    under_1gb = max(
        (p for x, p in zip(space_sharers.xs, space_sharers.ys) if x < 1.0),
        default=0.0,
    )
    concentration = generosity_concentration(trace, 0.15)
    free_riders = len(trace.free_riders()) / trace.num_clients
    return ExperimentResult(
        experiment_id="figure-7",
        title="Files and disk space shared per client",
        series=list(cdfs.values()),
        metrics={
            "free_rider_fraction": free_riders,
            "sharers_under_100_files": under_100,
            "sharers_under_1gb": under_1gb,
            "top15pct_share_of_files": concentration,
        },
        notes="paper: ~80% free-riders; 80% of sharers < 100 files; <10% of "
        "sharers < 1GB; top 15% offer 75% of files",
    )


@experiment(
    "fig8",
    artefact="Figure 8",
    description="Spread of the 6 most popular files over time",
)
def run_figure08(
    scale: Scale = Scale.DEFAULT,
    seed: int = DEFAULT_SEED,
    ctx: Optional[RunContext] = None,
) -> ExperimentResult:
    """Figure 8: spread of the 6 most popular files over time."""
    ctx = RunContext.ensure(ctx, scale=scale, seed=seed)
    trace = ctx.filtered_trace()
    series = file_spread(trace, top_k=6)
    peaks = [max(s.ys) if s.ys else 0.0 for s in series]
    rises = []
    for s in series:
        if not s.ys:
            continue
        peak_idx = s.ys.index(max(s.ys))
        rises.append(peak_idx)
    return ExperimentResult(
        experiment_id="figure-8",
        title="File spread over time, 6 most popular files",
        series=series,
        metrics={
            "max_spread_pct": max(peaks) if peaks else 0.0,
            "max_spread_fraction_any_file": max_spread_fraction(trace),
        },
        notes="paper: sudden increase then slow decrease; max spread < 0.7% "
        "(372 of 53,476 clients)",
    )


@experiment(
    "fig9",
    artefact="Figures 9-10",
    description="Rank evolution of early-day and mid-trace top-5 files",
    aliases=("fig10",),
)
def run_figure09_10(
    scale: Scale = Scale.DEFAULT,
    seed: int = DEFAULT_SEED,
    ctx: Optional[RunContext] = None,
) -> ExperimentResult:
    """Figures 9 and 10: rank evolution of early-day and mid-trace top-5
    files."""
    ctx = RunContext.ensure(ctx, scale=scale, seed=seed)
    trace = ctx.filtered_trace()
    days = trace.days()
    if len(days) < 3:
        raise RuntimeError("need at least 3 days")
    early_day = days[min(5, len(days) - 1)]
    mid_day = days[len(days) // 2]
    early = rank_evolution(trace, early_day, top_k=5)
    mid = rank_evolution(trace, mid_day, top_k=5)
    for s in early:
        s.name = f"day-{early_day} {s.name}"
    for s in mid:
        s.name = f"day-{mid_day} {s.name}"

    def mean_final_rank(series_list) -> float:
        finals = [s.ys[-1] for s in series_list if s.ys]
        return sum(finals) / len(finals) if finals else 0.0

    return ExperimentResult(
        experiment_id="figure-9-10",
        title="Evolution of file ranks for top-5 files",
        series=early + mid,
        metrics={
            "early_top5_mean_final_rank": mean_final_rank(early),
            "mid_top5_mean_final_rank": mean_final_rank(mid),
        },
        notes="paper: ranks of popular files remain fairly stable; early "
        "tops drift down gradually",
    )


@experiment(
    "table2",
    artefact="Table 2",
    description="Top-5 autonomous systems by hosted clients",
)
def run_table2(
    scale: Scale = Scale.DEFAULT,
    seed: int = DEFAULT_SEED,
    ctx: Optional[RunContext] = None,
) -> ExperimentResult:
    """Table 2: the top-5 autonomous systems."""
    ctx = RunContext.ensure(ctx, scale=scale, seed=seed)
    trace = ctx.temporal_trace()
    rows = top_as_table(trace, 5)
    table = format_table(
        ("AS", "global", "national", "country"),
        [
            (r.asn, f"{100 * r.global_share:.0f}%", f"{100 * r.national_share:.0f}%", r.country)
            for r in rows
        ],
        title="Table 2: top autonomous systems",
    )
    metrics = {"top5_concentration": top_as_concentration(trace, 5)}
    for r in rows:
        metrics[f"as{r.asn}_global"] = r.global_share
    return ExperimentResult(
        experiment_id="table-2",
        title="Top-5 autonomous systems by hosted clients",
        table_text=table,
        metrics=metrics,
        notes="paper: AS3320 21%/75%, AS3215 15%/51%, AS3352 8%/50%, "
        "AS12322 7%/24%, AS1668 3%/60%; top-5 host 54% of clients",
    )


def _locality_metrics(series_list) -> dict:
    """Median home-fraction per popularity class, for assertions."""
    metrics = {}
    for s in series_list:
        if len(s) == 0:
            continue
        # x where CDF crosses 0.5 = median home-source percentage.
        median_x = next(
            (x for x, p in zip(s.xs, s.ys) if p >= 0.5), s.xs[-1]
        )
        key = s.name.replace("avg popularity >= ", "median_home_pct_p")
        metrics[key] = median_x
        # fraction of files entirely in the home location
        all_home = 1.0 - max(
            (p for x, p in zip(s.xs, s.ys) if x < 100.0), default=0.0
        )
        metrics[s.name.replace("avg popularity >= ", "all_home_fraction_p")] = all_home
    return metrics


@experiment(
    "fig11",
    artefact="Figure 11",
    description="CDF of sources in the home country, by popularity class",
)
def run_figure11(
    scale: Scale = Scale.DEFAULT,
    seed: int = DEFAULT_SEED,
    ctx: Optional[RunContext] = None,
) -> ExperimentResult:
    """Figure 11: sources in the main country, by average popularity.

    The paper's average-popularity classes (1, 5, 10, 20, 50, 100) are
    defined as distinct sources divided by days seen; at reproduction
    scale (~200x fewer clients) the same ratio tops out near 1.5, so the
    classes are rescaled to (0.1, 0.3, 0.6, 1.2) — the last one isolates
    the genuinely popular files just as the paper's high classes do.
    """
    ctx = RunContext.ensure(ctx, scale=scale, seed=seed)
    trace = ctx.filtered_trace()
    series = home_locality_cdf(
        trace, level="country", popularity_thresholds=(0.1, 0.3, 0.6, 1.2)
    )
    return ExperimentResult(
        experiment_id="figure-11",
        title="CDF of the fraction of sources in the home country",
        series=series,
        metrics=_locality_metrics(series),
        notes="paper: unpopular files are strongly home-clustered; popular "
        "files much less",
    )


@experiment(
    "fig12",
    artefact="Figure 12",
    description="CDF of sources in the home AS, by popularity class",
)
def run_figure12(
    scale: Scale = Scale.DEFAULT,
    seed: int = DEFAULT_SEED,
    ctx: Optional[RunContext] = None,
) -> ExperimentResult:
    """Figure 12: sources in the main AS, by average popularity.

    Popularity classes rescaled as in :func:`run_figure11`.
    """
    ctx = RunContext.ensure(ctx, scale=scale, seed=seed)
    trace = ctx.filtered_trace()
    series = home_locality_cdf(
        trace, level="as", popularity_thresholds=(0.1, 0.3, 0.6, 1.2)
    )
    return ExperimentResult(
        experiment_id="figure-12",
        title="CDF of the fraction of sources in the home autonomous system",
        series=series,
        metrics=_locality_metrics(series),
        notes="paper: same ordering as Figure 11, weaker concentration at "
        "AS granularity",
    )
