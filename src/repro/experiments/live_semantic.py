"""Extension experiment: semantic links in a live eDonkey client.

Runs the paper's announced follow-up — semantic neighbour lists inside the
protocol-level client — on a simulated network, and measures the design
payoff: the fraction of lookups that never reach the index server, per
day, as the lists warm up.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.edonkey.network import NetworkConfig
from repro.edonkey.semantic_client import (
    LiveSemanticConfig,
    LiveSemanticSimulation,
)
from repro.experiments.result import ExperimentResult
from repro.runtime import DEFAULT_SEED, RunContext, Scale, experiment


@experiment(
    "live",
    artefact="Section 7 (announced follow-up)",
    description="Semantic neighbour lists inside the protocol-level client",
    default_scale=Scale.SMALL,
)
def run_live_semantic(
    scale: Scale = Scale.SMALL,
    seed: int = DEFAULT_SEED,
    days: int = 10,
    strategy: str = "lru",
    list_size: int = 10,
    num_clients: int = 200,
    ctx: Optional[RunContext] = None,
) -> ExperimentResult:
    """Live semantic-client run on a protocol-level network.

    ``scale`` only sets the workload *shape* parameters; the network size
    is controlled by ``num_clients`` because every peer here is a full
    protocol client (much heavier than the statistical simulation).
    """
    ctx = RunContext.ensure(ctx, scale=scale, seed=seed)
    seed = ctx.seed
    base = ctx.workload()
    workload = dataclasses.replace(
        base,
        num_clients=num_clients,
        num_files=max(num_clients * 16, 1000),
        days=max(days + 2, 8),
        mainstream_pool_size=min(num_clients, max(num_clients * 16, 1000)),
    )
    network = ctx.build_network(
        NetworkConfig(
            workload=workload,
            semantic_clients=True,
            semantic_strategy=strategy,
            semantic_list_size=list_size,
        ),
    )
    simulation = LiveSemanticSimulation(
        network,
        LiveSemanticConfig(
            days=days,
            requests_per_client_per_day=3,
            strategy=strategy,
            list_size=list_size,
            seed=seed,
        ),
    )
    result = simulation.run()

    warmup = result.avoidance_by_day.ys[0] if result.avoidance_by_day.ys else 0.0
    peak = max(result.avoidance_by_day.ys) if result.avoidance_by_day.ys else 0.0
    metrics: Dict[str, float] = {
        "lookups": float(result.total_lookups),
        "overall_server_avoidance": result.overall_avoidance,
        "first_day_avoidance": warmup / 100.0,
        "peak_day_avoidance": peak / 100.0,
        "download_success_rate": result.download_success_rate,
    }
    return ExperimentResult(
        experiment_id="live-semantic-client",
        title=f"Semantic links in the live client ({strategy.upper()}-{list_size})",
        series=[result.avoidance_by_day],
        metrics=metrics,
        notes="every avoided lookup is one the index server never saw — "
        "the 'server-less' payoff of the paper's title, measured on the "
        "protocol substrate",
    )
