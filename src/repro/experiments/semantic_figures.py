"""Reproductions of the semantic-clustering figures (13-17)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.semantic import (
    clustering_correlation,
    mean_overlap_decay,
    overlap_evolution,
    popularity_band_filter,
)
from repro.core.randomization import randomize_trace
from repro.experiments.result import ExperimentResult
from repro.runtime import DEFAULT_SEED, RunContext, Scale, experiment
from repro.util.cdf import Series
from repro.util.rng import RngStream


def _day_caches(trace, day):
    return {c: f for c, f in trace.snapshots_on(day).items() if f}


@experiment(
    "fig13",
    artefact="Figure 13",
    description="P(another common file | n in common), by popularity band",
)
def run_figure13(
    scale: Scale = Scale.DEFAULT,
    seed: int = DEFAULT_SEED,
    ctx: Optional[RunContext] = None,
) -> ExperimentResult:
    """Figure 13: probability of another common file, given n in common.

    Three curves: all shared files of the first analysis day, plus audio
    files in a rare and in a popular replication band (full trace).
    """
    ctx = RunContext.ensure(ctx, scale=scale, seed=seed)
    extrapolated = ctx.extrapolated_trace()
    days = extrapolated.days()
    if not days:
        raise RuntimeError("extrapolated trace is empty")
    day = days[len(days) // 8]  # early, as the paper uses day 348
    caches = _day_caches(extrapolated, day)
    all_series = clustering_correlation(caches, name=f"all files day {day}")

    full_static = ctx.filtered_trace().to_static()
    static_caches = dict(full_static.caches)
    kind_of = {fid: meta.kind for fid, meta in full_static.files.items()}
    rare_filter = popularity_band_filter(
        static_caches, 1, 10, kind_of=kind_of, kind="audio"
    )
    popular_filter = popularity_band_filter(
        static_caches, 30, 40, kind_of=kind_of, kind="audio"
    )
    rare_series = clustering_correlation(
        static_caches, file_filter=rare_filter, name="audio popularity 1-10"
    )
    popular_series = clustering_correlation(
        static_caches, file_filter=popular_filter, name="audio popularity 30-40"
    )

    metrics: Dict[str, float] = {}
    if len(all_series) >= 1:
        metrics["all_p_at_1"] = all_series.ys[0]
    if len(all_series) >= 5:
        metrics["all_p_at_5"] = all_series.ys[4]
    if len(rare_series) >= 1:
        metrics["rare_audio_p_at_1"] = rare_series.ys[0]
    if len(popular_series) >= 1:
        metrics["popular_audio_p_at_1"] = popular_series.ys[0]

    return ExperimentResult(
        experiment_id="figure-13",
        title="Clustering correlation: P(another common file | n in common)",
        series=[all_series, rare_series, popular_series],
        metrics=metrics,
        notes="paper: steep increase with n; rare audio files cluster more "
        "than popular ones",
    )


@experiment(
    "fig14",
    artefact="Figure 14",
    description="Clustering correlation: real trace vs randomized trace",
)
def run_figure14(
    scale: Scale = Scale.DEFAULT,
    seed: int = DEFAULT_SEED,
    popularity_levels: Sequence[int] = (3, 5),
    ctx: Optional[RunContext] = None,
) -> ExperimentResult:
    """Figure 14: clustering correlation, real trace vs randomized trace,
    for all files and for two low popularity levels."""
    ctx = RunContext.ensure(ctx, scale=scale, seed=seed)
    static = ctx.filtered_trace().to_static()
    rng = RngStream(ctx.seed, "figure14-randomize")
    randomized = randomize_trace(static, rng)

    series: List[Series] = []
    metrics: Dict[str, float] = {}

    def add_pair(label: str, file_filter_real, file_filter_rand) -> None:
        real = clustering_correlation(
            dict(static.caches), file_filter=file_filter_real,
            name=f"{label} (trace)",
        )
        rand = clustering_correlation(
            dict(randomized.caches), file_filter=file_filter_rand,
            name=f"{label} (random)",
        )
        series.extend([real, rand])
        if len(real) >= 1 and len(rand) >= 1:
            metrics[f"{label}_trace_p1"] = real.ys[0]
            metrics[f"{label}_random_p1"] = rand.ys[0]

    add_pair("all", None, None)
    for level in popularity_levels:
        real_filter = popularity_band_filter(dict(static.caches), level, level)
        rand_filter = popularity_band_filter(dict(randomized.caches), level, level)
        add_pair(f"pop{level}", real_filter, rand_filter)

    return ExperimentResult(
        experiment_id="figure-14",
        title="Clustering correlation: trace vs randomized trace",
        series=series,
        metrics=metrics,
        notes="paper: trace ~ random over all files (popular files mask "
        "interests); trace >> random at popularity 3 and 5",
    )


@experiment(
    "fig15",
    artefact="Figures 15-17",
    description="Evolution of pairwise cache overlap over time",
    aliases=("fig16", "fig17"),
)
def run_figure15_17(
    scale: Scale = Scale.DEFAULT,
    seed: int = DEFAULT_SEED,
    low_levels: Sequence[int] = (1, 2, 3, 5, 10),
    high_levels: Optional[Sequence[int]] = None,
    ctx: Optional[RunContext] = None,
) -> ExperimentResult:
    """Figures 15-17: evolution of pairwise cache overlap over time.

    Low initial-overlap groups (Figure 15) decay smoothly; high-overlap
    groups (Figures 16-17) plateau — interest-based proximity persists.
    """
    ctx = RunContext.ensure(ctx, scale=scale, seed=seed)
    seed = ctx.seed
    trace = ctx.extrapolated_trace()
    days = trace.days()
    if not days:
        raise RuntimeError("extrapolated trace is empty")
    first_day = days[min(2, len(days) - 1)]

    low_series = overlap_evolution(
        trace, first_day=first_day, overlap_levels=low_levels, seed=seed
    )
    all_series = overlap_evolution(trace, first_day=first_day, seed=seed)
    if high_levels is None:
        observed_levels = sorted(
            int(s.name.split(" ")[0]) for s in all_series if len(s) >= 2
        )
        high = [lv for lv in observed_levels if lv >= 15]
        high_levels = high[:8] if high else observed_levels[-3:]
    high_series = [
        s
        for s in all_series
        if int(s.name.split(" ")[0]) in set(high_levels) and len(s) >= 2
    ]

    metrics: Dict[str, float] = {}
    low_decays = [mean_overlap_decay(s) for s in low_series if len(s) >= 2]
    high_decays = [mean_overlap_decay(s) for s in high_series if len(s) >= 2]
    if low_decays:
        metrics["low_overlap_mean_retention"] = sum(low_decays) / len(low_decays)
    if high_decays:
        metrics["high_overlap_mean_retention"] = sum(high_decays) / len(high_decays)

    return ExperimentResult(
        experiment_id="figure-15-17",
        title="Evolution of pairwise cache overlap over time",
        series=low_series + high_series,
        metrics=metrics,
        notes="paper: low-overlap pairs decay homogeneously; high-overlap "
        "pairs sustain their overlap for weeks",
    )
