"""Back-compat shim over the runtime layer's scales and trace cache.

The scale presets and the shared trace cache moved to
:mod:`repro.runtime` (``repro.runtime.scale`` and
``repro.runtime.cache``); experiments reach them through a
:class:`~repro.runtime.context.RunContext` (``ctx.static_trace()`` etc.).
This module keeps the historical import surface working::

    from repro.experiments.configs import Scale, get_static_trace

The module-level getters delegate to the process-wide
:data:`~repro.runtime.cache.SHARED_TRACE_CACHE` — bounded and
(scale, seed)-keyed, unlike the unbounded-per-variant ``lru_cache``
quartet that used to live here.
"""

from __future__ import annotations

from repro.runtime.cache import SHARED_TRACE_CACHE
from repro.runtime.scale import DEFAULT_SEED, Scale, workload_config
from repro.trace.model import StaticTrace, Trace

__all__ = [
    "DEFAULT_SEED",
    "Scale",
    "clear_trace_cache",
    "get_extrapolated_trace",
    "get_filtered_trace",
    "get_static_trace",
    "get_temporal_trace",
    "workload_config",
]


def get_temporal_trace(scale: Scale = Scale.DEFAULT, seed: int = DEFAULT_SEED) -> Trace:
    """The *full trace* (crawler output equivalent) for a scale."""
    return SHARED_TRACE_CACHE.temporal(scale, seed)


def get_filtered_trace(scale: Scale = Scale.DEFAULT, seed: int = DEFAULT_SEED) -> Trace:
    """The *filtered trace*: duplicate clients removed."""
    return SHARED_TRACE_CACHE.filtered(scale, seed)


def get_extrapolated_trace(
    scale: Scale = Scale.DEFAULT, seed: int = DEFAULT_SEED
) -> Trace:
    """The *extrapolated trace*: eligible clients, gaps intersection-filled."""
    return SHARED_TRACE_CACHE.extrapolated(scale, seed)


def get_static_trace(
    scale: Scale = Scale.DEFAULT, seed: int = DEFAULT_SEED
) -> StaticTrace:
    """The static search workload (Section 5): filtered trace, collapsed."""
    return SHARED_TRACE_CACHE.static(scale, seed)


def clear_trace_cache() -> None:
    """Drop all cached traces (mainly for tests that tweak configs)."""
    SHARED_TRACE_CACHE.clear()
