"""Workload presets and the shared trace cache.

Experiments come in two scales:

- ``Scale.SMALL`` — a few hundred clients; used by the test suite;
- ``Scale.DEFAULT`` — a couple thousand clients; used by the benchmarks.

Traces are deterministic in (scale, seed) and expensive enough to be worth
sharing: the cache below means the ~20 benchmarks generate each trace
variant once per process instead of once per benchmark.
"""

from __future__ import annotations

import dataclasses
import enum
from functools import lru_cache

from repro.trace.extrapolation import extrapolate
from repro.trace.filtering import filter_duplicates
from repro.trace.model import StaticTrace, Trace
from repro.workload.config import WorkloadConfig
from repro.workload.generator import SyntheticWorkloadGenerator

DEFAULT_SEED = 20060418  # EuroSys'06 started April 18, 2006


class Scale(enum.Enum):
    SMALL = "small"
    DEFAULT = "default"
    LARGE = "large"


def workload_config(scale: Scale = Scale.DEFAULT) -> WorkloadConfig:
    """The workload preset for a scale (see WorkloadConfig for dials)."""
    base = WorkloadConfig()
    if scale is Scale.DEFAULT:
        return base
    if scale is Scale.SMALL:
        return dataclasses.replace(
            base,
            num_clients=320,
            num_files=12000,
            days=24,
            num_shock_files=4,
            mainstream_pool_size=600,
            interest_model=dataclasses.replace(
                base.interest_model, num_categories=48
            ),
        )
    if scale is Scale.LARGE:
        return dataclasses.replace(
            base,
            num_clients=5000,
            num_files=200000,
            mainstream_pool_size=10000,
            interest_model=dataclasses.replace(
                base.interest_model, num_categories=750
            ),
        )
    raise ValueError(f"unknown scale {scale!r}")


@lru_cache(maxsize=8)
def get_temporal_trace(scale: Scale = Scale.DEFAULT, seed: int = DEFAULT_SEED) -> Trace:
    """The *full trace* (crawler output equivalent) for a scale."""
    generator = SyntheticWorkloadGenerator(config=workload_config(scale), seed=seed)
    return generator.generate()


@lru_cache(maxsize=8)
def get_filtered_trace(scale: Scale = Scale.DEFAULT, seed: int = DEFAULT_SEED) -> Trace:
    """The *filtered trace*: duplicate clients removed."""
    return filter_duplicates(get_temporal_trace(scale, seed))


@lru_cache(maxsize=8)
def get_extrapolated_trace(
    scale: Scale = Scale.DEFAULT, seed: int = DEFAULT_SEED
) -> Trace:
    """The *extrapolated trace*: eligible clients, gaps intersection-filled."""
    return extrapolate(get_filtered_trace(scale, seed))


@lru_cache(maxsize=8)
def get_static_trace(
    scale: Scale = Scale.DEFAULT, seed: int = DEFAULT_SEED
) -> StaticTrace:
    """The static search workload (Section 5): filtered trace, collapsed.

    Built directly by the generator's static path — equivalent content
    model, much faster than running the churn loop — then duplicate-free by
    construction (aliases are excluded the same way filtering would).
    """
    generator = SyntheticWorkloadGenerator(config=workload_config(scale), seed=seed)
    static = generator.generate_static()
    aliases = [
        p.meta.client_id for p in generator.profiles if p.alias_of is not None
    ]
    return static.without_clients(aliases)


def clear_trace_cache() -> None:
    """Drop all cached traces (mainly for tests that tweak configs)."""
    get_temporal_trace.cache_clear()
    get_filtered_trace.cache_clear()
    get_extrapolated_trace.cache_clear()
    get_static_trace.cache_clear()
