"""Extension experiment: crash-resilience of the checkpointed crawler.

The paper's 56-day crawl had exactly one shot: when the eDonkey servers
dropped ``query-users`` support mid-study, the trace simply ended.  A
measurement pipeline that can be SIGKILLed and resumed *without changing
its output* removes that fragility — and "without changing its output"
is checkable, not aspirational: the final trace must be byte-identical
and the metrics counters equal to an uninterrupted run's.

This experiment runs a :class:`~repro.checkpoint.ChaosRunner` campaign
(kill at seeded random days, resume, diff artefacts, check network
invariants) and reports the equivalence rate.  The kill/resume history
lands in the run manifest via ``ExperimentResult.lineage``.
"""

from __future__ import annotations

import tempfile
from typing import Optional

from repro.checkpoint import ChaosRunner, ChaosSpec
from repro.experiments.result import ExperimentResult
from repro.obs import NULL_OBSERVER, Observer
from repro.runtime import DEFAULT_SEED, RunContext, Scale, experiment


@experiment(
    "chaos",
    artefact="Robustness (extension)",
    description="SIGKILL crawls at random days; resumed artefacts must "
    "be byte-identical",
    default_scale=Scale.TINY,
    # Spawns and SIGKILLs its own CLI subprocesses; running it inside a
    # worker pool would orphan those children.
    sequential_only=True,
)
def run_chaos(
    scale: Scale = Scale.TINY,
    seed: int = DEFAULT_SEED,
    trials: int = 2,
    kills: int = 2,
    num_clients: int = 40,
    days: int = 5,
    obs: Observer = NULL_OBSERVER,
    ctx: Optional[RunContext] = None,
) -> ExperimentResult:
    """A chaos campaign at deliberately small scale (it forks real CLI
    subprocesses — one reference plus kills+1 runs per trial)."""
    ctx = RunContext.ensure(ctx, scale=scale, seed=seed, obs=obs)
    seed, obs = ctx.seed, ctx.obs

    spec = ChaosSpec(clients=num_clients, days=days, seed=seed, kills=kills)
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as workdir:
        with obs.span("experiment/chaos"):
            report = ChaosRunner(spec, workdir, obs=obs).run(trials=trials)

    equivalent = sum(1 for t in report.trials if t.equivalent)
    total_kills = sum(len(t.kill_days) for t in report.trials)
    metrics = {
        "trials": float(len(report.trials)),
        "kills": float(total_kills),
        "equivalent_trials": float(equivalent),
        "equivalence_rate": equivalent / len(report.trials),
        "passed": 1.0 if report.passed else 0.0,
    }
    return ExperimentResult(
        experiment_id="chaos-resilience",
        title="Crash/resume equivalence under randomized SIGKILLs",
        table_text=report.render(),
        metrics=metrics,
        notes="each trial SIGKILLs a checkpointing CLI crawl at seeded "
        "random days, resumes it, and diffs trace bytes + metrics "
        "counters against an uninterrupted reference",
        lineage=report.as_lineage(),
    )
