"""Runnable reproductions of every table and figure in the paper.

Each ``run_*`` function generates (or reuses, via the module-level cache in
:mod:`repro.experiments.configs`) the appropriate synthetic workload, runs
the corresponding pipeline + analysis, and returns an
:class:`~repro.experiments.result.ExperimentResult` that renders to text and
carries the headline metrics the benchmarks assert on.

The mapping from paper artefact to function lives in DESIGN.md's
per-experiment index; EXPERIMENTS.md records paper-vs-measured values.
"""

from repro.experiments.configs import (
    Scale,
    get_extrapolated_trace,
    get_filtered_trace,
    get_static_trace,
    get_temporal_trace,
    workload_config,
)
from repro.experiments.result import ExperimentResult
from repro.experiments.search_figures import (
    run_figure18,
    run_figure19,
    run_figure20,
    run_figure21,
    run_figure22,
    run_figure23,
    run_table3,
)
from repro.experiments.semantic_figures import (
    run_figure13,
    run_figure14,
    run_figure15_17,
)
from repro.experiments.trace_figures import (
    run_figure01,
    run_figure02,
    run_figure03,
    run_figure04,
    run_figure05,
    run_figure06,
    run_figure07,
    run_figure08,
    run_figure09_10,
    run_figure11,
    run_figure12,
    run_table1,
    run_table2,
)
from repro.experiments.baseline_experiments import (
    run_flooding_estimate,
    run_mechanism_comparison,
)
from repro.experiments.cost_benefit import run_cost_benefit
from repro.experiments.fault_experiments import run_fault_degradation
from repro.experiments.extension_experiments import (
    run_availability_sweep,
    run_exchange_graph,
    run_extrapolation_ablation,
    run_loyalty_sensitivity,
    run_strategy_comparison,
)
from repro.experiments.live_semantic import run_live_semantic
from repro.experiments.overlay_experiments import (
    run_gossip_overlay,
    run_overlay_vs_reactive,
)
from repro.experiments.peercache_experiments import run_peercache

__all__ = [
    "ExperimentResult",
    "Scale",
    "get_extrapolated_trace",
    "get_filtered_trace",
    "get_static_trace",
    "get_temporal_trace",
    "run_figure01",
    "run_figure02",
    "run_figure03",
    "run_figure04",
    "run_figure05",
    "run_figure06",
    "run_figure07",
    "run_figure08",
    "run_figure09_10",
    "run_figure11",
    "run_figure12",
    "run_figure13",
    "run_figure14",
    "run_figure15_17",
    "run_figure18",
    "run_figure19",
    "run_figure20",
    "run_figure21",
    "run_figure22",
    "run_figure23",
    "run_flooding_estimate",
    "run_availability_sweep",
    "run_cost_benefit",
    "run_exchange_graph",
    "run_extrapolation_ablation",
    "run_fault_degradation",
    "run_gossip_overlay",
    "run_live_semantic",
    "run_loyalty_sensitivity",
    "run_mechanism_comparison",
    "run_overlay_vs_reactive",
    "run_peercache",
    "run_strategy_comparison",
    "run_table1",
    "run_table2",
    "run_table3",
    "workload_config",
]
