"""Runnable reproductions of every table and figure in the paper.

Each ``run_*`` function is registered with the runtime layer's experiment
registry (:mod:`repro.runtime.registry`) via the ``@experiment``
decorator, accepts an optional :class:`~repro.runtime.RunContext` (built
from its loose ``scale``/``seed`` arguments when absent), and returns an
:class:`~repro.experiments.result.ExperimentResult` that renders to text
and carries the headline metrics the benchmarks assert on.

Importing this package imports every experiment module (via
:func:`pkgutil.iter_modules`), which populates the registry as a side
effect — ``repro.runtime.registry.load_all()`` relies on exactly that.
The mapping from paper artefact to function lives in DESIGN.md's
per-experiment index; EXPERIMENTS.md records paper-vs-measured values.
"""

import importlib
import pkgutil

from repro.experiments.result import ExperimentResult
from repro.runtime.scale import Scale, workload_config

# Import every sibling module so each @experiment decorator runs.  New
# experiment modules are picked up automatically — no import list to
# maintain here.
_SELF = __name__
for _info in pkgutil.iter_modules(__path__):
    importlib.import_module(f"{_SELF}.{_info.name}")
del _SELF, _info

# Re-export every registered runner under its historical name
# (``from repro.experiments import run_figure18`` keeps working).
from repro.runtime import registry as _registry

_RUNNERS = {
    spec.runner_name: spec.runner for spec in _registry.all_experiments()
}
globals().update(_RUNNERS)

__all__ = sorted(
    ["ExperimentResult", "Scale", "workload_config"] + list(_RUNNERS)
)
