"""Extension experiment: graceful degradation under injected faults.

The paper's crawler worked because the network cooperated: servers
answered ``query-users``, peers answered browses, and the one mid-study
outage (servers dropping ``query-users`` support) ended the trace for
good.  This experiment asks the robustness question the paper could not:
*how much trace fidelity and search quality survive when the network
misbehaves?*

Two sweeps, one per subsystem:

- **crawl side** — the protocol crawler runs against rising message-loss
  rates with a mid-crawl server crash, retries enabled; the headline is
  *trace completeness*: snapshots collected vs the fault-free baseline
  with the same seed.
- **search side** — the semantic-search simulation runs with rising
  probe-loss rates (dead-neighbour eviction on); the headline is the
  one-hop hit rate, which should degrade smoothly, not collapse.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

from repro.core.search import SearchConfig, simulate_search
from repro.edonkey.crawler import Crawler, CrawlerConfig
from repro.edonkey.network import NetworkConfig, build_network
from repro.experiments.result import ExperimentResult
from repro.faults import FaultConfig, RetryPolicy
from repro.obs import NULL_OBSERVER, Observer
from repro.runtime import DEFAULT_SEED, RunContext, Scale, experiment, workload_config
from repro.util.cdf import Series

DEFAULT_LOSS_RATES = (0.0, 0.01, 0.05, 0.20)


def _crawl_once(
    scale: Scale,
    seed: int,
    num_clients: int,
    days: int,
    faults: FaultConfig,
    retry: Optional[RetryPolicy],
    obs: Optional[Observer] = None,
):
    """One crawl run; returns ``(crawler, trace)``."""
    workload = dataclasses.replace(
        workload_config(scale),
        num_clients=num_clients,
        num_files=max(num_clients * 15, 500),
        days=days,
        mainstream_pool_size=min(num_clients, max(num_clients * 15, 500)),
    )
    network = build_network(
        NetworkConfig(workload=workload, faults=faults), seed=seed, obs=obs
    )
    crawler = Crawler(
        network,
        CrawlerConfig(
            days=days,
            # One sweep at day 0: re-sweeping daily dominates runtime and
            # adds nothing to the degradation signal being measured.
            refresh_users_every=days,
            retry=retry,
        ),
        seed=seed,
    )
    trace = crawler.crawl()
    return crawler, trace


@experiment(
    "faults",
    artefact="Robustness (extension)",
    description="Trace/search fidelity under message loss and server crashes",
    default_scale=Scale.SMALL,
)
def run_fault_degradation(
    scale: Scale = Scale.SMALL,
    seed: int = DEFAULT_SEED,
    loss_rates: Sequence[float] = DEFAULT_LOSS_RATES,
    num_clients: int = 60,
    days: int = 4,
    list_size: int = 10,
    obs: Observer = NULL_OBSERVER,
    ctx: Optional[RunContext] = None,
) -> ExperimentResult:
    """Degradation sweep: fault intensity vs trace/search fidelity.

    Faulted crawl runs also crash a server mid-crawl (day ``days // 2``,
    recovering two days later), so completeness reflects the combined
    hostile scenario, not message loss alone.  The ``loss_rates[0] == 0``
    run doubles as the fault-free baseline.
    """
    ctx = RunContext.ensure(ctx, scale=scale, seed=seed, obs=obs)
    scale, seed, obs = ctx.scale, ctx.seed, ctx.obs
    if not loss_rates or loss_rates[0] != 0.0:
        loss_rates = (0.0, *loss_rates)

    completeness = Series(name="trace completeness (%)")
    delivery = Series(name="crawler delivery rate (%)")
    hit_rate = Series(name="one-hop hit rate (%)")
    metrics: Dict[str, float] = {}

    # --- crawl side -------------------------------------------------
    baseline_snapshots: Optional[int] = None
    for rate in loss_rates:
        faulted = rate > 0
        faults = FaultConfig(
            loss_rate=rate,
            server_crash_day=days // 2 if faulted else None,
        )
        retry = RetryPolicy(max_retries=2) if faulted else None
        with obs.span(f"experiment/crawl@{rate:g}"):
            crawler, trace = _crawl_once(
                scale, seed, num_clients, days, faults, retry, obs=obs
            )
        if baseline_snapshots is None:
            baseline_snapshots = trace.num_snapshots
        report = crawler.degradation_report(
            trace, baseline_snapshots=baseline_snapshots
        )
        completeness.append(100 * rate, 100.0 * (report.completeness or 0.0))
        delivery.append(100 * rate, 100.0 * report.delivery_rate)
        metrics[f"completeness@{rate:g}"] = report.completeness or 0.0

    # --- search side ------------------------------------------------
    static = ctx.static_trace()
    for rate in loss_rates:
        with obs.span(f"experiment/search@{rate:g}"):
            result = simulate_search(
                static,
                SearchConfig(
                    list_size=list_size,
                    strategy="lru",
                    probe_loss_rate=rate,
                    evict_dead=rate > 0,
                    seed=seed,
                ),
                obs=obs,
            )
        hit_rate.append(100 * rate, 100.0 * result.hit_rate)
        metrics[f"hit_rate@{rate:g}"] = result.hit_rate

    return ExperimentResult(
        experiment_id="fault-degradation",
        title="Graceful degradation under message loss and server crashes",
        series=[completeness, delivery, hit_rate],
        metrics=metrics,
        notes="completeness is snapshots vs the fault-free run with the "
        "same seed; faulted crawls also lose a server mid-crawl — smooth "
        "decline (not collapse) is the design goal for a crawler facing "
        "a hostile network",
    )
