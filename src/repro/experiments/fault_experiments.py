"""Extension experiment: graceful degradation under injected faults.

The paper's crawler worked because the network cooperated: servers
answered ``query-users``, peers answered browses, and the one mid-study
outage (servers dropping ``query-users`` support) ended the trace for
good.  This experiment asks the robustness question the paper could not:
*how much trace fidelity and search quality survive when the network
misbehaves?*

Two sweeps, one per subsystem:

- **crawl side** — the protocol crawler runs against rising message-loss
  rates with a mid-crawl server crash, retries enabled; the headline is
  *trace completeness*: snapshots collected vs the fault-free baseline
  with the same seed.
- **search side** — the semantic-search simulation runs with rising
  probe-loss rates (dead-neighbour eviction on); the headline is the
  one-hop hit rate, which should degrade smoothly, not collapse.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

from repro.core.search import SearchConfig, simulate_search
from repro.edonkey.crawler import Crawler, CrawlerConfig
from repro.edonkey.network import NetworkConfig, build_network
from repro.experiments.result import ExperimentResult
from repro.faults import FaultConfig, FaultSchedule, FaultWindow, RetryPolicy
from repro.obs import NULL_OBSERVER, Observer
from repro.runtime import DEFAULT_SEED, RunContext, Scale, experiment, workload_config
from repro.util.cdf import Series

DEFAULT_LOSS_RATES = (0.0, 0.01, 0.05, 0.20)


def _crawl_once(
    scale: Scale,
    seed: int,
    num_clients: int,
    days: int,
    faults: FaultConfig,
    retry: Optional[RetryPolicy],
    obs: Optional[Observer] = None,
    schedule: Optional[FaultSchedule] = None,
):
    """One crawl run; returns ``(crawler, trace)``."""
    workload = dataclasses.replace(
        workload_config(scale),
        num_clients=num_clients,
        num_files=max(num_clients * 15, 500),
        days=days,
        mainstream_pool_size=min(num_clients, max(num_clients * 15, 500)),
    )
    network = build_network(
        NetworkConfig(workload=workload, faults=faults, fault_schedule=schedule),
        seed=seed,
        obs=obs,
    )
    crawler = Crawler(
        network,
        CrawlerConfig(
            days=days,
            # One sweep at day 0: re-sweeping daily dominates runtime and
            # adds nothing to the degradation signal being measured.
            refresh_users_every=days,
            retry=retry,
        ),
        seed=seed,
    )
    trace = crawler.crawl()
    return crawler, trace


@experiment(
    "faults",
    artefact="Robustness (extension)",
    description="Trace/search fidelity under message loss and server crashes",
    default_scale=Scale.SMALL,
)
def run_fault_degradation(
    scale: Scale = Scale.SMALL,
    seed: int = DEFAULT_SEED,
    loss_rates: Sequence[float] = DEFAULT_LOSS_RATES,
    num_clients: int = 60,
    days: int = 4,
    list_size: int = 10,
    obs: Observer = NULL_OBSERVER,
    ctx: Optional[RunContext] = None,
) -> ExperimentResult:
    """Degradation sweep: fault intensity vs trace/search fidelity.

    Faulted crawl runs also crash a server mid-crawl (day ``days // 2``,
    recovering two days later), so completeness reflects the combined
    hostile scenario, not message loss alone.  The ``loss_rates[0] == 0``
    run doubles as the fault-free baseline.
    """
    ctx = RunContext.ensure(ctx, scale=scale, seed=seed, obs=obs)
    scale, seed, obs = ctx.scale, ctx.seed, ctx.obs
    if not loss_rates or loss_rates[0] != 0.0:
        loss_rates = (0.0, *loss_rates)

    completeness = Series(name="trace completeness (%)")
    delivery = Series(name="crawler delivery rate (%)")
    hit_rate = Series(name="one-hop hit rate (%)")
    metrics: Dict[str, float] = {}

    # --- crawl side -------------------------------------------------
    baseline_snapshots: Optional[int] = None
    for rate in loss_rates:
        faulted = rate > 0
        faults = FaultConfig(
            loss_rate=rate,
            server_crash_day=days // 2 if faulted else None,
        )
        retry = RetryPolicy(max_retries=2) if faulted else None
        with obs.span(f"experiment/crawl@{rate:g}"):
            crawler, trace = _crawl_once(
                scale, seed, num_clients, days, faults, retry, obs=obs
            )
        if baseline_snapshots is None:
            baseline_snapshots = trace.num_snapshots
        report = crawler.degradation_report(
            trace, baseline_snapshots=baseline_snapshots
        )
        completeness.append(100 * rate, 100.0 * (report.completeness or 0.0))
        delivery.append(100 * rate, 100.0 * report.delivery_rate)
        metrics[f"completeness@{rate:g}"] = report.completeness or 0.0

    # --- search side ------------------------------------------------
    static = ctx.static_trace()
    for rate in loss_rates:
        with obs.span(f"experiment/search@{rate:g}"):
            result = simulate_search(
                static,
                SearchConfig(
                    list_size=list_size,
                    strategy="lru",
                    probe_loss_rate=rate,
                    evict_dead=rate > 0,
                    seed=seed,
                ),
                obs=obs,
            )
        hit_rate.append(100 * rate, 100.0 * result.hit_rate)
        metrics[f"hit_rate@{rate:g}"] = result.hit_rate

    return ExperimentResult(
        experiment_id="fault-degradation",
        title="Graceful degradation under message loss and server crashes",
        series=[completeness, delivery, hit_rate],
        metrics=metrics,
        notes="completeness is snapshots vs the fault-free run with the "
        "same seed; faulted crawls also lose a server mid-crawl — smooth "
        "decline (not collapse) is the design goal for a crawler facing "
        "a hostile network",
    )


def storm_schedule(days: int) -> FaultSchedule:
    """The canonical time-varying hostile scenario for ``days`` days.

    A calm start, then message loss that ramps in steps, a one-day
    flash-churn burst, and a mid-run server crash that recovers a day
    later — faults that *arrive and leave* rather than holding steady,
    which is what real measurement studies actually face.
    """
    q1, mid, q3 = days // 4, days // 2, (3 * days) // 4
    return FaultSchedule(
        windows=(
            FaultWindow(start=q1, end=mid, overrides={"loss_rate": 0.05}),
            FaultWindow(
                start=mid,
                end=q3,
                overrides={"loss_rate": 0.15, "peer_downtime": 0.35},
            ),
            FaultWindow(start=q3, end=days, overrides={"loss_rate": 0.30}),
            # The crash window must cover both the crash day and the
            # recovery day for the cycle to complete.
            FaultWindow(
                start=mid,
                end=days,
                overrides={"server_crash_day": mid, "server_downtime_days": 1},
            ),
        )
    )


@experiment(
    "fault-schedule",
    artefact="Robustness (extension)",
    description="Crawl fidelity under a time-varying fault schedule",
    default_scale=Scale.SMALL,
)
def run_fault_schedule(
    scale: Scale = Scale.SMALL,
    seed: int = DEFAULT_SEED,
    num_clients: int = 60,
    days: int = 8,
    obs: Observer = NULL_OBSERVER,
    ctx: Optional[RunContext] = None,
) -> ExperimentResult:
    """Fault-free baseline vs the same crawl under :func:`storm_schedule`.

    Unlike :func:`run_fault_degradation` (steady fault rates swept across
    runs), here the fault intensity varies *within* one run, so the
    per-day snapshot counts show the storm arriving and passing.
    """
    ctx = RunContext.ensure(ctx, scale=scale, seed=seed, obs=obs)
    scale, seed, obs = ctx.scale, ctx.seed, ctx.obs
    if days < 4:
        raise ValueError(f"days must be >= 4 for a meaningful storm, got {days}")
    schedule = storm_schedule(days)

    with obs.span("experiment/baseline"):
        _, base_trace = _crawl_once(
            scale, seed, num_clients, days, FaultConfig(), retry=None, obs=obs
        )
    with obs.span("experiment/scheduled"):
        crawler, storm_trace = _crawl_once(
            scale,
            seed,
            num_clients,
            days,
            FaultConfig(),
            retry=RetryPolicy(max_retries=2),
            obs=obs,
            schedule=schedule,
        )

    per_day_base = Series(name="snapshots/day (fault-free)")
    per_day_storm = Series(name="snapshots/day (scheduled faults)")
    for day in base_trace.days():
        per_day_base.append(day, len(base_trace.snapshots_on(day)))
    for day in storm_trace.days():
        per_day_storm.append(day, len(storm_trace.snapshots_on(day)))

    report = crawler.degradation_report(
        storm_trace, baseline_snapshots=base_trace.num_snapshots
    )
    # Trace days are absolute (paper-style day-of-year numbers); map the
    # schedule's 0-based offsets onto them before comparing per day.
    day0 = min(base_trace.days())
    calm_days = [
        day0 + d
        for d in range(days)
        if schedule.config_on(d, FaultConfig()) == FaultConfig()
    ]
    storm_days = [day0 + d for d in range(days) if day0 + d not in calm_days]
    base_by_day = {d: len(base_trace.snapshots_on(d)) for d in base_trace.days()}
    storm_by_day = {d: len(storm_trace.snapshots_on(d)) for d in storm_trace.days()}

    def _ratio(day_set) -> float:
        got = sum(storm_by_day.get(d, 0) for d in day_set)
        want = sum(base_by_day.get(d, 0) for d in day_set)
        return got / want if want else 1.0

    metrics = {
        "completeness": report.completeness or 0.0,
        "delivery_rate": report.delivery_rate,
        "calm_day_completeness": _ratio(calm_days),
        "storm_day_completeness": _ratio(storm_days),
        "storm_days": float(len(storm_days)),
    }
    return ExperimentResult(
        experiment_id="fault-schedule",
        title="Crawl fidelity under a time-varying fault schedule",
        series=[per_day_base, per_day_storm],
        metrics=metrics,
        notes="same seed, faults only inside schedule windows: calm days "
        "should match the fault-free run exactly, storm days degrade and "
        "recover when the window closes",
    )
