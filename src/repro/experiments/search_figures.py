"""Reproductions of the semantic-search experiments (Figures 18-23 and
Table 3)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.randomization import randomization_schedule
from repro.core.search import (
    SearchConfig,
    remove_popular_files,
    remove_top_uploaders,
    simulate_search,
)
from repro.experiments.result import ExperimentResult
from repro.runtime import DEFAULT_SEED, RunContext, Scale, experiment
from repro.trace.model import StaticTrace
from repro.util.cdf import Series
from repro.util.rng import RngStream
from repro.util.tables import format_table
from repro.util.zipf import swap_iterations

#: The x axis of Figures 18-20/23.  The paper sweeps 0..200; the defaults
#: here keep benchmark runtime sane while covering the interesting range.
DEFAULT_LIST_SIZES = (5, 10, 20, 50, 100, 200)


def _hit_rate(
    trace: StaticTrace,
    list_size: int,
    strategy: str = "lru",
    two_hop: bool = False,
    seed: int = DEFAULT_SEED,
) -> float:
    config = SearchConfig(
        list_size=list_size,
        strategy=strategy,
        two_hop=two_hop,
        track_load=False,
        seed=seed,
    )
    return simulate_search(trace, config).hit_rate


def _sweep(
    trace: StaticTrace,
    name: str,
    list_sizes: Sequence[int],
    strategy: str = "lru",
    two_hop: bool = False,
    seed: int = DEFAULT_SEED,
) -> Series:
    series = Series(name=name)
    for size in list_sizes:
        series.append(size, 100.0 * _hit_rate(trace, size, strategy, two_hop, seed))
    return series


@experiment(
    "fig18",
    artefact="Figure 18",
    description="Hit rate vs semantic neighbours: LRU / History / Random",
)
def run_figure18(
    scale: Scale = Scale.DEFAULT,
    seed: int = DEFAULT_SEED,
    list_sizes: Sequence[int] = DEFAULT_LIST_SIZES,
    ctx: Optional[RunContext] = None,
) -> ExperimentResult:
    """Figure 18: hit rate vs number of semantic neighbours, for the LRU,
    History and Random strategies."""
    ctx = RunContext.ensure(ctx, scale=scale, seed=seed)
    trace, seed = ctx.static_trace(), ctx.seed
    lru = _sweep(trace, "LRU", list_sizes, "lru", seed=seed)
    history = _sweep(trace, "History", list_sizes, "history", seed=seed)
    random_series = _sweep(trace, "Random", list_sizes, "random", seed=seed)
    metrics = {
        "lru@20": lru.y_at(20) / 100.0,
        "history@20": history.y_at(20) / 100.0,
        "random@20": random_series.y_at(20) / 100.0,
        "lru@5": lru.y_at(5) / 100.0,
    }
    return ExperimentResult(
        experiment_id="figure-18",
        title="Semantic search hit rate: LRU vs History vs Random",
        series=[lru, history, random_series],
        metrics=metrics,
        notes="paper: 41% (LRU) and 47% (History) at 20 neighbours; random "
        "far below",
    )


@experiment(
    "fig19",
    artefact="Figure 19",
    description="LRU hit rate without the 5-15% most generous uploaders",
)
def run_figure19(
    scale: Scale = Scale.DEFAULT,
    seed: int = DEFAULT_SEED,
    list_sizes: Sequence[int] = DEFAULT_LIST_SIZES,
    fractions: Sequence[float] = (0.05, 0.10, 0.15),
    ctx: Optional[RunContext] = None,
) -> ExperimentResult:
    """Figure 19: LRU hit rate after removing the most generous uploaders."""
    ctx = RunContext.ensure(ctx, scale=scale, seed=seed)
    trace, seed = ctx.static_trace(), ctx.seed
    series = [_sweep(trace, "all uploaders", list_sizes, "lru", seed=seed)]
    for fraction in fractions:
        ablated = remove_top_uploaders(trace, fraction)
        series.append(
            _sweep(
                ablated,
                f"without top {int(100 * fraction)}%",
                list_sizes,
                "lru",
                seed=seed,
            )
        )
    metrics = {
        "all@20": series[0].y_at(20) / 100.0,
        "minus15@20": series[-1].y_at(20) / 100.0,
    }
    return ExperimentResult(
        experiment_id="figure-19",
        title="LRU hit rate without the 5-15% most generous uploaders",
        series=series,
        metrics=metrics,
        notes="paper: drop of 10-20 points, but > 30% remains at 20 "
        "neighbours without the top 15%",
    )


@experiment(
    "fig20",
    artefact="Figure 20",
    description="LRU hit rate without the 5-30% most popular files",
)
def run_figure20(
    scale: Scale = Scale.DEFAULT,
    seed: int = DEFAULT_SEED,
    list_sizes: Sequence[int] = (5, 10, 20, 100, 200),
    fractions: Sequence[float] = (0.05, 0.15, 0.30),
    ctx: Optional[RunContext] = None,
) -> ExperimentResult:
    """Figure 20: LRU hit rate after removing the most popular files."""
    ctx = RunContext.ensure(ctx, scale=scale, seed=seed)
    trace, seed = ctx.static_trace(), ctx.seed
    series = [_sweep(trace, "all files", list_sizes, "lru", seed=seed)]
    request_counts = {"all files": float(trace.total_replicas())}
    for fraction in fractions:
        ablated = remove_popular_files(trace, fraction)
        label = f"without {int(100 * fraction)}% popular"
        series.append(_sweep(ablated, label, list_sizes, "lru", seed=seed))
        request_counts[label] = float(ablated.total_replicas())
    metrics = {
        "all@5": series[0].y_at(5) / 100.0,
        "minus30@5": series[-1].y_at(5) / 100.0,
        "remaining_requests_minus30": request_counts[
            f"without {int(100 * fractions[-1])}% popular"
        ]
        / request_counts["all files"],
    }
    return ExperimentResult(
        experiment_id="figure-20",
        title="LRU hit rate without the 5-30% most popular files",
        series=series,
        metrics=metrics,
        notes="paper: hit ratio increases when popular files are removed, "
        "most at short lists (~30% -> ~50% at 5 neighbours)",
    )


@experiment(
    "table3",
    artefact="Table 3",
    description="Combined influence of generous uploaders and popular files",
)
def run_table3(
    scale: Scale = Scale.DEFAULT,
    seed: int = DEFAULT_SEED,
    list_sizes: Sequence[int] = (5, 10, 20),
    ctx: Optional[RunContext] = None,
) -> ExperimentResult:
    """Table 3: combined influence of generous uploaders and popular files."""
    ctx = RunContext.ensure(ctx, scale=scale, seed=seed)
    trace, seed = ctx.static_trace(), ctx.seed

    variants = [
        ("LRU", trace),
        ("LRU w/o top 5% uploaders", remove_top_uploaders(trace, 0.05)),
        ("LRU w/o 5% popular files", remove_popular_files(trace, 0.05)),
        (
            "LRU w/o both (5%)",
            remove_popular_files(remove_top_uploaders(trace, 0.05), 0.05),
        ),
        ("LRU w/o top 15% uploaders", remove_top_uploaders(trace, 0.15)),
        ("LRU w/o 15% popular files", remove_popular_files(trace, 0.15)),
        (
            "LRU w/o both (15%)",
            remove_popular_files(remove_top_uploaders(trace, 0.15), 0.15),
        ),
    ]
    rows = []
    metrics: Dict[str, float] = {}
    for label, variant in variants:
        rates = [
            _hit_rate(variant, size, "lru", seed=seed) for size in list_sizes
        ]
        rows.append([label] + [f"{100 * r:.0f}%" for r in rates])
        key = (
            label.lower()
            .replace("lru w/o ", "no_")
            .replace("lru", "base")
            .replace(" ", "_")
            .replace("%", "")
            .replace("(", "")
            .replace(")", "")
        )
        for size, rate in zip(list_sizes, rates):
            metrics[f"{key}@{size}"] = rate
    table = format_table(
        ["variant"] + [f"n={s}" for s in list_sizes],
        rows,
        title="Table 3: combined influence of uploaders and popular files",
    )
    return ExperimentResult(
        experiment_id="table-3",
        title="Combined influence of generous uploaders and popular files",
        table_text=table,
        metrics=metrics,
        notes="paper row LRU: 28/34/41%; uploaded-removed lowers, "
        "popular-removed raises the hit ratio",
    )


@experiment(
    "fig21",
    artefact="Figure 21",
    description="Hit rate vs number of swappings on a randomized trace",
)
def run_figure21(
    scale: Scale = Scale.DEFAULT,
    seed: int = DEFAULT_SEED,
    list_size: int = 10,
    num_checkpoints: int = 6,
    ctx: Optional[RunContext] = None,
) -> ExperimentResult:
    """Figure 21: LRU-10 hit rate as the trace is progressively randomized."""
    ctx = RunContext.ensure(ctx, scale=scale, seed=seed)
    trace, seed = ctx.static_trace(), ctx.seed
    total = swap_iterations(trace.total_replicas())
    checkpoints = [0] + [
        (total * (i + 1)) // num_checkpoints for i in range(num_checkpoints)
    ]
    rng = RngStream(seed, "figure21")
    series = Series(name=f"LRU-{list_size} on randomized trace")
    metrics: Dict[str, float] = {}
    for count, randomized in randomization_schedule(trace, rng, checkpoints):
        rate = _hit_rate(randomized, list_size, "lru", seed=seed)
        series.append(count, 100.0 * rate)
        if count == 0:
            metrics["hit_rate_original"] = rate
    metrics["hit_rate_fully_randomized"] = series.ys[-1] / 100.0
    metrics["semantic_share"] = (
        metrics["hit_rate_original"] - metrics["hit_rate_fully_randomized"]
    )
    return ExperimentResult(
        experiment_id="figure-21",
        title="Hit rate vs number of swappings (randomized trace)",
        series=[series],
        metrics=metrics,
        notes="paper: 35% -> 5%; the ~30-point gap is genuine semantic "
        "proximity",
    )


@experiment(
    "fig22",
    artefact="Figure 22",
    description="Distribution of query load among peers (LRU-5)",
)
def run_figure22(
    scale: Scale = Scale.DEFAULT,
    seed: int = DEFAULT_SEED,
    list_size: int = 5,
    fractions: Sequence[float] = (0.0, 0.05, 0.10, 0.15),
    ctx: Optional[RunContext] = None,
) -> ExperimentResult:
    """Figure 22: per-client query load (LRU-5), removing top uploaders."""
    ctx = RunContext.ensure(ctx, scale=scale, seed=seed)
    trace, seed = ctx.static_trace(), ctx.seed
    series: List[Series] = []
    metrics: Dict[str, float] = {}
    for fraction in fractions:
        variant = trace if fraction == 0 else remove_top_uploaders(trace, fraction)
        config = SearchConfig(
            list_size=list_size, strategy="lru", track_load=True, seed=seed
        )
        result = simulate_search(variant, config)
        label = (
            "all uploaders"
            if fraction == 0
            else f"without top {int(100 * fraction)}%"
        )
        load_series = result.load.rank_series(
            name=f"{label} ({result.rates.requests} reqs, "
            f"mean {result.load.mean_load():.0f} msgs)"
        )
        series.append(load_series)
        suffix = "all" if fraction == 0 else f"minus{int(100 * fraction)}"
        metrics[f"max_load_{suffix}"] = float(result.load.max_load)
        metrics[f"mean_load_{suffix}"] = result.load.mean_load()
        metrics[f"requests_{suffix}"] = float(result.rates.requests)
    return ExperimentResult(
        experiment_id="figure-22",
        title="Distribution of query load among peers (LRU-5)",
        series=series,
        metrics=metrics,
        notes="paper: removing 10% of top uploaders cuts the max load "
        "13,433 -> 710 while the mean only halves",
    )


@experiment(
    "fig23",
    artefact="Figure 23",
    description="Two-hop semantic search vs one hop",
)
def run_figure23(
    scale: Scale = Scale.DEFAULT,
    seed: int = DEFAULT_SEED,
    list_sizes: Sequence[int] = (5, 10, 20, 50, 100),
    uploader_fractions: Sequence[float] = (0.05, 0.15),
    ctx: Optional[RunContext] = None,
) -> ExperimentResult:
    """Figure 23: two-hop semantic search, with and without the most
    generous uploaders."""
    ctx = RunContext.ensure(ctx, scale=scale, seed=seed)
    trace, seed = ctx.static_trace(), ctx.seed
    one_hop = _sweep(trace, "1 hop", list_sizes, "lru", two_hop=False, seed=seed)
    two_hop = _sweep(trace, "2 hops", list_sizes, "lru", two_hop=True, seed=seed)
    series = [two_hop, one_hop]
    for fraction in uploader_fractions:
        ablated = remove_top_uploaders(trace, fraction)
        series.append(
            _sweep(
                ablated,
                f"2 hops, without top {int(100 * fraction)}%",
                list_sizes,
                "lru",
                two_hop=True,
                seed=seed,
            )
        )
    metrics = {
        "one_hop@20": one_hop.y_at(20) / 100.0,
        "two_hop@20": two_hop.y_at(20) / 100.0,
        "two_hop@5": two_hop.y_at(5) / 100.0,
    }
    return ExperimentResult(
        experiment_id="figure-23",
        title="Two-hop semantic search vs one hop",
        series=series,
        metrics=metrics,
        notes="paper: two-hop reaches > 55% at 20 neighbours; 32% at 5 "
        "neighbours with all files",
    )
