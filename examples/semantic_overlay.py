#!/usr/bin/env python
"""Scenario: build a server-less search overlay by gossip.

The paper ends by announcing semantic links in a real client; the
follow-on literature (Voulgaris & van Steen) builds them *proactively*
with a two-tier epidemic protocol. This example runs that architecture on
a reproduction workload and watches it converge:

1. bottom tier — Cyclon peer sampling keeps a bounded-degree, connected
   random overlay;
2. top tier — Vicinity gossips semantic candidates until each peer's view
   holds the k peers whose caches overlap its own the most;
3. evaluation — per-round "can my semantic view answer my queries" hit
   rate, versus the paper's reactive LRU lists at the same size.

Run with::

    python examples/semantic_overlay.py [--rounds N] [--view-size K]
"""

from __future__ import annotations

import argparse

from repro.core.search import SearchConfig, simulate_search
from repro.runtime.scale import Scale, workload_config
from repro.overlay.cyclon import CyclonConfig
from repro.overlay.simulator import OverlayConfig, SemanticOverlaySimulator
from repro.overlay.vicinity import VicinityConfig
from repro.util.tables import format_table, percent
from repro.workload.generator import SyntheticWorkloadGenerator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=["small", "default"], default="small")
    parser.add_argument("--rounds", type=int, default=20)
    parser.add_argument("--view-size", type=int, default=10)
    parser.add_argument("--seed", type=int, default=9)
    args = parser.parse_args()
    scale = Scale.SMALL if args.scale == "small" else Scale.DEFAULT

    print(f"Generating {args.scale} workload...")
    generator = SyntheticWorkloadGenerator(
        config=workload_config(scale), seed=args.seed
    )
    static = generator.generate_static()
    aliases = [
        p.meta.client_id for p in generator.profiles if p.alias_of is not None
    ]
    static = static.without_clients(aliases)
    n_sharers = len(static.non_free_riders())
    print(f"  {n_sharers} sharers form the overlay")

    print(f"\nGossipping for {args.rounds} rounds "
          f"(Cyclon view 20, Vicinity view {args.view_size})...")
    simulator = SemanticOverlaySimulator(
        static,
        OverlayConfig(
            rounds=args.rounds,
            cyclon=CyclonConfig(view_size=20, shuffle_length=8),
            vicinity=VicinityConfig(view_size=args.view_size),
            seed=args.seed,
        ),
    )
    result = simulator.run(measure_every=max(1, args.rounds // 8))

    rows = [
        (int(x), f"{hit:.1f}%", f"{quality:.1f}%")
        for x, hit, quality in zip(
            result.hit_rate_by_round.xs,
            result.hit_rate_by_round.ys,
            result.quality_by_round.ys,
        )
    ]
    print(
        format_table(
            ("round", "semantic-view hit rate", "k-NN quality"),
            rows,
            title="Convergence of the semantic overlay",
        )
    )
    print(f"\nBottom tier connected: {result.connected}")

    lru = simulate_search(
        static,
        SearchConfig(
            list_size=args.view_size, strategy="lru", track_load=False,
            seed=args.seed,
        ),
    )
    print(
        format_table(
            ("approach", "hit rate", "cost"),
            [
                (
                    f"gossip overlay (k={args.view_size})",
                    percent(result.final_hit_rate),
                    f"{args.rounds} gossip rounds upfront",
                ),
                (
                    f"reactive LRU (k={args.view_size})",
                    percent(lru.hit_rate),
                    "learned from uploads during search",
                ),
            ],
            title="Proactive vs reactive semantic neighbours",
        )
    )
    print(
        "\nBoth answer queries without any index server; gossip pays a "
        "few rounds of maintenance traffic to start warm, while LRU "
        "starts cold and learns only from its own downloads."
    )


if __name__ == "__main__":
    main()
