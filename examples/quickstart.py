#!/usr/bin/env python
"""Quickstart: generate a synthetic eDonkey trace, run the paper's
pipeline, and evaluate semantic-neighbour search.

Walks through the library's main moving parts in five steps:

1. generate a synthetic workload (the stand-in for the 2003/04 crawl);
2. run the paper's trace pipeline (duplicate filtering + extrapolation);
3. print Table 1-style characteristics;
4. simulate server-less search with LRU semantic neighbours (Figure 18);
5. compare against randomly chosen neighbours.

Run with::

    python examples/quickstart.py [--scale small|default] [--seed N]
"""

from __future__ import annotations

import argparse

from repro.core.search import SearchConfig, simulate_search
from repro.runtime.scale import Scale, workload_config
from repro.trace.extrapolation import extrapolate
from repro.trace.filtering import filter_duplicates
from repro.trace.stats import general_characteristics
from repro.util.tables import format_table, percent
from repro.workload.generator import SyntheticWorkloadGenerator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=["small", "default"], default="small")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    scale = Scale.SMALL if args.scale == "small" else Scale.DEFAULT
    config = workload_config(scale)

    # -- 1. generate the workload ------------------------------------
    print(f"Generating a {args.scale} workload "
          f"({config.num_clients} clients, {config.num_files} files, "
          f"{config.days} days)...")
    generator = SyntheticWorkloadGenerator(config=config, seed=args.seed)
    full_trace = generator.generate()

    # -- 2. the paper's pipeline --------------------------------------
    filtered = filter_duplicates(full_trace)
    extrapolated = extrapolate(filtered)

    # -- 3. Table 1 ----------------------------------------------------
    rows = []
    for label, trace in (
        ("full", full_trace),
        ("filtered", filtered),
        ("extrapolated", extrapolated),
    ):
        chars = general_characteristics(trace)
        rows.append(
            (
                label,
                chars.num_clients,
                percent(chars.free_rider_fraction),
                chars.num_distinct_files,
                chars.num_snapshots,
            )
        )
    print()
    print(
        format_table(
            ("trace", "clients", "free-riders", "files", "snapshots"),
            rows,
            title="Trace characteristics (cf. Table 1)",
        )
    )

    # -- 4. semantic search -------------------------------------------
    static = filtered.to_static()
    print("\nSimulating server-less search (LRU semantic neighbours)...")
    rows = []
    for list_size in (5, 10, 20):
        result = simulate_search(
            static,
            SearchConfig(list_size=list_size, strategy="lru",
                         track_load=False, seed=args.seed),
        )
        rows.append((list_size, result.rates.requests, percent(result.hit_rate)))
    print(
        format_table(
            ("neighbours", "requests", "hit rate"),
            rows,
            title="LRU semantic search (cf. Figure 18)",
        )
    )

    # -- 5. against random neighbours ----------------------------------
    random_result = simulate_search(
        static,
        SearchConfig(list_size=20, strategy="random",
                     track_load=False, seed=args.seed),
    )
    lru_result = simulate_search(
        static,
        SearchConfig(list_size=20, strategy="lru",
                     track_load=False, seed=args.seed),
    )
    print(
        f"\nAt 20 neighbours: LRU hits {percent(lru_result.hit_rate)} of "
        f"queries vs {percent(random_result.hit_rate)} for random lists — "
        "the gap is the semantic clustering the paper measures."
    )


if __name__ == "__main__":
    main()
