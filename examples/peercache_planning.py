#!/usr/bin/env python
"""Scenario: an ISP plans an AS-level PeerCache deployment.

Section 4.1 of the paper notes that five autonomous systems host 54% of
all eDonkey clients and floats the PeerCache idea: an operator-run box
that keeps peer-to-peer traffic inside the AS, storing an *index* rather
than content to avoid liability.  This example plays the operator:

1. measure the baseline — what fraction of its subscribers' downloads
   already have an intra-AS source (index mode, zero storage);
2. sweep content-cache sizes to see what storage actually buys;
3. quantify how much of the locality comes from *shared interests*
   (the geo-affinity ablation) rather than AS size.

Run with::

    python examples/peercache_planning.py [--scale small|default]
"""

from __future__ import annotations

import argparse
import dataclasses

from repro.cache.peercache import PeerCacheConfig, simulate_peercache
from repro.runtime.scale import Scale, workload_config
from repro.util.tables import format_table, percent
from repro.workload.generator import SyntheticWorkloadGenerator

GB = 1024**3


def build_static(scale, seed, geo_affinity):
    base = workload_config(scale)
    config = dataclasses.replace(
        base,
        interest_model=dataclasses.replace(
            base.interest_model, geo_affinity=geo_affinity
        ),
    )
    generator = SyntheticWorkloadGenerator(config=config, seed=seed)
    static = generator.generate_static()
    aliases = [
        p.meta.client_id for p in generator.profiles if p.alias_of is not None
    ]
    return static.without_clients(aliases)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=["small", "default"], default="small")
    parser.add_argument("--seed", type=int, default=17)
    args = parser.parse_args()
    scale = Scale.SMALL if args.scale == "small" else Scale.DEFAULT

    print(f"Generating {args.scale} workload...")
    static = build_static(scale, args.seed, geo_affinity=0.7)

    # -- 1. index-mode baseline -----------------------------------------
    index = simulate_peercache(static, PeerCacheConfig(mode="index", seed=args.seed))
    print(
        f"\nIndex-only PeerCache (zero storage): "
        f"{percent(index.hit_rate)} of requests and "
        f"{percent(index.byte_locality)} of bytes stay inside the home AS."
    )
    print(
        format_table(
            ("AS", "requests", "served intra-AS"),
            [
                (asn, n, percent(rate))
                for asn, n, rate in index.top_as_rows(5)
            ],
            title="Per-AS breakdown (busiest five)",
        )
    )

    # -- 2. content-cache sizing sweep -----------------------------------
    rows = []
    for capacity_gb in (5, 20, 50, 200):
        content = simulate_peercache(
            static,
            PeerCacheConfig(
                mode="content", capacity_bytes=capacity_gb * GB, seed=args.seed
            ),
        )
        rows.append(
            (
                f"{capacity_gb} GB",
                percent(content.hit_rate),
                percent(content.byte_locality),
            )
        )
    print()
    print(
        format_table(
            ("cache size per AS", "request hit rate", "byte hit rate"),
            rows,
            title="Content-cache sizing sweep (LRU)",
        )
    )

    # -- 3. where does the locality come from? ---------------------------
    unclustered = build_static(scale, args.seed, geo_affinity=0.0)
    index_unclustered = simulate_peercache(
        unclustered, PeerCacheConfig(mode="index", seed=args.seed)
    )
    gain = index.hit_rate - index_unclustered.hit_rate
    print(
        f"\nWith geographic interest clustering disabled, the intra-AS "
        f"rate drops from {percent(index.hit_rate)} to "
        f"{percent(index_unclustered.hit_rate)}: "
        f"{percent(gain)} of all requests stay local *because* same-AS "
        "subscribers share interests — the paper's Section 4.1 argument.\n"
        "Index mode beats sizeable content caches while storing nothing "
        "but pointers, which is also the legally deployable variant."
    )


if __name__ == "__main__":
    main()
