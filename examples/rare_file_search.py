#!/usr/bin/env python
"""Scenario: locating *rare* files — where semantic neighbours shine.

The paper's motivating observation is that rare files are both the hardest
ones to find (a flooding search must contact ~1/spread peers) and the most
semantically clustered.  This example quantifies that on one workload:

1. generate a workload and split the request stream into rare-file and
   popular-file queries;
2. measure per-class hit rates for LRU semantic search (one- and two-hop);
3. compare against the unstructured baselines (flooding, random walks)
   on the same rare files, counting messages per query.

Run with::

    python examples/rare_file_search.py [--scale small|default]
"""

from __future__ import annotations

import argparse
from collections import Counter

from repro.baselines.flooding import FloodingConfig, FloodingSearch
from repro.baselines.random_walk import RandomWalkConfig, RandomWalkSearch
from repro.core.neighbours import make_strategy
from repro.core.requests import generate_requests
from repro.core.search import SearchConfig, SearchSimulator, simulate_search
from repro.runtime.scale import Scale, workload_config
from repro.util.rng import RngStream
from repro.util.tables import format_table, percent
from repro.workload.generator import SyntheticWorkloadGenerator


def build_static(scale: Scale, seed: int):
    generator = SyntheticWorkloadGenerator(config=workload_config(scale), seed=seed)
    static = generator.generate_static()
    aliases = [p.meta.client_id for p in generator.profiles if p.alias_of is not None]
    return static.without_clients(aliases)


def per_class_hit_rates(static, list_size, two_hop, seed):
    """Run the Section 5 simulation, splitting hits by file popularity."""
    counts = static.replica_counts()
    rare_cut = 3  # files with <= 3 replicas are "rare"
    simulator = SearchSimulator(
        static,
        SearchConfig(
            list_size=list_size, two_hop=two_hop, track_load=False, seed=seed
        ),
    )
    # Re-implement the loop with per-class accounting by wrapping run():
    # simplest is to run the standard simulation twice on class-filtered
    # traces; instead we tally classes post-hoc via the public simulate API
    # on the full trace and the rare-only subset.
    full = simulator.run()

    rare_files = {f for f, c in counts.items() if c <= rare_cut}
    rare_only = static.replace_caches(
        {c: (set(cache) & rare_files) for c, cache in static.caches.items()}
    )
    rare_result = simulate_search(
        rare_only,
        SearchConfig(list_size=list_size, two_hop=two_hop, track_load=False, seed=seed),
    )
    return full, rare_result, rare_files


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=["small", "default"], default="small")
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()
    scale = Scale.SMALL if args.scale == "small" else Scale.DEFAULT

    print(f"Generating {args.scale} workload...")
    static = build_static(scale, args.seed)
    counts = static.replica_counts()
    rare_share = sum(1 for c in counts.values() if c <= 3) / len(counts)
    print(
        f"  {len(counts)} distinct files, {percent(rare_share)} with <= 3 "
        "replicas (the hard ones)"
    )

    rows = []
    for list_size in (5, 20):
        for two_hop in (False, True):
            full, rare, _ = per_class_hit_rates(
                static, list_size, two_hop, args.seed
            )
            label = f"{'2-hop' if two_hop else '1-hop'} LRU-{list_size}"
            rows.append(
                (
                    label,
                    percent(full.hit_rate),
                    percent(rare.hit_rate),
                    f"<= {list_size * (list_size if two_hop else 1)}",
                )
            )
    print()
    print(
        format_table(
            ("mechanism", "all-files hit rate", "rare-files hit rate", "msgs/query"),
            rows,
            title="Semantic search, rare files vs all files",
        )
    )

    # Unstructured baselines on the same rare files.
    print("\nBaselines on rare files (messages until found):")
    rare_files = sorted(f for f, c in counts.items() if c == 2)
    rng = RngStream(args.seed, "baseline-queries")
    flooding = FloodingSearch(static, FloodingConfig(degree=4, ttl=30), seed=args.seed)
    walker = RandomWalkSearch(
        static, RandomWalkConfig(walkers=4, steps=128), seed=args.seed
    )
    flood_costs = []
    walk_hits = 0
    n_queries = min(60, len(rare_files))
    peers = sorted(static.caches)
    for i in range(n_queries):
        fid = rare_files[i % len(rare_files)]
        requester = peers[rng.py.randrange(len(peers))]
        ok, cost = flooding.contacts_until_hit(requester, fid)
        if ok:
            flood_costs.append(cost)
        walk_hits += int(walker.search(requester, fid).hit)
    mean_flood = sum(flood_costs) / max(1, len(flood_costs))
    print(
        format_table(
            ("baseline", "hit rate", "mean msgs/query"),
            [
                ("flooding (TTL 30)", percent(len(flood_costs) / n_queries), f"{mean_flood:.0f}"),
                ("random walk (4x128)", percent(walk_hits / n_queries), "<= 512"),
            ],
        )
    )
    print(
        "\nRare files cost unstructured search hundreds of messages; a "
        "20-entry semantic list answers a large share of those queries "
        "with at most 20."
    )


if __name__ == "__main__":
    main()
