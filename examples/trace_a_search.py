#!/usr/bin/env python
"""Trace a semantic search: Chrome trace_event output plus per-query
latency histograms.

Runs the one-hop + two-hop semantic-search simulation with an event
tracer attached, then:

1. writes a Chrome ``trace_event`` JSON you can open in
   ``chrome://tracing`` or https://ui.perfetto.dev — spans nest under
   ``search@N/...`` and every query shows up as an instant event with
   its outcome (one_hop / two_hop / fallback), hop count, and probe
   count;
2. prints the query-lifecycle histograms (hops per request, probes per
   request, latency per outcome) that the same run exports as
   ``repro.metrics/2``.

Tracing is observation-only: the simulated results are byte-identical
with or without the tracer attached.

Run with::

    python examples/trace_a_search.py [--scale small] [--seed N] [--out PATH]
"""

from __future__ import annotations

import argparse
import os
import tempfile

from repro.core.search import SearchConfig, simulate_search
from repro.runtime.scale import Scale, workload_config
from repro.obs import Observer, TraceRecorder, validate_chrome_trace
from repro.util.tables import format_table, percent
from repro.workload.generator import SyntheticWorkloadGenerator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=["small", "default"], default="small")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--out",
        default=os.path.join(tempfile.gettempdir(), "search-trace.json"),
        help="Chrome trace JSON output path",
    )
    args = parser.parse_args()

    scale = Scale.SMALL if args.scale == "small" else Scale.DEFAULT
    config = workload_config(scale)

    print(f"Generating a {args.scale} workload "
          f"({config.num_clients} clients, {config.num_files} files)...")
    generator = SyntheticWorkloadGenerator(config=config, seed=args.seed)
    static = generator.generate_static()
    aliases = [
        p.meta.client_id for p in generator.profiles if p.alias_of is not None
    ]
    static = static.without_clients(aliases)

    # -- run the search with an event tracer attached -----------------
    obs = Observer(tracer=TraceRecorder())
    with obs.span("search@10"):
        result = simulate_search(
            static,
            SearchConfig(
                list_size=10,
                strategy="lru",
                two_hop=True,
                track_load=False,
                seed=args.seed,
            ),
            obs=obs,
        )
    print(f"Simulated {result.rates.requests} requests, "
          f"hit rate {percent(result.hit_rate)}.")

    # -- 1. the Chrome trace -------------------------------------------
    payload = obs.tracer.to_chrome()
    problems = validate_chrome_trace(payload)
    assert problems == [], problems
    obs.tracer.write_chrome(args.out)
    queries = sum(
        1 for e in payload["traceEvents"] if e.get("cat") == "query"
    )
    print(f"\nWrote Chrome trace to {args.out} "
          f"({len(obs.tracer)} events, {queries} query instants).")
    print("Open it in chrome://tracing or https://ui.perfetto.dev")

    # -- 2. the query-lifecycle histograms -----------------------------
    metrics = obs.report(run={"example": "trace_a_search", "seed": args.seed})
    rows = []
    for name in sorted(metrics.histograms):
        s = metrics.histogram(name).summary()
        rows.append(
            (name, int(s["count"]), f"{s['p50']:.4g}", f"{s['p90']:.4g}",
             f"{s['p99']:.4g}", f"{s['max']:.4g}")
        )
    print()
    print(format_table(
        ("histogram", "count", "p50", "p90", "p99", "max"),
        rows,
        title="Query-lifecycle histograms",
    ))


if __name__ == "__main__":
    main()
