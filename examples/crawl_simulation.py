#!/usr/bin/env python
"""Protocol-level scenario: crawl a simulated eDonkey network.

This example exercises the :mod:`repro.edonkey` substrate end-to-end, the
way the paper's authors collected their trace:

1. build an eDonkey network (index servers + clients with published
   caches; some clients firewalled, some with browsing disabled, some
   servers too new to support ``query-users``);
2. run the crawler for several days: nickname sweep (``aaa``..``zzz``),
   reachability filtering, daily cache browsing under a declining
   bandwidth budget;
3. feed the crawled trace into the same analysis pipeline used for the
   synthetic workloads and print what the crawler could / could not see.

Run with::

    python examples/crawl_simulation.py [--days N] [--clients N]
"""

from __future__ import annotations

import argparse
import dataclasses

from repro.edonkey.crawler import Crawler, CrawlerConfig
from repro.edonkey.network import NetworkConfig, build_network
from repro.trace.filtering import filter_duplicates
from repro.trace.stats import daily_counts, general_characteristics
from repro.util.tables import format_table, percent
from repro.workload.config import WorkloadConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=int, default=6)
    parser.add_argument("--clients", type=int, default=150)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    workload = dataclasses.replace(
        WorkloadConfig().small(),
        num_clients=args.clients,
        num_files=2000,
        days=args.days,
        mainstream_pool_size=150,
    )
    network_config = NetworkConfig(
        num_servers=3,
        firewalled_fraction=0.25,
        browse_disabled_fraction=0.15,
        query_users_support_fraction=0.7,
        workload=workload,
    )

    print(
        f"Building network: {args.clients} clients, "
        f"{network_config.num_servers} servers..."
    )
    network = build_network(network_config, seed=args.seed)

    n_firewalled = sum(
        1 for c in network.clients.values() if c.config.firewalled
    )
    n_hidden = sum(
        1 for c in network.clients.values() if not c.config.browseable
    )
    n_legacy = sum(
        1
        for s in network.servers.values()
        if s.config.supports_query_users
    )
    print(
        f"  {n_firewalled} firewalled clients, {n_hidden} with browsing "
        f"disabled, {n_legacy}/{len(network.servers)} servers still "
        "support query-users"
    )

    print(f"\nCrawling for {args.days} days...")
    crawler = Crawler(
        network,
        CrawlerConfig(
            days=args.days,
            browse_budget_start=args.clients * 2,
            browse_budget_end=args.clients,
        ),
        seed=args.seed,
    )
    trace = crawler.crawl()

    stats = crawler.stats
    print(
        format_table(
            ("metric", "value"),
            [
                ("nickname queries sent", stats.nickname_queries),
                ("reachable users discovered", stats.users_discovered),
                ("firewalled users skipped", stats.firewalled_skipped),
                ("browse attempts", stats.browse_attempts),
                ("browses refused", stats.browse_refused),
                ("snapshots collected", stats.browse_succeeded),
                ("protocol messages routed", network.stats.total()),
            ],
            title="Crawl statistics",
        )
    )

    chars = general_characteristics(trace)
    filtered = filter_duplicates(trace)
    print(
        f"\nCollected trace: {chars.num_clients} clients "
        f"({percent(chars.free_rider_fraction)} free-riders), "
        f"{chars.num_distinct_files} distinct files over "
        f"{chars.duration_days} days; "
        f"{len(filtered.clients)} clients after duplicate filtering."
    )

    clients_per_day, files_per_day, _ = daily_counts(trace)
    rows = [
        (int(day), int(n_clients), int(n_files))
        for day, n_clients, n_files in zip(
            clients_per_day.xs, clients_per_day.ys, files_per_day.ys
        )
    ]
    print()
    print(
        format_table(
            ("day", "clients browsed", "files seen"),
            rows,
            title="Daily crawl coverage (cf. Figure 1)",
        )
    )

    visible = chars.num_clients
    total = len(network.clients)
    print(
        f"\nThe crawler observed {visible}/{total} clients "
        f"({percent(visible / total)}): firewalls, disabled browsing and "
        "the browse budget hide the rest — the same blind spots the "
        "paper's measurement methodology has."
    )


if __name__ == "__main__":
    main()
