#!/usr/bin/env python
"""Scenario: measure clustering in a trace, the Section 4 way.

Takes a trace (synthetic by default; pass ``--trace file.jsonl.gz`` to
analyze a saved one), and reproduces the paper's clustering methodology:

1. geographic clustering — home-country concentration by popularity class
   (Figure 11) and the top-AS table (Table 2);
2. semantic clustering — the clustering-correlation curve (Figure 13);
3. the randomization control — the same curve on a generosity- and
   popularity-preserving randomized trace (Figure 14), isolating genuine
   interest-based structure.

Run with::

    python examples/clustering_analysis.py [--scale small|default]
    python examples/clustering_analysis.py --trace mytrace.jsonl.gz
"""

from __future__ import annotations

import argparse

from repro.analysis.geographic import home_locality_cdf, top_as_table
from repro.analysis.semantic import (
    clustering_correlation,
    popularity_band_filter,
)
from repro.core.randomization import randomize_trace
from repro.runtime.scale import Scale, workload_config
from repro.trace.filtering import filter_duplicates
from repro.trace.io import load_trace
from repro.util.rng import RngStream
from repro.util.tables import format_table, percent, render_series
from repro.workload.generator import SyntheticWorkloadGenerator


def obtain_trace(args):
    if args.trace:
        print(f"Loading trace from {args.trace}...")
        return load_trace(args.trace)
    scale = Scale.SMALL if args.scale == "small" else Scale.DEFAULT
    print(f"Generating {args.scale} synthetic trace...")
    generator = SyntheticWorkloadGenerator(
        config=workload_config(scale), seed=args.seed
    )
    return generator.generate()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", help="path to a saved trace (.jsonl[.gz])")
    parser.add_argument("--scale", choices=["small", "default"], default="small")
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    trace = obtain_trace(args)
    filtered = filter_duplicates(trace)
    print(
        f"  {len(filtered.clients)} clients after duplicate filtering, "
        f"{len(filtered.distinct_files())} distinct files"
    )

    # -- 1. geographic clustering --------------------------------------
    print("\n--- Geographic clustering (Section 4.1) ---")
    rows = [
        (r.asn, percent(r.global_share), percent(r.national_share), r.country)
        for r in top_as_table(filtered, 5)
    ]
    print(
        format_table(
            ("AS", "global", "national", "country"),
            rows,
            title="Top autonomous systems (cf. Table 2)",
        )
    )
    locality = home_locality_cdf(
        filtered, level="country", popularity_thresholds=(1, 5, 10)
    )
    print()
    print(
        render_series(
            locality,
            title="CDF of %% sources in the home country (cf. Figure 11)",
            max_points=8,
        )
    )
    all_home = [
        (series.name, percent(1.0 - max((p for x, p in zip(series.xs, series.ys) if x < 100.0), default=0.0)))
        for series in locality
        if len(series)
    ]
    print()
    print(
        format_table(
            ("popularity class", "files entirely in home country"),
            all_home,
        )
    )

    # -- 2/3. semantic clustering + randomization control ---------------
    print("\n--- Semantic clustering (Sections 4.2, Figure 13/14) ---")
    static = filtered.to_static()
    caches = dict(static.caches)
    rng = RngStream(args.seed, "example-randomize")
    randomized = randomize_trace(static, rng)
    rand_caches = dict(randomized.caches)

    real_all = clustering_correlation(caches, name="all files (trace)")
    rand_all = clustering_correlation(rand_caches, name="all files (random)")
    real_rare = clustering_correlation(
        caches,
        file_filter=popularity_band_filter(caches, 3, 3),
        name="popularity 3 (trace)",
    )
    rand_rare = clustering_correlation(
        rand_caches,
        file_filter=popularity_band_filter(rand_caches, 3, 3),
        name="popularity 3 (random)",
    )
    print(
        render_series(
            [real_all, rand_all, real_rare, rand_rare],
            title="P(another common file | n in common), %:",
            max_points=8,
        )
    )

    if len(real_rare) and len(rand_rare):
        gap = real_rare.ys[0] - rand_rare.ys[0]
        print(
            f"\nFor rare files, the real trace clusters {gap:.0f} points "
            "above the randomized control — that surplus is genuine "
            "interest-based structure (cf. Figure 14), the property that "
            "makes server-less semantic search work."
        )


if __name__ == "__main__":
    main()
