"""Tests for the command-line interface."""

import argparse

import pytest

from repro.cli import EXPERIMENT_IDS, _scale, build_parser, main
from repro.runtime.scale import Scale


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_requires_output(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate"])

    def test_search_defaults(self):
        args = build_parser().parse_args(["search"])
        assert args.strategy == "lru"
        assert args.list_sizes == [5, 10, 20]
        assert not args.two_hop
        assert args.loss_rate == 0.0
        assert args.availability == 1.0

    def test_crawl_fault_defaults_are_off(self):
        args = build_parser().parse_args(["crawl"])
        assert args.loss_rate == 0.0
        assert args.peer_downtime == 0.0
        assert args.server_crash_day is None
        assert args.retries == 0


class TestScaleArg:
    def test_known_scales(self):
        assert _scale("tiny") is Scale.TINY
        assert _scale("small") is Scale.SMALL
        assert _scale("default") is Scale.DEFAULT
        assert _scale("large") is Scale.LARGE

    def test_unknown_scale_is_an_argparse_error(self):
        with pytest.raises(argparse.ArgumentTypeError, match="unknown scale"):
            _scale("medium")

    def test_unknown_scale_rejected_at_the_command_line(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["search", "--scale", "medium"])
        assert excinfo.value.code == 2
        assert "medium" in capsys.readouterr().err


class TestGenerateAndStats:
    def test_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl.gz"
        # Use a tiny custom run by reusing the small scale.
        rc = main(["generate", "--scale", "small", "--seed", "5", "-o", str(out)])
        assert rc == 0
        assert out.exists()
        rc = main(["stats", str(out)])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "filtered" in captured
        assert "extrapolated" in captured

    def test_anonymize_flag(self, tmp_path, capsys):
        out = tmp_path / "anon.jsonl.gz"
        rc = main(
            ["generate", "--scale", "small", "--seed", "5", "-o", str(out),
             "--anonymize"]
        )
        assert rc == 0
        from repro.trace.io import load_trace

        trace = load_trace(out)
        # anonymized nicknames are hex tokens, not pool names
        nickname = next(iter(trace.clients.values())).nickname
        assert len(nickname) == 8
        int(nickname, 16)


class TestSearchCommand:
    def test_synthetic_search(self, capsys):
        rc = main(
            ["search", "--scale", "small", "--seed", "3",
             "--list-sizes", "5"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "LRU semantic search" in out
        assert "hit rate" in out

    def test_two_hop_flag(self, capsys):
        rc = main(
            ["search", "--scale", "small", "--seed", "3",
             "--list-sizes", "5", "--two-hop", "--strategy", "history"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "HISTORY" in out
        assert "two-hop" in out

    def test_search_on_saved_trace(self, tmp_path, capsys):
        out = tmp_path / "t.jsonl"
        main(["generate", "--scale", "small", "--seed", "4", "-o", str(out)])
        capsys.readouterr()
        rc = main(["search", "--trace", str(out), "--list-sizes", "5"])
        assert rc == 0
        assert "hit rate" in capsys.readouterr().out


class TestExperimentCommand:
    def test_known_id(self, capsys):
        rc = main(["experiment", "--scale", "small", "table2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "table-2" in out

    def test_unknown_id(self, capsys):
        rc = main(["experiment", "--scale", "small", "fig99"])
        assert rc == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_id_table_is_complete(self):
        import repro.experiments as experiments

        for runner_name in set(EXPERIMENT_IDS.values()):
            assert hasattr(experiments, runner_name)

    def test_id_table_matches_registry(self):
        from repro.runtime.registry import load_all

        expected = {}
        for spec in load_all():
            for name in (spec.name, *spec.aliases):
                expected[name] = spec.runner_name
        assert EXPERIMENT_IDS == expected

    def test_list_prints_registry(self, capsys):
        rc = main(["experiment", "--list"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Registered experiments" in out
        assert "fig18" in out
        assert "Figure 18" in out

    def test_list_without_id_is_the_default(self, capsys):
        rc = main(["experiment"])
        assert rc == 0
        assert "Registered experiments" in capsys.readouterr().out

    def test_unknown_id_names_valid_choices(self, capsys):
        rc = main(["experiment", "fig99"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err
        assert "fig18" in err  # the valid-name list is part of the message


class TestRunAllCommand:
    def test_subset_writes_manifests_then_skips(self, tmp_path, capsys):
        results = tmp_path / "results"
        argv = ["run-all", "--scale", "tiny", "--results-dir", str(results),
                "--only", "table2", "fig18"]
        rc = main(argv)
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 run, 0 skipped, 0 failed" in out
        assert (results / "table2.manifest.json").exists()
        assert (results / "fig18.manifest.json").exists()

        rc = main(argv)
        assert rc == 0
        assert "0 run, 2 skipped, 0 failed" in capsys.readouterr().out

    def test_changed_seed_invalidates_the_manifest(self, tmp_path, capsys):
        results = tmp_path / "results"
        base = ["run-all", "--scale", "tiny", "--results-dir", str(results),
                "--only", "table2"]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base + ["--seed", "7"]) == 0
        assert "1 run, 0 skipped" in capsys.readouterr().out

    def test_unknown_only_name_errors(self, tmp_path, capsys):
        rc = main(["run-all", "--results-dir", str(tmp_path), "--only", "nope"])
        assert rc == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestAnalyzeCommand:
    def test_synthetic(self, capsys):
        rc = main(["analyze", "--scale", "small", "--seed", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "autonomous systems" in out
        assert "common file" in out


class TestCrawlCommand:
    def test_crawl_and_save(self, tmp_path, capsys):
        out = tmp_path / "crawl.jsonl.gz"
        rc = main(
            ["crawl", "--clients", "40", "--days", "2", "--seed", "1",
             "-o", str(out)]
        )
        assert rc == 0
        assert out.exists()
        captured = capsys.readouterr().out
        assert "snapshots" in captured
        # Faults off: no degradation accounting clutters the output.
        assert "degradation report" not in captured

    def test_crawl_under_faults_reports_degradation(self, capsys):
        rc = main(
            ["crawl", "--clients", "40", "--days", "2", "--seed", "1",
             "--loss-rate", "0.05", "--server-crash-day", "1",
             "--retries", "2"]
        )
        assert rc == 0
        captured = capsys.readouterr().out
        assert "degradation report" in captured
        assert "delivery rate" in captured
        assert "server crashes: 1" in captured


class TestSearchFaultFlags:
    def test_loss_rate_adds_fault_columns(self, capsys):
        rc = main(
            ["search", "--scale", "small", "--seed", "3",
             "--list-sizes", "5", "--loss-rate", "0.2", "--evict-dead"]
        )
        assert rc == 0
        captured = capsys.readouterr().out
        assert "probes lost" in captured
        assert "evictions" in captured


class TestObservabilityFlags:
    def test_crawl_profile_and_metrics_out(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        rc = main(
            ["crawl", "--clients", "40", "--days", "2", "--seed", "1",
             "--profile", "--metrics-out", str(metrics_path)]
        )
        assert rc == 0
        captured = capsys.readouterr().out
        assert "timing spans" in captured
        assert "crawl/day/sweep_nicknames" in captured
        assert metrics_path.exists()

        import json

        from repro.obs import RunMetrics, validate_metrics

        payload = json.loads(metrics_path.read_text())
        assert validate_metrics(payload) == []
        metrics = RunMetrics.from_dict(payload)
        # Spans cover the crawler and network layers; counters unify the
        # crawler's and the fault injector's accounting.
        assert "crawl/day/network/advance_day" in metrics.spans
        assert "crawler/browse_attempts" in metrics.counters
        assert "faults/messages_total" in metrics.counters
        assert metrics.run["command"] == "crawl"

    def test_search_metrics_out(self, tmp_path, capsys):
        import json

        from repro.obs import validate_metrics

        metrics_path = tmp_path / "metrics.json"
        rc = main(
            ["search", "--scale", "small", "--seed", "3",
             "--list-sizes", "5", "--metrics-out", str(metrics_path)]
        )
        assert rc == 0
        payload = json.loads(metrics_path.read_text())
        assert validate_metrics(payload) == []
        assert "search@5/search/request_loop" in payload["spans"]
        assert payload["counters"]["search/requests"] > 0

    def test_obs_flags_leave_output_identical(self, tmp_path, capsys):
        plain_out = tmp_path / "plain.jsonl.gz"
        obs_out = tmp_path / "observed.jsonl.gz"
        main(["crawl", "--clients", "40", "--days", "2", "--seed", "1",
              "-o", str(plain_out)])
        capsys.readouterr()
        main(["crawl", "--clients", "40", "--days", "2", "--seed", "1",
              "--profile", "-o", str(obs_out)])
        capsys.readouterr()
        import gzip

        assert gzip.decompress(obs_out.read_bytes()) == gzip.decompress(
            plain_out.read_bytes()
        )

    def test_experiment_accepts_obs_flags(self, tmp_path, capsys):
        import json

        from repro.obs import validate_metrics

        metrics_path = tmp_path / "metrics.json"
        rc = main(
            ["experiment", "fig5", "--scale", "small",
             "--metrics-out", str(metrics_path)]
        )
        assert rc == 0
        payload = json.loads(metrics_path.read_text())
        assert validate_metrics(payload) == []
        assert "experiment/fig5" in payload["spans"]


class TestTraceOutFlag:
    def test_crawl_trace_out_is_valid_chrome_trace(self, tmp_path, capsys):
        import json

        from repro.obs import validate_chrome_trace

        trace_path = tmp_path / "trace.json"
        rc = main(
            ["crawl", "--clients", "40", "--days", "2", "--seed", "1",
             "--trace-out", str(trace_path)]
        )
        assert rc == 0
        assert "Wrote Chrome trace" in capsys.readouterr().out
        payload = json.loads(trace_path.read_text())
        assert validate_chrome_trace(payload) == []
        events = payload["traceEvents"]
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert "crawl" in names
        assert "crawl/day/browse" in names
        # Message hops are instant events nested under their phase.
        assert any(
            e["ph"] == "i" and e.get("cat") == "hop" for e in events
        )

    def test_search_trace_out_carries_query_events(self, tmp_path, capsys):
        import json

        from repro.obs import validate_chrome_trace

        trace_path = tmp_path / "trace.json"
        rc = main(
            ["search", "--scale", "small", "--seed", "3", "--two-hop",
             "--list-sizes", "5", "--trace-out", str(trace_path)]
        )
        assert rc == 0
        payload = json.loads(trace_path.read_text())
        assert validate_chrome_trace(payload) == []
        queries = [
            e for e in payload["traceEvents"] if e.get("cat") == "query"
        ]
        assert queries
        assert all("outcome" in e["args"] for e in queries)

    def test_trace_out_leaves_output_identical(self, tmp_path, capsys):
        plain_out = tmp_path / "plain.jsonl.gz"
        traced_out = tmp_path / "traced.jsonl.gz"
        main(["crawl", "--clients", "40", "--days", "2", "--seed", "1",
              "-o", str(plain_out)])
        capsys.readouterr()
        main(["crawl", "--clients", "40", "--days", "2", "--seed", "1",
              "--trace-out", str(tmp_path / "t.json"), "-o",
              str(traced_out)])
        capsys.readouterr()
        import gzip

        assert gzip.decompress(traced_out.read_bytes()) == gzip.decompress(
            plain_out.read_bytes()
        )


class TestMetricsDiffCommand:
    def write_metrics(self, tmp_path, name, requests=100.0):
        from repro.obs import Observer

        obs = Observer()
        obs.count("search/requests", requests)
        obs.gauge("search/hit_rate", 0.9)
        obs.hist("search/hops", 3.0)
        path = tmp_path / name
        obs.report(run={"command": "test"}).write(str(path))
        return str(path)

    def test_identical_files_exit_zero(self, tmp_path, capsys):
        base = self.write_metrics(tmp_path, "base.json")
        cur = self.write_metrics(tmp_path, "cur.json")
        rc = main(["metrics", "diff", base, cur])
        assert rc == 0
        assert "all metrics within tolerance" in capsys.readouterr().out

    def test_regression_exits_one_with_report(self, tmp_path, capsys):
        base = self.write_metrics(tmp_path, "base.json")
        cur = self.write_metrics(tmp_path, "cur.json", requests=150.0)
        rc = main(["metrics", "diff", base, cur])
        assert rc == 1
        out = capsys.readouterr().out
        assert "regressions" in out
        assert "counters/search/requests" in out

    def test_fail_on_spec_can_loosen_the_gate(self, tmp_path, capsys):
        base = self.write_metrics(tmp_path, "base.json")
        cur = self.write_metrics(tmp_path, "cur.json", requests=150.0)
        rc = main(["metrics", "diff", base, cur,
                   "--fail-on", "counters=0.6"])
        assert rc == 0

    def test_missing_file_exits_two(self, tmp_path, capsys):
        base = self.write_metrics(tmp_path, "base.json")
        rc = main(["metrics", "diff", base, str(tmp_path / "nope.json")])
        assert rc == 2
        assert "cannot load current" in capsys.readouterr().err

    def test_bad_spec_exits_two(self, tmp_path, capsys):
        base = self.write_metrics(tmp_path, "base.json")
        rc = main(["metrics", "diff", base, base,
                   "--fail-on", "timers=0"])
        assert rc == 2
        assert "unknown section" in capsys.readouterr().err

    def test_invalid_metrics_file_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "nope"}')
        base = self.write_metrics(tmp_path, "base.json")
        rc = main(["metrics", "diff", str(bad), base])
        assert rc == 2
        assert "cannot load baseline" in capsys.readouterr().err


class TestRunAllMetricsFlags:
    def test_metrics_out_writes_one_file_per_experiment(
        self, tmp_path, capsys
    ):
        from repro.obs import RunMetrics, validate_metrics
        from repro.runtime.runner import RunManifest

        results = tmp_path / "results"
        rc = main(["run-all", "--scale", "tiny", "--results-dir",
                   str(results), "--only", "table2", "--metrics-out"])
        assert rc == 0
        metrics_path = results / "table2.metrics.json"
        assert metrics_path.exists()
        import json

        assert validate_metrics(json.loads(metrics_path.read_text())) == []
        manifest = RunManifest.read(results / "table2.manifest.json")
        assert manifest.metrics_file == "table2.metrics.json"
        # The standalone file matches the blob embedded in the manifest.
        standalone = RunMetrics.read(str(metrics_path))
        assert standalone.to_dict() == manifest.run_metrics

    def test_without_metrics_out_no_file_and_no_manifest_field(
        self, tmp_path, capsys
    ):
        from repro.runtime.runner import RunManifest

        results = tmp_path / "results"
        rc = main(["run-all", "--scale", "tiny", "--results-dir",
                   str(results), "--only", "table2"])
        assert rc == 0
        assert not (results / "table2.metrics.json").exists()
        manifest = RunManifest.read(results / "table2.manifest.json")
        assert manifest.metrics_file is None

    def test_profile_prints_per_experiment_profiles(self, tmp_path, capsys):
        results = tmp_path / "results"
        rc = main(["run-all", "--scale", "tiny", "--results-dir",
                   str(results), "--only", "table2", "--profile"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "timing spans" in out
        assert "experiment/table2" in out


class TestCalibrateCommand:
    def test_synthetic_calibration_passes(self, capsys):
        rc = main(["calibrate", "--scale", "small", "--seed", "20060418"])
        out = capsys.readouterr().out
        assert "calibration report" in out
        assert "targets within band" in out
        assert rc == 0

    def test_calibrate_saved_trace(self, tmp_path, capsys):
        out = tmp_path / "t.jsonl.gz"
        main(["generate", "--scale", "small", "--seed", "20060418", "-o", str(out)])
        capsys.readouterr()
        rc = main(["calibrate", "--trace", str(out)])
        assert rc == 0
        assert "PASS" in capsys.readouterr().out


class TestTraceCommands:
    @pytest.fixture()
    def trace_file(self, tmp_path):
        out = tmp_path / "t.jsonl.gz"
        main(["generate", "--scale", "tiny", "--seed", "5", "-o", str(out)])
        return out

    def test_convert_to_store_and_back(self, tmp_path, trace_file, capsys):
        store = tmp_path / "store"
        rc = main(["trace", "convert", str(trace_file), str(store)])
        assert rc == 0
        assert "Wrote store" in capsys.readouterr().out
        assert (store / "manifest.json").exists()

        back = tmp_path / "back.jsonl.gz"
        rc = main(["trace", "convert", str(store), str(back)])
        assert rc == 0
        from repro.trace.io import load_trace
        from repro.trace.store import open_store

        a = load_trace(trace_file)
        with open_store(store) as opened:
            b = opened.to_trace()
        assert dict(a.files) == dict(b.files)
        assert dict(a.clients) == dict(b.clients)
        assert all(a.snapshots_on(d) == b.snapshots_on(d) for d in a.days())
        c = load_trace(back)
        assert all(a.snapshots_on(d) == c.snapshots_on(d) for d in a.days())

    def test_info_on_store_and_file(self, tmp_path, trace_file, capsys):
        store = tmp_path / "store"
        main(["trace", "convert", str(trace_file), str(store)])
        capsys.readouterr()
        assert main(["trace", "info", str(store)]) == 0
        out = capsys.readouterr().out
        assert "repro.tracestore/1" in out
        assert "Segments" in out
        assert main(["trace", "info", str(trace_file)]) == 0
        assert "Trace file" in capsys.readouterr().out

    def test_verify_clean_and_corrupt(self, tmp_path, trace_file, capsys):
        store = tmp_path / "store"
        main(["trace", "convert", str(trace_file), str(store)])
        assert main(["trace", "verify", str(store)]) == 0
        assert "OK" in capsys.readouterr().out
        seg = next(store.glob("day-*.seg"))
        data = bytearray(seg.read_bytes())
        data[-1] ^= 0xFF
        seg.write_bytes(bytes(data))
        assert main(["trace", "verify", str(store)]) == 1
        assert "sha256 mismatch" in capsys.readouterr().err

    def test_convert_missing_source_exits_two(self, tmp_path, capsys):
        rc = main(
            ["trace", "convert", str(tmp_path / "nope.jsonl"),
             str(tmp_path / "store")]
        )
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_convert_truncated_source_exits_two(self, tmp_path, trace_file, capsys):
        cut = tmp_path / "cut.jsonl.gz"
        data = trace_file.read_bytes()
        cut.write_bytes(data[: len(data) // 2])
        rc = main(["trace", "convert", str(cut), str(tmp_path / "store")])
        assert rc == 2
        assert "truncated" in capsys.readouterr().err


class TestCrawlStoreFlag:
    def test_crawl_store_writes_verified_store(self, tmp_path, capsys):
        store = tmp_path / "store"
        out = tmp_path / "crawl.jsonl"
        rc = main(
            ["crawl", "--clients", "30", "--days", "3", "--seed", "2",
             "--store", str(store), "-o", str(out)]
        )
        assert rc == 0
        assert "Appended 3 day segments" in capsys.readouterr().out
        assert main(["trace", "verify", str(store)]) == 0

        from repro.trace.io import load_trace
        from repro.trace.store import open_store

        a = load_trace(out)
        with open_store(store) as opened:
            b = opened.to_trace()
        assert all(a.snapshots_on(d) == b.snapshots_on(d) for d in a.days())

    def test_resume_with_different_store_exits_two(self, tmp_path, capsys):
        from repro.checkpoint import Checkpointer
        from repro.edonkey.crawler import Crawler, CrawlerConfig
        from repro.edonkey.network import NetworkConfig, build_network
        from repro.runtime import Scale, workload_config
        import dataclasses

        workload = dataclasses.replace(
            workload_config(Scale.SMALL), num_clients=30, num_files=500,
            days=3, mainstream_pool_size=30,
        )
        network = build_network(NetworkConfig(workload=workload), seed=2)
        crawler = Crawler(
            network, CrawlerConfig(days=3), seed=2,
            store_dir=tmp_path / "store",
        )
        crawler.crawl(checkpointer=Checkpointer(tmp_path / "ckpt"))
        rc = main(
            ["crawl", "--clients", "30", "--days", "3", "--seed", "2",
             "--checkpoint-dir", str(tmp_path / "ckpt"), "--resume",
             "--store", str(tmp_path / "elsewhere")]
        )
        assert rc == 2
        assert "store" in capsys.readouterr().err
