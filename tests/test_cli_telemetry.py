"""CLI surfaces of the telemetry plane: flags, tail, report, bench-summary."""

import gzip
import json
import os

import pytest

from repro.cli import main
from repro.obs.telemetry import read_telemetry, validate_telemetry


class TestTelemetryFlag:
    def test_crawl_writes_valid_telemetry(self, tmp_path, capsys):
        telemetry = tmp_path / "run.jsonl"
        rc = main(["crawl", "--clients", "40", "--days", "2", "--seed", "1",
                   "--telemetry-out", str(telemetry)])
        assert rc == 0
        assert "Wrote telemetry" in capsys.readouterr().out
        assert validate_telemetry(str(telemetry)) == []
        records, truncated = read_telemetry(str(telemetry))
        assert not truncated
        kinds = [r["kind"] for r in records]
        assert kinds[0] == "start" and kinds[-1] == "end"
        assert records[-1]["outcome"] == "completed"
        # Progress gauges surfaced into the snapshots.
        assert records[-1]["progress"].get("days_done") == 2.0

    def test_telemetry_leaves_trace_output_identical(self, tmp_path, capsys):
        plain_out = tmp_path / "plain.jsonl.gz"
        telem_out = tmp_path / "telemetered.jsonl.gz"
        main(["crawl", "--clients", "40", "--days", "2", "--seed", "1",
              "-o", str(plain_out)])
        capsys.readouterr()
        main(["crawl", "--clients", "40", "--days", "2", "--seed", "1",
              "--telemetry-out", str(tmp_path / "t.jsonl"),
              "-o", str(telem_out)])
        capsys.readouterr()
        assert gzip.decompress(telem_out.read_bytes()) == gzip.decompress(
            plain_out.read_bytes()
        )

    def test_search_accepts_telemetry(self, tmp_path, capsys):
        telemetry = tmp_path / "s.jsonl"
        rc = main(["search", "--scale", "small", "--seed", "3",
                   "--list-sizes", "5", "--telemetry-out", str(telemetry)])
        assert rc == 0
        assert validate_telemetry(str(telemetry)) == []

    def test_experiment_accepts_telemetry(self, tmp_path, capsys):
        telemetry = tmp_path / "e.jsonl"
        rc = main(["experiment", "fig5", "--scale", "small",
                   "--telemetry-out", str(telemetry)])
        assert rc == 0
        records, _ = read_telemetry(str(telemetry))
        assert records[0]["run"].get("id") == "fig5"


class TestOutParentValidation:
    @pytest.mark.parametrize("flag", [
        "--metrics-out", "--trace-out", "--telemetry-out",
    ])
    def test_missing_parent_fails_fast(self, tmp_path, capsys, flag):
        target = tmp_path / "nope" / "out.json"
        rc = main(["crawl", "--clients", "40", "--days", "2",
                   flag, str(target)])
        assert rc == 2
        err = capsys.readouterr().err
        assert "parent directory" in err
        assert flag.lstrip("-") in err.replace("-", "_") or flag in err

    def test_existing_parent_passes(self, tmp_path, capsys):
        rc = main(["crawl", "--clients", "40", "--days", "2",
                   "--telemetry-out", str(tmp_path / "ok.jsonl")])
        assert rc == 0


class TestTail:
    def _write_telemetry(self, tmp_path):
        telemetry = tmp_path / "run.jsonl"
        main(["crawl", "--clients", "40", "--days", "2", "--seed", "1",
              "--telemetry-out", str(telemetry)])
        return telemetry

    def test_tail_renders_sources(self, tmp_path, capsys):
        telemetry = self._write_telemetry(tmp_path)
        capsys.readouterr()
        rc = main(["tail", str(telemetry)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "main" in out
        assert "source" in out and "state" in out

    def test_tail_missing_file_is_rc2(self, tmp_path, capsys):
        rc = main(["tail", str(tmp_path / "absent.jsonl")])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_tail_notes_torn_tail(self, tmp_path, capsys):
        telemetry = self._write_telemetry(tmp_path)
        capsys.readouterr()
        with open(telemetry, "a", encoding="utf-8") as fh:
            fh.write('{"torn')
        rc = main(["tail", str(telemetry)])
        assert rc == 0
        assert "torn" in capsys.readouterr().out.lower()


class TestReport:
    def test_report_requires_an_input(self, tmp_path, capsys):
        rc = main(["report", "-o", str(tmp_path / "r.html")])
        assert rc == 2
        assert "at least one" in capsys.readouterr().err

    def test_report_from_all_three_inputs(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        telemetry = tmp_path / "t.jsonl"
        trace = tmp_path / "tr.json"
        main(["crawl", "--clients", "40", "--days", "2", "--seed", "1",
              "--metrics-out", str(metrics), "--trace-out", str(trace),
              "--telemetry-out", str(telemetry)])
        capsys.readouterr()
        report = tmp_path / "report.html"
        rc = main(["report", "--metrics", str(metrics),
                   "--telemetry", str(telemetry), "--trace", str(trace),
                   "-o", str(report), "--title", "crawl smoke"])
        assert rc == 0
        assert "Wrote report" in capsys.readouterr().out
        html = report.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "crawl smoke" in html
        assert "Resident set size" in html
        assert "Trace timeline" in html
        for needle in ("http://", "https://", "<script"):
            assert needle not in html

    def test_report_bad_input_is_rc2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{broken")
        rc = main(["report", "--metrics", str(bad),
                   "-o", str(tmp_path / "r.html")])
        assert rc == 2


class TestBenchSummary:
    def test_collates_committed_baselines(self, capsys):
        rc = main(["bench-summary"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Benchmark trajectory" in out
        assert "bench-profile.json" in out
        assert "bench-telemetry.json" in out

    def test_json_and_txt_outputs(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "bench-telemetry.json").write_text(json.dumps({
            "benchmark": "bench-telemetry", "off_secs": 1.0,
            "on_secs": 1.1, "overhead_ratio": 1.1, "max_ratio": 1.25,
        }))
        (results / "broken.json").write_text("{nope")
        json_out = tmp_path / "summary.json"
        txt_out = tmp_path / "summary.txt"
        rc = main(["bench-summary", "--results-dir", str(results),
                   "--json", str(json_out), "--txt", str(txt_out)])
        assert rc == 0
        payload = json.loads(json_out.read_text())
        assert payload["schema"] == "repro.bench-summary/1"
        by_file = {e["file"]: e for e in payload["results"]}
        assert by_file["bench-telemetry.json"]["headline"]["overhead"] == 1.1
        assert by_file["broken.json"]["kind"] == "error"
        assert "Benchmark trajectory" in txt_out.read_text()

    def test_missing_dir_is_rc2(self, tmp_path, capsys):
        rc = main(["bench-summary", "--results-dir",
                   str(tmp_path / "absent")])
        assert rc == 2
