"""Smoke tests: every example script runs to completion.

Examples are a deliverable; these tests keep them working as the API
evolves.  They run in subprocesses (as a user would) at small scale.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = [
    ("quickstart.py", ["--scale", "small", "--seed", "3"]),
    ("crawl_simulation.py", ["--clients", "60", "--days", "3"]),
    ("clustering_analysis.py", ["--scale", "small", "--seed", "3"]),
    ("rare_file_search.py", ["--scale", "small", "--seed", "3"]),
    ("semantic_overlay.py", ["--scale", "small", "--rounds", "8"]),
    ("peercache_planning.py", ["--scale", "small", "--seed", "3"]),
    ("trace_a_search.py", ["--scale", "small", "--seed", "3"]),
]


@pytest.mark.parametrize("script,args", EXAMPLES, ids=[e[0] for e in EXAMPLES])
def test_example_runs(script, args):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    proc = subprocess.run(
        [sys.executable, str(path), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_examples_have_docstrings_and_help():
    for script, _ in EXAMPLES:
        source = (EXAMPLES_DIR / script).read_text()
        assert source.lstrip().startswith(("#!/usr/bin/env python", '"""')), script
        assert "argparse" in source, f"{script} should expose --help"


def test_examples_readme_lists_all():
    readme = (EXAMPLES_DIR / "README.md").read_text()
    for script, _ in EXAMPLES:
        assert script in readme, f"{script} missing from examples/README.md"
