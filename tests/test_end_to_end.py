"""End-to-end integration: crawl → persist → reload → full pipeline.

Exercises the complete user journey across subsystem boundaries: the
protocol-level crawler produces a trace, the trace round-trips through
the on-disk format, the paper's pipeline (filter + extrapolate) runs on
it, and both the analyses and the search simulator consume the result.
"""

import dataclasses

import pytest

from repro.analysis.geographic import top_as_table
from repro.analysis.semantic import clustering_correlation
from repro.core.search import SearchConfig, simulate_search
from repro.edonkey.crawler import Crawler, CrawlerConfig
from repro.edonkey.network import NetworkConfig, build_network
from repro.trace.extrapolation import ExtrapolationConfig, extrapolate
from repro.trace.filtering import filter_duplicates
from repro.trace.io import anonymize, load_trace, save_trace
from repro.trace.stats import general_characteristics
from repro.workload.config import WorkloadConfig


@pytest.fixture(scope="module")
def crawled_trace_path(tmp_path_factory):
    workload = dataclasses.replace(
        WorkloadConfig().small(),
        num_clients=100,
        num_files=1500,
        days=8,
        mainstream_pool_size=100,
    )
    network = build_network(
        NetworkConfig(workload=workload, firewalled_fraction=0.2), seed=31
    )
    crawler = Crawler(
        network,
        CrawlerConfig(days=7, browse_budget_start=400, browse_budget_end=300),
        seed=31,
    )
    trace = crawler.crawl()
    path = tmp_path_factory.mktemp("e2e") / "crawl.jsonl.gz"
    save_trace(anonymize(trace), path)
    return path


class TestEndToEnd:
    def test_reload_preserves_structure(self, crawled_trace_path):
        trace = load_trace(crawled_trace_path)
        chars = general_characteristics(trace)
        assert chars.num_snapshots > 0
        assert chars.num_distinct_files > 0
        assert 0.0 < chars.free_rider_fraction < 1.0

    def test_pipeline_runs_on_crawled_trace(self, crawled_trace_path):
        trace = load_trace(crawled_trace_path)
        filtered = filter_duplicates(trace)
        extrapolated = extrapolate(
            filtered, ExtrapolationConfig(min_connections=3, min_span_days=3)
        )
        assert len(filtered.clients) <= len(trace.clients)
        assert extrapolated.num_snapshots >= 0

    def test_analyses_consume_crawled_trace(self, crawled_trace_path):
        trace = load_trace(crawled_trace_path)
        filtered = filter_duplicates(trace)
        rows = top_as_table(filtered, 3)
        assert rows and all(0 < r.global_share <= 1 for r in rows)
        static = filtered.to_static()
        caches = {c: f for c, f in static.caches.items() if f}
        correlation = clustering_correlation(caches)
        assert len(correlation) >= 1
        assert correlation.ys[0] > 0

    def test_search_runs_on_crawled_trace(self, crawled_trace_path):
        trace = load_trace(crawled_trace_path)
        static = filter_duplicates(trace).to_static()
        result = simulate_search(
            static, SearchConfig(list_size=5, track_load=False, seed=31)
        )
        assert result.rates.contributions > 0
        # The crawled-trace workload clusters too: the semantic lists beat
        # nothing-at-all by construction; just assert sanity bounds here.
        assert 0.0 <= result.hit_rate <= 1.0

    def test_anonymization_stuck(self, crawled_trace_path):
        trace = load_trace(crawled_trace_path)
        for meta in list(trace.clients.values())[:10]:
            # anonymized fields are fixed-length hex tokens
            int(meta.ip, 16)
            int(meta.uid, 16)
